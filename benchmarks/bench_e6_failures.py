"""E6 — Failure handling (Section 4.3).

Paper: workers detect dead peers on send ("in most cases ... allows us to
detect worker failures and recover from them in a timely fashion"); the
master broadcast reroutes the ring; queued events and unflushed slate
changes are lost by design, because "low latency is far more important
... The system should be able to cope with failures very quickly to avoid
falling too far behind the stream" — versus MapReduce, where "it is
always possible (even if inconvenient) to restart ... from scratch".
"""

from __future__ import annotations


from repro.baselines.mapreduce import MapReduceCosts
from repro.cluster import ClusterSpec
from repro.faults import FaultSchedule
from repro.metrics import format_ms
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app


def run_with_failure(flush_interval: float, machines: int = 4,
                     rate: float = 2000.0, duration: float = 2.0,
                     fail_at: float = 1.0):
    config = SimConfig(flush_policy=FlushPolicy.every(flush_interval),
                       queue_capacity=100_000)
    source = constant_rate("S1", rate_per_s=rate, duration_s=duration,
                           key_fn=lambda i: f"k{i % 64}")
    runtime = SimRuntime(build_count_app(),
                         ClusterSpec.uniform(machines, cores=4), config,
                         [source], failures=[(fail_at, "m001")])
    sim_report = runtime.run(duration + 10.0)
    counted = sum(v["count"] for v in runtime.slates_of("U1").values())
    return runtime, sim_report, counted, int(rate * duration)


def test_e6_detection_and_bounded_loss(benchmark, experiment):
    def run():
        return run_with_failure(flush_interval=0.2)

    runtime, sim_report, counted, offered = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = experiment("E6a-failure-recovery")
    report.claim("failures detected on send and broadcast by the master; "
                 "events to the dead machine are lost (and logged as "
                 "lost); the ring reroutes so the stream flows on")
    report.table(
        ["metric", "value"],
        [["machines", 4],
         ["failure injected at (s)", 1.0],
         ["detection time (ms)",
          # format_ms handles the no-send-touched-the-dead-machine case,
          # where detection is None (regression: this used to TypeError).
          format_ms(sim_report.failure_detection_s)],
         ["master broadcasts", sim_report.master_stats["broadcasts_sent"]],
         ["duplicate reports absorbed",
          sim_report.master_stats["duplicate_reports"]],
         ["offered events", offered],
         ["counted after failure", counted],
         ["events lost", sim_report.counters.lost_failure],
         ["loss fraction",
          f"{sim_report.counters.lost_failure / offered:.4f}"],
         ["post-failure p99 (ms)",
          f"{sim_report.latency.p99 * 1e3:.2f}"]])
    assert sim_report.failure_detection_s is not None
    assert sim_report.failure_detection_s < 0.1       # detected in ~one hop
    assert sim_report.counters.lost_failure < 0.15 * offered
    assert counted >= 0.75 * offered
    report.outcome(
        f"detected in {format_ms(sim_report.failure_detection_s, 0)} ms; "
        f"{sim_report.counters.lost_failure}/{offered} events lost "
        f"({100 * sim_report.counters.lost_failure / offered:.1f}%); "
        "stream never stops")


def test_e6_flush_interval_bounds_slate_loss(benchmark, experiment):
    """More frequent flushing = less slate state lost on a crash."""
    def run():
        rows = []
        for interval in (0.05, 0.5, 5.0):
            runtime, sim_report, counted, offered = run_with_failure(
                flush_interval=interval)
            machine = runtime.machines["m001"]
            lost_dirty = machine.central_mgr.stats.lost_dirty_on_crash
            rows.append((interval, lost_dirty, counted, offered))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E6b-flush-vs-loss")
    report.claim("whatever changes not yet flushed to the key-value "
                 "store are lost when an updater fails")
    report.table(
        ["flush interval (s)", "dirty slates lost", "counted", "offered"],
        [[i, d, c, o] for i, d, c, o in rows])
    dirty_losses = [d for _, d, __, ___ in rows]
    assert dirty_losses[0] <= dirty_losses[-1]
    assert dirty_losses[-1] > 0
    report.outcome("dirty-slate loss grows with the flush interval: "
                   f"{dirty_losses} for intervals 0.05/0.5/5 s")


def test_e6_vs_mapreduce_restart(benchmark, experiment):
    """MapReduce's answer to failure is a from-scratch restart: the
    recovery cost is the whole job, and the stream keeps accumulating
    meanwhile ('streams continue to flow at their own rate, oblivious to
    processing issues')."""
    def run():
        _, sim_report, counted, offered = run_with_failure(
            flush_interval=0.2)
        costs = MapReduceCosts()
        # A MapReduce job over one hour of stream history at our rate.
        history = int(2000 * 3600)
        restart_s = costs.job_duration(history, parallelism=32)
        backlog_after_restart = 2000 * restart_s
        return sim_report, restart_s, backlog_after_restart

    sim_report, restart_s, backlog = benchmark.pedantic(run, rounds=1,
                                                        iterations=1)
    report = experiment("E6c-vs-mapreduce-restart")
    report.claim("restarting a MapReduce computation from scratch is "
                 "possible but leaves the system far behind the stream; "
                 "Muppet recovers in one detection round")
    assert sim_report.failure_detection_s is not None
    detection_s = sim_report.failure_detection_s
    report.table(
        ["system", "recovery time", "events accumulated meanwhile"],
        [["Muppet (detect + reroute)",
          f"{format_ms(detection_s, 0)} ms",
          f"{int(2000 * detection_s)}"],
         ["MapReduce restart (1 h history, 32-way)",
          f"{restart_s:.0f} s", f"{int(backlog)}"]])
    assert restart_s > 100 * detection_s
    report.outcome(
        f"Muppet resumes in {format_ms(detection_s, 0)} ms "
        f"vs a {restart_s:.0f} s from-scratch reprocess — a "
        f"{restart_s / detection_s:,.0f}x gap")


def test_e6d_chaos_crash_recover(benchmark, experiment):
    """Beyond the paper: the Section 4.3 gap ('until operator
    intervention') closed. A chaos schedule kills a machine mid-stream
    and revives it; the master broadcasts recovery, the ring re-admits
    the machine, its slates re-hydrate lazily from the kv-store, and
    hinted handoff drains to its kv node."""
    rate, duration, flush = 2000.0, 3.0, 0.2

    def run():
        def simulate(schedule):
            config = SimConfig(flush_policy=FlushPolicy.every(flush),
                               queue_capacity=100_000,
                               kill_kv_on_machine_failure=True)
            source = constant_rate("S1", rate_per_s=rate,
                                   duration_s=duration,
                                   key_fn=lambda i: f"k{i % 64}")
            runtime = SimRuntime(build_count_app(),
                                 ClusterSpec.uniform(4, cores=4), config,
                                 [source], failures=schedule)
            sim_report = runtime.run(duration + 3.0)
            counted = sum(v["count"]
                          for v in runtime.slates_of("U1").values())
            return runtime, sim_report, counted

        _, free_report, free_counted = simulate(FaultSchedule())
        chaos = FaultSchedule(seed=7).crash(1.05, "m001", recover_at=2.0)
        runtime, chaos_report, chaos_counted = simulate(chaos)
        return (runtime, free_report, free_counted, chaos_report,
                chaos_counted)

    runtime, free_report, free_counted, chaos_report, chaos_counted = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    rob = chaos_report.robustness
    report = experiment("E6d-chaos-crash-recover")
    report.claim("a crashed machine can rejoin: recovery broadcast, ring "
                 "re-admission, lazy slate re-hydration from the kv-store, "
                 "hinted-handoff drain — loss bounded by the flush interval")
    report.table(
        ["metric", "failure-free", "crash+recover"],
        [["counted", free_counted, chaos_counted],
         ["recoveries", 0, rob.recoveries],
         ["recovery broadcasts", 0,
          chaos_report.master_stats["recovery_broadcasts"]],
         ["rehydrated slates", 0, rob.rehydrated_slates],
         ["hints stored/delivered", "0/0",
          f"{rob.hints_stored}/{rob.hints_delivered}"],
         ["hints pending at end", 0, rob.hints_pending],
         ["events lost", free_report.counters.lost_failure,
          chaos_report.counters.lost_failure]])
    assert rob.recoveries == 1
    assert rob.rehydrated_slates > 0
    assert rob.hints_pending == 0
    assert "m001" in runtime._machine_ring.live_members
    # Documented loss bound: one flush interval of the dead machine's
    # update share, plus events queued/in-flight at the crash.
    loss_bound = rate * flush + chaos_report.counters.lost_failure + 64
    assert chaos_counted >= free_counted - loss_bound
    report.outcome(
        f"machine rejoined and re-hydrated {rob.rehydrated_slates} slates; "
        f"count {chaos_counted}/{free_counted} within the "
        f"{int(loss_bound)}-event flush-interval bound; "
        f"{rob.hints_delivered} hints drained, 0 pending")


def test_e6e_delivery_semantics(benchmark, experiment):
    """Beyond the paper: the same crash+recover schedule under all three
    delivery modes. At-most-once (the paper's choice) under-counts,
    at-least-once replay over-counts, and effectively-once — replay plus
    per-slate dedup watermarks checkpointed at epoch barriers — lands
    exactly on the failure-free totals."""
    rate, duration, flush = 2000.0, 3.0, 0.2

    def run():
        def simulate(schedule, **delivery_kwargs):
            # Exactness needs per-key FIFO application, hence the
            # single-choice dispatcher for every mode (see
            # tests/sim/test_effectively_once.py).
            config = SimConfig(flush_policy=FlushPolicy.every(flush),
                               queue_capacity=100_000, two_choice=False,
                               kill_kv_on_machine_failure=True,
                               **delivery_kwargs)
            source = constant_rate("S1", rate_per_s=rate,
                                   duration_s=duration,
                                   key_fn=lambda i: f"k{i % 64}")
            runtime = SimRuntime(build_count_app(),
                                 ClusterSpec.uniform(4, cores=4), config,
                                 [source], failures=schedule)
            sim_report = runtime.run(duration + 3.0)
            counted = sum(v["count"]
                          for v in runtime.slates_of("U1").values())
            return sim_report, counted

        chaos = lambda: FaultSchedule(seed=42).crash(1.05, "m001",
                                                     recover_at=2.0)
        _, free_counted = simulate(FaultSchedule())
        _, amo_counted = simulate(chaos())
        _, alo_counted = simulate(
            chaos(), delivery_semantics="at-least-once",
            replay_horizon_s=duration + 3.0)
        eo_report, eo_counted = simulate(
            chaos(), delivery_semantics="effectively-once",
            checkpoint_epoch_s=0.5)
        return (free_counted, amo_counted, alo_counted, eo_counted,
                eo_report)

    free_counted, amo_counted, alo_counted, eo_counted, eo_report = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    rob = eo_report.robustness
    report = experiment("E6e-delivery-semantics")
    report.claim("effectively-once = at-least-once replay + idempotent "
                 "application via per-slate dedup watermarks persisted "
                 "with the slate and checkpointed at epoch barriers; on "
                 "a crash+recover it reproduces the failure-free counts "
                 "exactly")
    report.table(
        ["delivery mode", "counted", "vs failure-free"],
        [["(failure-free)", free_counted, "—"],
         ["at-most-once", amo_counted, amo_counted - free_counted],
         ["at-least-once", alo_counted, alo_counted - free_counted],
         ["effectively-once", eo_counted, eo_counted - free_counted]])
    assert amo_counted < free_counted          # loses in-flight events
    assert alo_counted > free_counted          # replays without dedup
    assert eo_counted == free_counted          # exact
    assert rob.replay_deduped > 0
    assert rob.replay_reapplied > 0
    assert rob.checkpoint_epochs > 0
    report.outcome(
        f"at-most-once {amo_counted - free_counted:+d}, at-least-once "
        f"{alo_counted - free_counted:+d}, effectively-once exact at "
        f"{eo_counted}; {rob.replay_deduped} replays deduped, "
        f"{rob.replay_reapplied} lost effects reapplied across "
        f"{rob.checkpoint_epochs} checkpoint epochs")
