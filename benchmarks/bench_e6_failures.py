"""E6 — Failure handling (Section 4.3).

Paper: workers detect dead peers on send ("in most cases ... allows us to
detect worker failures and recover from them in a timely fashion"); the
master broadcast reroutes the ring; queued events and unflushed slate
changes are lost by design, because "low latency is far more important
... The system should be able to cope with failures very quickly to avoid
falling too far behind the stream" — versus MapReduce, where "it is
always possible (even if inconvenient) to restart ... from scratch".
"""

from __future__ import annotations

import pytest

from repro.baselines.mapreduce import MapReduceCosts
from repro.cluster import ClusterSpec
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app


def run_with_failure(flush_interval: float, machines: int = 4,
                     rate: float = 2000.0, duration: float = 2.0,
                     fail_at: float = 1.0):
    config = SimConfig(flush_policy=FlushPolicy.every(flush_interval),
                       queue_capacity=100_000)
    source = constant_rate("S1", rate_per_s=rate, duration_s=duration,
                           key_fn=lambda i: f"k{i % 64}")
    runtime = SimRuntime(build_count_app(),
                         ClusterSpec.uniform(machines, cores=4), config,
                         [source], failures=[(fail_at, "m001")])
    sim_report = runtime.run(duration + 10.0)
    counted = sum(v["count"] for v in runtime.slates_of("U1").values())
    return runtime, sim_report, counted, int(rate * duration)


def test_e6_detection_and_bounded_loss(benchmark, experiment):
    def run():
        return run_with_failure(flush_interval=0.2)

    runtime, sim_report, counted, offered = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = experiment("E6a-failure-recovery")
    report.claim("failures detected on send and broadcast by the master; "
                 "events to the dead machine are lost (and logged as "
                 "lost); the ring reroutes so the stream flows on")
    report.table(
        ["metric", "value"],
        [["machines", 4],
         ["failure injected at (s)", 1.0],
         ["detection time (ms)",
          f"{sim_report.failure_detection_s * 1e3:.2f}"],
         ["master broadcasts", sim_report.master_stats["broadcasts_sent"]],
         ["duplicate reports absorbed",
          sim_report.master_stats["duplicate_reports"]],
         ["offered events", offered],
         ["counted after failure", counted],
         ["events lost", sim_report.counters.lost_failure],
         ["loss fraction",
          f"{sim_report.counters.lost_failure / offered:.4f}"],
         ["post-failure p99 (ms)",
          f"{sim_report.latency.p99 * 1e3:.2f}"]])
    assert sim_report.failure_detection_s is not None
    assert sim_report.failure_detection_s < 0.1       # detected in ~one hop
    assert sim_report.counters.lost_failure < 0.15 * offered
    assert counted >= 0.75 * offered
    report.outcome(
        f"detected in {sim_report.failure_detection_s * 1e3:.0f} ms; "
        f"{sim_report.counters.lost_failure}/{offered} events lost "
        f"({100 * sim_report.counters.lost_failure / offered:.1f}%); "
        f"stream never stops")


def test_e6_flush_interval_bounds_slate_loss(benchmark, experiment):
    """More frequent flushing = less slate state lost on a crash."""
    def run():
        rows = []
        for interval in (0.05, 0.5, 5.0):
            runtime, sim_report, counted, offered = run_with_failure(
                flush_interval=interval)
            machine = runtime.machines["m001"]
            lost_dirty = machine.central_mgr.stats.lost_dirty_on_crash
            rows.append((interval, lost_dirty, counted, offered))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E6b-flush-vs-loss")
    report.claim("whatever changes not yet flushed to the key-value "
                 "store are lost when an updater fails")
    report.table(
        ["flush interval (s)", "dirty slates lost", "counted", "offered"],
        [[i, d, c, o] for i, d, c, o in rows])
    dirty_losses = [d for _, d, __, ___ in rows]
    assert dirty_losses[0] <= dirty_losses[-1]
    assert dirty_losses[-1] > 0
    report.outcome(f"dirty-slate loss grows with the flush interval: "
                   f"{dirty_losses} for intervals 0.05/0.5/5 s")


def test_e6_vs_mapreduce_restart(benchmark, experiment):
    """MapReduce's answer to failure is a from-scratch restart: the
    recovery cost is the whole job, and the stream keeps accumulating
    meanwhile ('streams continue to flow at their own rate, oblivious to
    processing issues')."""
    def run():
        _, sim_report, counted, offered = run_with_failure(
            flush_interval=0.2)
        costs = MapReduceCosts()
        # A MapReduce job over one hour of stream history at our rate.
        history = int(2000 * 3600)
        restart_s = costs.job_duration(history, parallelism=32)
        backlog_after_restart = 2000 * restart_s
        return sim_report, restart_s, backlog_after_restart

    sim_report, restart_s, backlog = benchmark.pedantic(run, rounds=1,
                                                        iterations=1)
    report = experiment("E6c-vs-mapreduce-restart")
    report.claim("restarting a MapReduce computation from scratch is "
                 "possible but leaves the system far behind the stream; "
                 "Muppet recovers in one detection round")
    report.table(
        ["system", "recovery time", "events accumulated meanwhile"],
        [["Muppet (detect + reroute)",
          f"{sim_report.failure_detection_s * 1e3:.0f} ms",
          f"{int(2000 * sim_report.failure_detection_s)}"],
         ["MapReduce restart (1 h history, 32-way)",
          f"{restart_s:.0f} s", f"{int(backlog)}"]])
    assert restart_s > 100 * sim_report.failure_detection_s
    report.outcome(
        f"Muppet resumes in {sim_report.failure_detection_s * 1e3:.0f} ms "
        f"vs a {restart_s:.0f} s from-scratch reprocess — a "
        f"{restart_s / sim_report.failure_detection_s:,.0f}x gap")
