"""Component micro-benchmarks (pytest-benchmark, wall clock).

Not paper experiments — these are the library's own performance
regression suite: the hot-path costs of the ring, dispatcher, codec,
LSM node, slate cache, and reference executor.
"""

from __future__ import annotations

import dataclasses
import itertools
import json

import pytest

from repro.cluster.hashring import HashRing, route_key
from repro.core import ReferenceExecutor
from repro.core.event import Event
from repro.core.slate import Slate, SlateKey, _json_size_fast
from repro.kvstore.node import StorageNode
from repro.muppet.dispatch import DispatchStats, TwoChoiceDispatcher
from repro.slates.cache import SlateCache
from repro.slates.codec import CompressedJsonCodec, JsonCodec
from tests.conftest import build_count_app, make_events


def test_micro_hashring_lookup(benchmark):
    ring = HashRing([f"m{i}" for i in range(16)])
    keys = itertools.cycle([route_key(f"user{i}", "U1")
                            for i in range(1000)])
    benchmark(lambda: ring.lookup(next(keys)))


def test_micro_dispatcher_choose(benchmark):
    dispatcher = TwoChoiceDispatcher(num_threads=8)
    lengths = [3, 1, 4, 1, 5, 9, 2, 6]
    processing = [None] * 8
    keys = itertools.cycle([f"user{i}" for i in range(1000)])
    benchmark(lambda: dispatcher.choose(next(keys), "U1", lengths,
                                        processing))


def test_micro_codec_encode(benchmark):
    codec = CompressedJsonCodec()
    slate = {"count": 12345, "interests": ["a", "b", "c"] * 10,
             "last_seen": 1234567.0}
    benchmark(codec.encode, slate)


def test_micro_codec_decode(benchmark):
    codec = CompressedJsonCodec()
    blob = codec.encode({"count": 12345,
                         "interests": ["a", "b", "c"] * 10})
    benchmark(codec.decode, blob)


def test_micro_plain_json_codec(benchmark):
    codec = JsonCodec()
    slate = {"count": 12345, "interests": ["a", "b", "c"] * 10}
    benchmark(codec.encode, slate)


@pytest.mark.parametrize("level", [1, 6, 9])
def test_micro_codec_zlib_levels(benchmark, level):
    """Compression-level sweep: encode cost vs blob size at zlib 1/6/9."""
    codec = CompressedJsonCodec(level=level)
    assert codec.level == level
    slate = {"count": 12345, "interests": ["a", "b", "c"] * 50,
             "history": [{"ts": i * 0.5, "tag": f"t{i % 7}"}
                         for i in range(40)]}
    blob = benchmark(codec.encode, slate)
    raw = len(JsonCodec().encode(slate))
    benchmark.extra_info["blob_bytes"] = len(blob)
    benchmark.extra_info["ratio"] = round(raw / len(blob), 2)
    assert codec.decode(blob) == slate


def test_micro_kvstore_put(benchmark):
    counter = itertools.count()
    node = StorageNode("n", clock=lambda: float(next(counter)),
                       memtable_flush_bytes=1 << 30)
    keys = itertools.cycle([f"row{i}" for i in range(500)])
    benchmark(lambda: node.put(next(keys), "U1", b"x" * 200))


def test_micro_kvstore_get_memtable(benchmark):
    counter = itertools.count()
    node = StorageNode("n", clock=lambda: float(next(counter)),
                       memtable_flush_bytes=1 << 30)
    for i in range(500):
        node.put(f"row{i}", "U1", b"x" * 200)
    keys = itertools.cycle([f"row{i}" for i in range(500)])
    benchmark(lambda: node.get(next(keys), "U1"))


def test_micro_kvstore_get_sstable(benchmark):
    counter = itertools.count()
    node = StorageNode("n", clock=lambda: float(next(counter)),
                       memtable_flush_bytes=1 << 30)
    for i in range(500):
        node.put(f"row{i}", "U1", b"x" * 200)
    node.flush()
    keys = itertools.cycle([f"row{i}" for i in range(500)])
    benchmark(lambda: node.get(next(keys), "U1"))


def test_micro_slate_cache_hit(benchmark):
    cache = SlateCache(capacity=1000)
    slate_keys = [SlateKey("U1", f"k{i}") for i in range(500)]
    for slate_key in slate_keys:
        cache.put(Slate(slate_key, {"count": 1}))
    cycle = itertools.cycle(slate_keys)
    benchmark(lambda: cache.get(next(cycle)))


# -- hot-path representation micro-benches (PR: compact slotted events) --
#
# These pin the costs the fast-forward overhaul is built on: Event as a
# NamedTuple (vs the historical frozen dataclass it replaced), the
# ``tuple.__new__`` stamping idiom the fused loop uses, SlateKey's C-level
# tuple hash, the arithmetic slate sizer vs json.dumps, and slotted stats
# counters. Regressions here show up magnified ~200k× in E1/E23 walls.


@dataclasses.dataclass(frozen=True)
class _FrozenDataclassEvent:
    """What Event used to be — kept only as the micro-bench yardstick."""

    sid: str
    ts: float
    key: str
    value: object = None
    seq: int = 0
    origin: object = None
    oseq: int = 0


def test_micro_event_alloc_frozen_dataclass_baseline(benchmark):
    benchmark(_FrozenDataclassEvent, "S1", 1.5, "user1", 42, 7, None, 0)


def test_micro_event_alloc_namedtuple(benchmark):
    benchmark(Event, "S1", 1.5, "user1", 42, 7, None, 0)


def test_micro_event_alloc_tuple_new(benchmark):
    """The fused-loop stamping idiom: bypass the named ctor entirely."""
    tuple_new = tuple.__new__
    made = tuple_new(Event, ("S1", 1.5, "user1", 42, 7, None, 0))
    assert made.sid == "S1" and made[1] == 1.5
    benchmark(lambda: tuple_new(Event, ("S1", 1.5, "user1", 42, 7, None, 0)))


def test_micro_slatekey_hash(benchmark):
    keys = [SlateKey("U1", f"user{i}") for i in range(1000)]
    benchmark(lambda: sum(map(hash, keys)))


def test_micro_slate_size_json_dumps_baseline(benchmark):
    data = {f"f{i}": i * 37 for i in range(12)}
    benchmark(lambda: len(json.dumps(data, separators=(",", ":"))))


def test_micro_slate_size_arithmetic(benchmark):
    """The _json_size_fast shortcut must agree with json.dumps exactly."""
    data = {f"f{i}": i * 37 for i in range(12)}
    assert _json_size_fast(data) == len(
        json.dumps(data, separators=(",", ":")))
    benchmark(_json_size_fast, data)


def test_micro_stats_counter_inc_slotted(benchmark):
    stats = DispatchStats()

    def bump():
        stats.dispatched += 1
        stats.to_primary += 1
        stats.queue_locks += 2

    benchmark(bump)


def test_micro_reference_executor_throughput(benchmark):
    events = make_events(1000, keys=32)

    def run():
        return ReferenceExecutor(build_count_app()).run(list(events))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.counters.processed == 2000
