"""E9 — The flush-policy spectrum (Section 4.2).

"Dirty (updated) slates are periodically flushed to the key-value store.
The application can set the flushing interval, ranging from 'immediate
write-through' to 'only when evicted from cache'." The trade: kv-store
write volume (and its I/O) versus how much slate state a crash loses.
"""

from __future__ import annotations

import itertools


from repro.core.operators import Updater
from repro.kvstore.cluster import ReplicatedKVStore
from repro.slates.manager import FlushPolicy, SlateManager


class Count(Updater):
    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1


def drive(policy: FlushPolicy, updates: int = 10_000, keys: int = 50):
    """Apply a hot-key update stream under one flush policy; then crash."""
    ticks = itertools.count()
    clock = lambda: next(ticks) * 0.001  # 1 ms per operation
    store = ReplicatedKVStore(["n0", "n1"], replication_factor=2,
                              clock=clock)
    manager = SlateManager(store, cache_capacity=keys * 2,
                           flush_policy=policy, clock=clock)
    updater = Count(name="U1")
    for i in range(updates):
        slate = manager.get(updater, f"k{i % keys}")
        slate["count"] += 1
        slate.touch(clock())
        manager.note_update(slate)
        manager.flush_due()
    lost_dirty = manager.crash()
    return manager, lost_dirty


def test_e9_flush_policy_sweep(benchmark, experiment):
    policies = [
        ("write-through", FlushPolicy.write_through()),
        ("interval 0.1 s", FlushPolicy.every(0.1)),
        ("interval 1 s", FlushPolicy.every(1.0)),
        ("on-evict only", FlushPolicy.on_evict()),
    ]

    def run():
        rows = []
        for name, policy in policies:
            manager, lost_dirty = drive(policy)
            rows.append((name, manager.stats.kv_writes, lost_dirty))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E9-flush-policies")
    report.claim("flushing interval ranges from immediate write-through "
                 "to only-on-evict; fewer flushes mean cheaper writes "
                 "but more loss on failure")
    report.table(
        ["policy", "kv writes (of 10,000 updates)",
         "dirty slates lost on crash"],
        [[name, writes, lost] for name, writes, lost in rows])
    writes = [w for _, w, __ in rows]
    losses = [l for *_, l in rows]
    # Monotone trade-off across the spectrum.
    assert writes[0] == 10_000                 # write-through: every update
    assert writes == sorted(writes, reverse=True)
    assert losses[0] == 0                       # write-through: no loss
    assert losses[-1] == 50                     # on-evict: all 50 dirty
    assert losses == sorted(losses)
    report.outcome(
        f"kv writes fall {writes[0]} -> {writes[-1]} across the "
        f"spectrum while crash loss rises {losses[0]} -> {losses[-1]} "
        "dirty slates — the paper's dial, end to end")


def test_e9_write_through_io_cost(benchmark, experiment):
    """Write-through's per-update I/O versus interval batching, in
    simulated device seconds (what the background thread must absorb)."""
    def run():
        costs = {}
        for name, policy in [("write-through",
                              FlushPolicy.write_through()),
                             ("interval 1 s", FlushPolicy.every(1.0))]:
            manager, _ = drive(policy, updates=5_000)
            busy = sum(
                node.device.stats.busy_time_s
                for node in manager.store.nodes.values())
            costs[name] = busy
        return costs

    costs = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E9b-io-cost")
    report.claim("delaying flushes 'as long as possible' saves device "
                 "time because hot-slate overwrites coalesce")
    report.table(["policy", "total device busy (s)"],
                 [[k, f"{v:.4f}"] for k, v in costs.items()])
    assert costs["interval 1 s"] < costs["write-through"]
    report.outcome(
        f"interval flushing uses {costs['interval 1 s']:.4f} s of device "
        f"time vs {costs['write-through']:.4f} s for write-through "
        f"({costs['write-through'] / max(costs['interval 1 s'], 1e-9):.1f}"
        "x reduction)")
