"""E1 — Throughput scaling with cluster size (Section 5).

Paper: "By early 2011 Muppet processed over 100 millions tweets and 1.5
million checkins per day. ... It ran over a cluster of tens of machines."
100 M tweets/day ≈ 1,157 events/s — modest per-second rates; the paper's
point is that a MapUpdate cluster scales far beyond it. We measure (a)
that a handful of simulated machines absorbs the production rate with
sub-second latency, and (b) that saturation throughput grows near-
linearly with machine count.
"""

from __future__ import annotations

import json
import time


from repro.cluster import ClusterSpec
from repro.metrics import PAPER_TWEETS_PER_SECOND
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.workloads.zipf import zipf_key_fn
from tests.conftest import build_count_app


def run_cluster(machines: int, rate: float, duration: float = 1.5,
                config: SimConfig = None):
    source = constant_rate("S1", rate_per_s=rate, duration_s=duration,
                           key_fn=zipf_key_fn("user", 5000, 1.05,
                                              seed=machines))
    runtime = SimRuntime(build_count_app(),
                         ClusterSpec.uniform(machines, cores=4),
                         config or SimConfig(queue_capacity=100_000),
                         [source])
    report = runtime.run(duration + 20.0)
    offered = int(rate * duration)
    counted = sum(v["count"] for v in runtime.slates_of("U1").values())
    return report, offered, counted


def test_e1_production_rate_with_headroom(benchmark, experiment):
    """Tens of machines sustain the paper's production rate easily."""
    def run():
        return run_cluster(machines=10,
                           rate=PAPER_TWEETS_PER_SECOND, duration=2.0)

    report_, offered, counted = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    report = experiment("E1a-production-rate")
    report.claim(">100M tweets/day (~1,157 ev/s) on tens of machines, "
                 "latency under 2 seconds")
    report.table(
        ["metric", "value"],
        [["machines", 10],
         ["offered rate (ev/s)", f"{PAPER_TWEETS_PER_SECOND:.0f}"],
         ["offered events", offered],
         ["counted events", counted],
         ["lost", report_.counters.lost_total()],
         ["p50 latency (ms)", f"{report_.latency.p50 * 1e3:.2f}"],
         ["p99 latency (ms)", f"{report_.latency.p99 * 1e3:.2f}"]])
    assert counted == offered
    assert report_.latency.p99 < 2.0
    report.outcome("production rate fully absorbed; p99 = "
                   f"{report_.latency.p99 * 1e3:.1f} ms << 2 s bound")


def test_e1_scaling_with_machines(benchmark, experiment):
    """Saturation capacity grows with cluster size (near-linear)."""
    sweep = [1, 2, 4, 8, 16]
    # One 4-core machine sustains ~6.5k source ev/s in this model;
    # offer 40k/s so small clusters are saturated and must queue.
    heavy_rate = 40_000.0

    def run():
        rows = []
        for machines in sweep:
            sim_report, offered, counted = run_cluster(machines,
                                                       heavy_rate,
                                                       duration=0.5)
            rows.append((machines, offered, counted,
                         sim_report.latency.p99 if sim_report.latency
                         else float("nan"),
                         sim_report.queue_peak_depth))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E1b-scaling")
    report.claim("the framework scales up on commodity hardware with "
                 "computation and stream rate (Section 2 desiderata)")
    report.table(
        ["machines", "offered", "counted", "p99 (s)", "peak queue"],
        [[m, o, c, f"{p99:.3f}", q] for m, o, c, p99, q in rows])
    # Shape: more machines → lower p99 and shallower queues at fixed rate.
    p99s = [p99 for _, __, ___, p99, ____ in rows]
    assert p99s[-1] < p99s[0] / 5, "scaling should slash tail latency"
    queues = [q for *_, q in rows]
    assert queues[-1] < queues[0]
    report.outcome(f"p99 falls {p99s[0]:.3f}s -> {p99s[-1]:.4f}s from 1 "
                   f"to {sweep[-1]} machines at a fixed 40k ev/s offered "
                   "load (near-linear capacity growth)")


def test_e1_batching_ablation(benchmark, experiment):
    """Data-plane batching ablation: same workload, coalescing off vs on.

    Event coalescing must not change *what* is computed — only how many
    envelopes carry it and how much real time the simulation costs. The
    final slate state is asserted byte-identical.
    """
    machines, rate, duration = 4, 20_000.0, 1.0

    def once(batch: bool):
        cfg = SimConfig(queue_capacity=100_000,
                        batch_max_events=64 if batch else 0,
                        batch_linger_s=0.005 if batch else 0.0)
        source = constant_rate("S1", rate_per_s=rate,
                               duration_s=duration,
                               key_fn=zipf_key_fn("user", 5000, 1.05,
                                                  seed=machines))
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(machines, cores=4),
                             cfg, [source])
        t0 = time.perf_counter()
        sim_report = runtime.run(duration + 20.0)
        wall = time.perf_counter() - t0
        return sim_report, wall, runtime.slates_of("U1")

    def run():
        return once(False), once(True)

    (rep_off, wall_off, slates_off), (rep_on, wall_on, slates_on) = (
        benchmark.pedantic(run, rounds=1, iterations=1))
    dp = rep_on.dataplane
    report = experiment("E1c-batching-ablation")
    report.claim("coalescing events per destination machine amortizes "
                 "per-message cost without changing results")
    report.table(
        ["metric", "batching off", "batching on"],
        [["DES steps", rep_off.steps, rep_on.steps],
         ["sim events/s", f"{rep_off.events_per_second():.0f}",
          f"{rep_on.events_per_second():.0f}"],
         ["wall (s)", f"{wall_off:.2f}", f"{wall_on:.2f}"],
         ["batches sent", 0, dp.batches_sent],
         ["avg events/batch", "-",
          f"{dp.batched_events / max(1, dp.batches_sent):.1f}"],
         ["p99 latency (ms)", f"{rep_off.latency.p99 * 1e3:.2f}",
          f"{rep_on.latency.p99 * 1e3:.2f}"]])
    assert (json.dumps(slates_off, sort_keys=True)
            == json.dumps(slates_on, sort_keys=True)), \
        "batching changed the computed slate state"
    assert rep_on.steps < rep_off.steps
    assert rep_on.counters.processed == rep_off.counters.processed
    report.outcome(
        f"identical slates; DES steps {rep_off.steps} -> {rep_on.steps} "
        f"({dp.batches_sent} envelopes carried "
        f"{dp.batched_events} events, avg "
        f"{dp.batched_events / max(1, dp.batches_sent):.1f}/batch)")
