"""E7 — Queue overflow policies (Sections 4.3, 5).

The three mechanisms when a destination queue declines an event: drop
(and log), divert to a degraded-service overflow stream, or slow the
sources (source throttling). The paper also explains why throttling
*inside* the workflow deadlocks (the 10,000-events example) — which is
why only sources are throttled; we demonstrate the safe variant.
"""

from __future__ import annotations


from repro.cluster import ClusterSpec
from repro.core import Application
from repro.muppet.queues import OverflowPolicy, SourceThrottle
from repro.sim import SimConfig, SimRuntime, constant_rate
from tests.conftest import CountingUpdater, EchoMapper


def overloaded_app_with_overflow() -> Application:
    app = Application("overflow-demo")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_stream("S_ovf", overflow=True)
    app.add_mapper("M1", EchoMapper, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", CountingUpdater, subscribes=["S2"])
    app.add_updater("U_cheap", CountingUpdater, subscribes=["S_ovf"])
    return app.validate()


def run_policy(policy: OverflowPolicy, throttle=None):
    """One slow machine, tiny queues, a burst far beyond capacity."""
    config = SimConfig(queue_capacity=20, overflow=policy,
                       throttle=throttle)
    source = constant_rate("S1", rate_per_s=30_000, duration_s=0.1,
                           key_fn=lambda i: "hot")
    runtime = SimRuntime(overloaded_app_with_overflow(),
                         ClusterSpec.uniform(1, cores=2), config,
                         [source])
    sim_report = runtime.run(60.0)
    main = (runtime.slate("U1", "hot") or {}).get("count", 0)
    cheap = (runtime.slate("U_cheap", "hot") or {}).get("count", 0)
    return sim_report, main, cheap


def test_e7_policy_comparison(benchmark, experiment):
    offered = 3000

    def run():
        results = {}
        results["drop"] = run_policy(OverflowPolicy.drop())
        results["divert"] = run_policy(OverflowPolicy.divert("S_ovf"))
        results["throttle"] = run_policy(
            OverflowPolicy.throttle(),
            throttle=SourceThrottle(high_watermark=0.8,
                                    low_watermark=0.3))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E7-overflow-policies")
    report.claim("overflow can drop (logged), divert to a degraded "
                 "overflow stream, or throttle the sources; throttling "
                 "trades latency for completeness")
    rows = []
    for name, (sim_report, main, cheap) in results.items():
        counters = sim_report.counters
        served = main + cheap
        rows.append([
            name, main, cheap,
            counters.dropped_overflow,
            counters.diverted_overflow_stream,
            f"{sim_report.throttle_paused_s:.2f}",
            f"{sim_report.latency.p99 * 1e3:.0f}"
            if sim_report.latency else "-",
            f"{served / offered:.3f}"])
    report.table(
        ["policy", "full service", "degraded", "dropped", "diverted",
         "paused (s)", "p99 (ms)", "served fraction"], rows)

    drop_report, drop_main, _ = results["drop"]
    divert_report, divert_main, divert_cheap = results["divert"]
    throttle_report, throttle_main, _ = results["throttle"]
    # Drop: loses events, keeps latency low.
    assert drop_report.counters.dropped_overflow > 0
    assert drop_main < offered
    # Divert: overflow gets *some* (degraded) service instead of loss.
    assert divert_cheap > 0
    assert divert_main + divert_cheap > drop_main
    # Throttle: everything processed at full service, nothing dropped,
    # at the price of source delay (latency).
    assert throttle_main == offered
    assert throttle_report.counters.dropped_overflow == 0
    assert throttle_report.throttle_paused_s > 0
    assert throttle_report.latency.p99 > drop_report.latency.p99
    report.outcome(
        f"drop served {drop_main}/{offered} fast; divert added "
        f"{divert_cheap} degraded completions; throttle served "
        f"{throttle_main}/{offered} (100%) at p99 "
        f"{throttle_report.latency.p99:.2f} s")


def test_e7_feedback_loop_needs_source_throttling(benchmark, experiment):
    """A self-feeding updater (the 10,000-events scenario): with source
    throttling the run completes — the loop's own emissions are never
    blocked, only the external source is paced."""
    from repro.core import Updater

    class Amplifier(Updater):
        """Each source event emits FANOUT loop events (bounded depth)."""

        FANOUT = 40

        def init_slate(self, key):
            return {"seen": 0}

        def update(self, ctx, event, slate):
            slate["seen"] += 1
            if event.sid == "S1":
                for i in range(self.FANOUT):
                    ctx.publish("LOOP", f"{event.key}/{i}", None)

    def build():
        app = Application("feedback")
        app.add_stream("S1", external=True)
        app.add_stream("LOOP")
        app.add_updater("U1", Amplifier, subscribes=["S1", "LOOP"],
                        publishes=["LOOP"])
        return app.validate()

    def run():
        config = SimConfig(
            queue_capacity=50,
            overflow=OverflowPolicy.throttle(),
            throttle=SourceThrottle(high_watermark=0.8,
                                    low_watermark=0.3))
        source = constant_rate("S1", rate_per_s=2000, duration_s=0.1,
                               key_fn=lambda i: f"k{i}")
        runtime = SimRuntime(build(), ClusterSpec.uniform(1, cores=2),
                             config, [source])
        sim_report = runtime.run(120.0)
        seen = sum(v["seen"] for v in runtime.slates_of("U1").values())
        return sim_report, seen

    sim_report, seen = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E7b-feedback-loop")
    report.claim("throttling inside the workflow can deadlock a looping "
                 "updater; throttling only the sources cannot — no "
                 "operator ever blocks on its own output")
    expected = 200 * (1 + 40)  # 200 source events, 40 loop events each
    report.table(
        ["metric", "value"],
        [["source events", 200],
         ["fan-out per event", 40],
         ["expected deliveries", expected],
         ["processed deliveries", seen],
         ["dropped", sim_report.counters.dropped_overflow],
         ["source paused (s)", f"{sim_report.throttle_paused_s:.2f}"]])
    assert seen == expected          # completed — no deadlock, no loss
    assert sim_report.throttle_paused_s > 0
    report.outcome(f"all {expected} deliveries completed with the source "
                   f"paused {sim_report.throttle_paused_s:.2f} s — the "
                   "loop never deadlocked")
