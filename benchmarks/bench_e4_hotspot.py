"""E4 — Hotspot handling via two-choice dispatch (Sections 4.5, 5).

Paper: key distributions are "strongly skewed (e.g., follow a Zipfian
distribution)"; a single-owner worker "can become a hotspot: if it is
overloaded by a huge number of events with key k1 already in its queue, a
long time may pass before the worker gets around to processing events
with some key k2". Muppet 2.0's secondary queue relieves the hotspot
while bounding slate contention to two workers. We compare single-choice
against two-choice dispatch on one machine under heavy Zipf skew.
"""

from __future__ import annotations


from repro.cluster import ClusterSpec
from repro.sim import ENGINE_MUPPET2, SimConfig, SimRuntime, constant_rate
from repro.workloads.zipf import zipf_key_fn
from tests.conftest import build_count_app


def run_dispatch(two_choice: bool, rate: float = 8_000.0,
                 duration: float = 0.5):
    config = SimConfig(engine=ENGINE_MUPPET2, two_choice=two_choice,
                       queue_capacity=100_000)
    # Exponent 1.6: the top key draws ~half of all events — a hotspot.
    source = constant_rate("S1", rate_per_s=rate, duration_s=duration,
                           key_fn=zipf_key_fn("u", 500, 1.6, seed=4))
    runtime = SimRuntime(build_count_app(),
                         ClusterSpec.uniform(1, cores=8), config,
                         [source])
    return runtime, runtime.run(30.0)


def test_e4_two_choice_relieves_hotspots(benchmark, experiment):
    def run():
        results = {}
        for two_choice in (False, True):
            _, sim_report = run_dispatch(two_choice)
            results[two_choice] = sim_report
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    single, double = results[False], results[True]
    report = experiment("E4-hotspot-dispatch")
    report.claim("two-choice dispatch relieves overloaded single-owner "
                 "workers; slate contention stays <= 2 workers; an "
                 "incoming event locks no more than two queues")
    report.table(
        ["metric", "single-choice (1.0-style)", "two-choice (2.0)"],
        [["p50 latency (ms)", f"{single.latency.p50 * 1e3:.2f}",
          f"{double.latency.p50 * 1e3:.2f}"],
         ["p99 latency (ms)", f"{single.latency.p99 * 1e3:.2f}",
          f"{double.latency.p99 * 1e3:.2f}"],
         ["max latency (ms)", f"{single.latency.maximum * 1e3:.2f}",
          f"{double.latency.maximum * 1e3:.2f}"],
         ["peak queue depth", single.queue_peak_depth,
          double.queue_peak_depth],
         ["max workers per slate", single.max_workers_per_slate,
          double.max_workers_per_slate],
         ["secondary-queue spills", "-",
          double.dispatch_stats.get("spills", 0)],
         ["slate contention events", single.slate_contention_events,
          double.slate_contention_events]])
    # Shape: two-choice cuts tail latency and queue depth under skew.
    assert double.latency.p99 < single.latency.p99
    assert double.queue_peak_depth <= single.queue_peak_depth
    # Contention bound: never more than two workers on one slate.
    assert double.max_workers_per_slate <= 2
    assert single.max_workers_per_slate == 1
    # Both engines count everything (no loss, queues were large enough).
    assert single.counters.lost_total() == 0
    assert double.counters.lost_total() == 0
    report.outcome(
        f"p99 {single.latency.p99 * 1e3:.1f} -> "
        f"{double.latency.p99 * 1e3:.1f} ms, peak queue "
        f"{single.queue_peak_depth} -> {double.queue_peak_depth}, with "
        f"{double.dispatch_stats.get('spills', 0)} spills and contention "
        f"bounded at {double.max_workers_per_slate} workers/slate")


def test_e4_cold_keys_unblocked(benchmark, experiment):
    """The paper's k1/k2 story: a cold key stuck behind a hot key's
    queue is served promptly only with the secondary queue."""
    def run():
        rows = {}
        for two_choice in (False, True):
            _, sim_report = run_dispatch(two_choice, rate=8_000.0)
            by_updater = sim_report.latency_by_updater.get("U1")
            rows[two_choice] = by_updater
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E4b-cold-key-latency")
    report.claim("events with key k2 can be placed on a second worker "
                 "when the first is bogged down with k1")
    report.table(
        ["dispatch", "U1 p50 (ms)", "U1 p99 (ms)"],
        [["single-choice", f"{rows[False].p50 * 1e3:.2f}",
          f"{rows[False].p99 * 1e3:.2f}"],
         ["two-choice", f"{rows[True].p50 * 1e3:.2f}",
          f"{rows[True].p99 * 1e3:.2f}"]])
    assert rows[True].p99 < rows[False].p99
    report.outcome("two-choice halves (or better) the tail for keys "
                   "behind the hotspot")
