"""Benchmark-suite plumbing: experiment tables in the terminal summary.

Each bench module reproduces one experiment from DESIGN.md's index
(F1/F2, E1–E13). Timing goes through pytest-benchmark as usual; the
*scientific* output — the paper-versus-measured tables — is recorded via
the ``experiment`` fixture and printed in the terminal summary (so it
lands in ``bench_output.txt``) as well as written under a results
directory (``benchmarks/results/`` by default; override with
``--results-dir`` so CI can collect artifacts from a scratch path).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple

import pytest

_DEFAULT_RESULTS_DIR = Path(__file__).parent / "results"
_results_dir = _DEFAULT_RESULTS_DIR
_TABLES: List[Tuple[str, str]] = []


def pytest_addoption(parser):
    parser.addoption(
        "--results-dir", action="store", default=None,
        help="directory for experiment-report artifacts "
             "(default: benchmarks/results/)")


def pytest_configure(config):
    global _results_dir
    override = config.getoption("--results-dir", default=None)
    if override:
        _results_dir = Path(override)


class ExperimentReport:
    """Collects one experiment's table plus paper-claim context."""

    def __init__(self, experiment_id: str) -> None:
        self.experiment_id = experiment_id
        self._lines: List[str] = []

    def claim(self, text: str) -> None:
        """Record the paper's claim this experiment checks."""
        self._lines.append(f"paper claim: {text}")

    def line(self, text: str = "") -> None:
        """Append a free-form output line."""
        self._lines.append(text)

    def table(self, headers, rows) -> None:
        """Append an aligned table."""
        from repro.metrics import format_table

        self._lines.append(format_table(headers, rows))

    def outcome(self, text: str) -> None:
        """Record the measured outcome / verdict line."""
        self._lines.append(f"measured: {text}")

    def finish(self) -> None:
        body = "\n".join(self._lines)
        _TABLES.append((self.experiment_id, body))
        _results_dir.mkdir(parents=True, exist_ok=True)
        path = _results_dir / f"{self.experiment_id}.txt"
        path.write_text(body + "\n")


@pytest.fixture
def experiment():
    """Create an :class:`ExperimentReport`; auto-finishes after the test."""
    reports: List[ExperimentReport] = []

    def make(experiment_id: str) -> ExperimentReport:
        report = ExperimentReport(experiment_id)
        reports.append(report)
        return report

    yield make
    for report in reports:
        report.finish()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "experiment reports (paper vs measured)")
    for experiment_id, body in _TABLES:
        terminalreporter.write_sep("-", experiment_id)
        for line in body.splitlines():
            terminalreporter.write_line(line)
