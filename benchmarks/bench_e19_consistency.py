"""E19 — The quorum knob (Section 4.2).

"The application can specify the desired quorum used by the Cassandra
store for a successful read/write operation: any single machine ..., a
majority of replicas ..., or all of the replicas." The trade is classic:
stronger levels cost more per operation and lose availability when
replicas die; weaker levels are fast and available but can serve stale
reads (repaired lazily). This bench measures all three on our store.
"""

from __future__ import annotations

import itertools


from repro.errors import QuorumError
from repro.kvstore.api import ConsistencyLevel
from repro.kvstore.cluster import ReplicatedKVStore

LEVELS = [ConsistencyLevel.ONE, ConsistencyLevel.QUORUM,
          ConsistencyLevel.ALL]


def make_store(nodes=5, rf=3):
    counter = itertools.count()
    return ReplicatedKVStore([f"n{i}" for i in range(nodes)],
                             replication_factor=rf,
                             clock=lambda: float(next(counter)))


def test_e19_cost_and_availability(benchmark, experiment):
    writes = 2_000

    def run():
        rows = []
        for level in LEVELS:
            store = make_store()
            total_cost = 0.0
            for i in range(writes):
                result = store.write(f"row{i % 200}", "U1", b"v" * 128,
                                     consistency=level)
                total_cost += result.cost_s
            # Availability under one failed replica:
            victim = store.replicas_for("row0")[0]
            store.mark_down(victim)
            try:
                store.write("row0", "U1", b"v2", consistency=level)
                survives_one = True
            except QuorumError:
                survives_one = False
            # ... and under two failed replicas.
            second = store.replicas_for("row0")[1]
            store.mark_down(second)
            try:
                store.write("row0", "U1", b"v3", consistency=level)
                survives_two = True
            except QuorumError:
                survives_two = False
            rows.append((level.value, total_cost / writes, survives_one,
                         survives_two, store.hints_stored))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E19-consistency-levels")
    report.claim("ONE / QUORUM (majority) / ALL: stronger levels pay "
                 "more and tolerate fewer failures")
    report.table(
        ["level", "mean write cost (µs)", "writes with 1 replica down",
         "with 2 down", "hints stored"],
        [[level, f"{cost * 1e6:.2f}",
          "ok" if one else "UNAVAILABLE",
          "ok" if two else "UNAVAILABLE", hints]
         for level, cost, one, two, hints in rows])
    by_level = {level: (cost, one, two)
                for level, cost, one, two, _ in rows}
    # Availability ordering at rf=3: ONE survives 2 down, QUORUM 1, ALL 0.
    assert by_level["one"][1] and by_level["one"][2]
    assert by_level["quorum"][1] and not by_level["quorum"][2]
    assert not by_level["all"][1]
    report.outcome("rf=3 availability ladder holds: ONE survives two "
                   "replica failures, QUORUM one, ALL none; missed "
                   "writes accumulate as hints for handoff")


def test_e19_stale_reads_at_one_repaired_at_quorum(benchmark,
                                                   experiment):
    """ONE can read stale data after a partial write; QUORUM cannot
    (read repair patches the stragglers on the way)."""
    def run():
        store = make_store(nodes=3, rf=3)
        store.write("row", "U1", b"v1", consistency=ConsistencyLevel.ALL)
        replicas = store.replicas_for("row")
        # The last replica misses the second write.
        store.mark_down(replicas[2])
        store.write("row", "U1", b"v2",
                    consistency=ConsistencyLevel.QUORUM)
        # Drop the hint *before* rejoin so the replica comes back
        # genuinely stale (isolating read repair from hinted handoff).
        store._hints.clear()
        store.mark_up(replicas[2])
        stale_node = store.nodes[replicas[2]]
        stale_direct, _ = stale_node.get("row", "U1")
        quorum_read = store.read("row", "U1", ConsistencyLevel.QUORUM)
        repaired_direct, _ = stale_node.get("row", "U1")
        return stale_direct, quorum_read.value, repaired_direct

    stale, quorum_value, repaired = benchmark.pedantic(run, rounds=1,
                                                       iterations=1)
    report = experiment("E19b-read-repair")
    report.claim("majority reads reconcile divergent replicas "
                 "(last-write-wins) and repair stale ones")
    report.table(
        ["observation", "value"],
        [["stale replica before quorum read",
          stale.decode() if stale else "absent"],
         ["quorum read returns", quorum_value.decode()],
         ["stale replica after quorum read", repaired.decode()]])
    assert stale == b"v1"          # genuinely stale
    assert quorum_value == b"v2"   # majority wins
    assert repaired == b"v2"       # read repair healed it
    report.outcome("the stale v1 replica was healed to v2 by the "
                   "quorum read's read-repair pass")
