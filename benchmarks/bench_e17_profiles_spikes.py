"""E17/E18 — Production state shape (§5) and spike resilience (§1).

E17: "It kept over 30 millions slates of user profiles and 4 million
slates of venue profiles" — two updaters over one stream, with the user
population far larger than the venue population, and user slates bounded
by a TTL to the *active* working set. We run the dual-profile app and
measure both populations and the TTL effect.

E18: "must handle drastic spikes in the tweet volumes" (the §1
earthquake example). We hit the cluster with a 10× burst and measure the
backlog drain, then show the flip side: a straggler machine (the hash
ring is capacity-oblivious) drags the tail — context for why the paper's
hotspot tools exist.
"""

from __future__ import annotations


from repro.apps.profiles import (build_profiles_app,
                                 estimate_unique_visitors)
from repro.cluster import ClusterSpec, MachineSpec, NetworkSpec
from repro.core import ReferenceExecutor
from repro.sim import SimConfig, SimRuntime, spiky_rate
from repro.workloads import CheckinGenerator
from repro.workloads.checkins import parse_checkin
from tests.conftest import build_count_app

DAY = 86_400.0


def test_e17_dual_profile_populations(benchmark, experiment):
    def run():
        generator = CheckinGenerator(rate_per_s=2000, seed=501,
                                     num_users=5_000)
        events, _ = generator.take_with_truth(8_000)
        result = ReferenceExecutor(build_profiles_app()).run(events)
        users = result.slates_of("U_user")
        venues = result.slates_of("U_venue")
        true_users = {e.key for e in events}
        true_venues = {parse_checkin(e.value)["venue"]["name"]
                       for e in events}
        # HLL accuracy on the busiest venue.
        busiest = max(venues, key=lambda v: venues[v]["checkins"])
        true_visitors = len({
            e.key for e in events
            if parse_checkin(e.value)["venue"]["name"] == busiest})
        estimate = estimate_unique_visitors(venues[busiest].as_dict())
        return (users, venues, true_users, true_venues, busiest,
                true_visitors, estimate)

    (users, venues, true_users, true_venues, busiest, true_visitors,
     estimate) = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E17-profile-slates")
    report.claim("30M user-profile slates + 4M venue-profile slates from "
                 "one stream: per-user and per-venue updaters, small "
                 "slates, user population >> venue population")
    report.table(
        ["metric", "value"],
        [["user slates", len(users)],
         ["distinct users in stream", len(true_users)],
         ["venue slates", len(venues)],
         ["distinct venues in stream", len(true_venues)],
         ["user/venue ratio", f"{len(users) / len(venues):.0f}x"],
         [f"busiest venue ({busiest!r}) true visitors", true_visitors],
         ["sketch estimate", f"{estimate:.0f}"],
         ["sketch error",
          f"{abs(estimate - true_visitors) / true_visitors * 100:.1f}%"]])
    assert len(users) == len(true_users)
    assert len(venues) == len(true_venues)
    assert len(users) > 20 * len(venues)  # the 30M-vs-4M asymmetry
    assert abs(estimate - true_visitors) / true_visitors < 0.35
    report.outcome(
        f"{len(users)} user slates vs {len(venues)} venue slates "
        f"({len(users) / len(venues):.0f}x asymmetry); distinct-visitor "
        "sketch within "
        f"{abs(estimate - true_visitors) / true_visitors * 100:.0f}% "
        "at 64 bytes of state")


def test_e17_user_ttl_bounds_working_set(benchmark, experiment):
    """User slates with a TTL track *active* users (§4.2's example)."""
    def run():
        generator = CheckinGenerator(rate_per_s=2000, seed=502,
                                     num_users=100_000)
        # Three "days" of traffic: day keys churn, so without TTL the
        # user population accumulates; with a 1-day TTL it plateaus.
        events = []
        for day in range(3):
            day_events, _ = generator.take_with_truth(
                3_000, start_ts=day * DAY)
            events.extend(day_events)
        end_ts = events[-1].ts
        without = ReferenceExecutor(build_profiles_app()).run(
            list(events))
        with_ttl = ReferenceExecutor(
            build_profiles_app(user_ttl=1.0 * DAY)).run(list(events))
        # Live slates = those the TTL has not expired by end of run
        # (expired ones are garbage the store GC reclaims, §4.2).
        live = sum(1 for s in with_ttl.slates_of("U_user").values()
                   if not s.expired(end_ts))
        return len(without.slates_of("U_user")), live

    total_users, active_users = benchmark.pedantic(run, rounds=1,
                                                   iterations=1)
    report = experiment("E17b-active-users-ttl")
    report.claim("'keep track of only active Twitter users ... a working "
                 "set which is typically much smaller than the set of "
                 "all Twitter users who have ever tweeted'")
    report.table(["configuration", "user slates after 3 days"],
                 [["no TTL (all users ever)", total_users],
                  ["1-day TTL (active working set)", active_users]])
    assert active_users < total_users
    report.outcome(f"{total_users} all-time user slates vs "
                   f"{active_users} active-set slates with a 1-day TTL")


def test_e18_spike_absorption(benchmark, experiment):
    """A 10x burst: queues absorb it; latency recovers after the spike."""
    def run():
        # A 4x4-core cluster handles ~26k source ev/s in this model;
        # the 60k/s burst is ~2.3x over capacity, so queues must absorb
        # it and drain afterwards.
        source = spiky_rate(
            "S1",
            [(2_000, 1.0), (60_000, 0.5), (2_000, 1.0)],
            key_fn=lambda i: f"u{i % 997}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(4, cores=4),
                             SimConfig(queue_capacity=200_000), [source])
        sim_report = runtime.run(30.0)
        return sim_report

    sim_report = benchmark.pedantic(run, rounds=1, iterations=1)
    offered = 2000 + 30_000 + 2000
    counted = sim_report.counters.processed
    report = experiment("E18-spike")
    report.claim("applications 'must handle drastic spikes in the tweet "
                 "volumes' (the §1 earthquake example)")
    report.table(
        ["metric", "value"],
        [["steady rate (ev/s)", 2_000],
         ["burst rate (ev/s)", 60_000],
         ["offered events", offered],
         ["processed deliveries", counted],
         ["lost", sim_report.counters.lost_total()],
         ["p50 (ms)", f"{sim_report.latency.p50 * 1e3:.2f}"],
         ["p99 (s)", f"{sim_report.latency.p99:.3f}"],
         ["max (s)", f"{sim_report.latency.maximum:.3f}"],
         ["peak queue depth", sim_report.queue_peak_depth]])
    assert sim_report.counters.lost_total() == 0
    assert sim_report.queue_peak_depth > 100  # the burst really queued
    assert sim_report.latency.maximum < 5.0   # backlog drains
    report.outcome(
        "the 30x burst (2.3x over capacity) queued up to "
        f"{sim_report.queue_peak_depth} events and drained fully with "
        f"zero loss; worst latency {sim_report.latency.maximum:.2f} s, "
        "back to milliseconds after the spike")


def test_e18_straggler_machine(benchmark, experiment):
    """The hash ring is capacity-oblivious: one weak machine drags the
    tail for the keys it owns — the structural reason the paper explores
    placement and load redistribution."""
    def run():
        results = {}
        for label, machines in (
            ("uniform 4x4-core",
             [MachineSpec(f"m{i}", cores=4) for i in range(4)]),
            ("one straggler (1-core)",
             [MachineSpec("m0", cores=4), MachineSpec("m1", cores=4),
              MachineSpec("m2", cores=4), MachineSpec("m3", cores=1)]),
        ):
            from repro.sim import constant_rate

            source = constant_rate("S1", rate_per_s=8_000,
                                   duration_s=1.0,
                                   key_fn=lambda i: f"u{i % 997}")
            runtime = SimRuntime(build_count_app(),
                                 ClusterSpec(machines, NetworkSpec()),
                                 SimConfig(queue_capacity=200_000),
                                 [source])
            results[label] = runtime.run(30.0)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E18b-straggler")
    report.claim("hash placement ignores machine capacity; a slow "
                 "machine's keys suffer (motivation for the §5 placement "
                 "and load-redistribution explorations)")
    report.table(
        ["cluster", "p50 (ms)", "p99 (ms)", "max (s)"],
        [[label, f"{r.latency.p50 * 1e3:.2f}",
          f"{r.latency.p99 * 1e3:.2f}", f"{r.latency.maximum:.3f}"]
         for label, r in results.items()])
    uniform = results["uniform 4x4-core"]
    straggler = results["one straggler (1-core)"]
    assert straggler.latency.p99 > 2 * uniform.latency.p99
    report.outcome(
        "one 1-core machine in a 4-machine ring multiplies p99 "
        f"{uniform.latency.p99 * 1e3:.1f} -> "
        f"{straggler.latency.p99 * 1e3:.1f} ms "
        f"({straggler.latency.p99 / uniform.latency.p99:.1f}x)")
