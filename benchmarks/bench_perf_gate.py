"""Perf gate — wall-clock and simulated-throughput regression guard.

Thin wrapper over the ``perf_baseline`` campaign
(:mod:`repro.campaign.perf`): the four canonical scenarios (E1-style
scaling, E2-style latency, E9-style flush, E23 fast-forwarding) live
there as campaign cells, the committed baseline ``BENCH_PERF.json`` *is*
the campaign artifact, and this script only adds the tolerance-based
gates that a byte-diff cannot express (wall-clock ceilings, speedup
floors).

Usage::

    python benchmarks/bench_perf_gate.py            # run + print
    python benchmarks/bench_perf_gate.py --update   # refresh BENCH_PERF.json
                                                    # via the campaign runner
    python benchmarks/bench_perf_gate.py --check    # compare vs committed
                                                    # baseline (CI gate)
    python benchmarks/bench_perf_gate.py --profile  # cProfile top-25

``--check`` fails (exit 1) when a scenario's simulated throughput drops
more than 10% below the committed baseline, or its wall-clock exceeds it
by more than 25%, or E1's batching CPU speedup falls under 1.1x, or
E23's hybrid run is not fused / not identical to exact / slower than
the 3.0x floor over the pinned exact baseline. The simulated-throughput
check is effectively exact (the simulator is deterministic); the wall
checks assume comparable hardware — refresh the baseline with
``--update`` when the reference machine changes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import get_spec, load_artifact
from repro.campaign.perf import E23_BASELINE_EXACT_WALL_S, scenarios_from_artifact
from repro.campaign.runner import Runner, RunResult, write_outputs

BASELINE_PATH = REPO_ROOT / "BENCH_PERF.json"

#: --check tolerances.
SIM_THROUGHPUT_TOLERANCE = 0.10  # simulated ev/s may drop at most 10%
WALL_TOLERANCE = 0.25  # wall-clock may grow at most 25%
MIN_E1_CPU_SPEEDUP = 1.1  # batching must stay a CPU win
MIN_E23_SPEEDUP = 3.0  # hybrid vs the pinned exact baseline

Scenarios = Dict[str, Dict[str, Any]]


def run_campaign() -> RunResult:
    """Run the ``perf_baseline`` campaign in-process (workers=1 — the
    scenarios measure wall clock, so parallel cells would contend)."""
    spec = get_spec("perf_baseline")
    result = Runner(spec, workers=1).run()
    for failure in result.verify_failures:
        print(f"  VERIFY FAIL: {failure}")
    return result


def check(current: Scenarios, baseline: Scenarios) -> int:
    """Compare a fresh run against the committed baseline; returns the
    number of violated gates (0 = pass)."""
    failures = 0
    for name, now in current.items():
        base = baseline.get(name)
        if base is None:
            print(f"  {name}: no baseline entry — run --update")
            failures += 1
            continue
        floor = base["sim_events_per_s"] * (1.0 - SIM_THROUGHPUT_TOLERANCE)
        if now["sim_events_per_s"] < floor:
            print(
                f"  FAIL {name}: simulated throughput "
                f"{now['sim_events_per_s']:.0f} ev/s < {floor:.0f} "
                f"(baseline {base['sim_events_per_s']:.0f} - 10%)"
            )
            failures += 1
        ceiling = base["wall_s"] * (1.0 + WALL_TOLERANCE)
        if now["wall_s"] > ceiling:
            print(
                f"  FAIL {name}: wall {now['wall_s']:.3f}s > "
                f"{ceiling:.3f}s (baseline {base['wall_s']:.3f}s + 25%)"
            )
            failures += 1
        print(
            f"  ok   {name}: {now['sim_events_per_s']:.0f} sim ev/s, "
            f"{now['wall_s']:.3f}s wall"
        )
    e1 = current["e1_scaling"]
    if not e1["slates_identical"]:
        print(
            "  FAIL e1_scaling: batched final slates differ from "
            "unbatched — determinism broken"
        )
        failures += 1
    if e1["speedup_cpu"] < MIN_E1_CPU_SPEEDUP:
        print(
            "  FAIL e1_scaling: batching CPU speedup "
            f"{e1['speedup_cpu']:.2f}x < {MIN_E1_CPU_SPEEDUP}x"
        )
        failures += 1
    e23 = current["e23_fastforward"]
    if e23["ff_mode"] != "fused":
        print(
            "  FAIL e23_fastforward: hybrid run fell back to exact "
            f"mode ({e23['ff_mode']}) on a fusion-eligible config"
        )
        failures += 1
    if not e23["identical"]:
        print(
            "  FAIL e23_fastforward: hybrid report/slates differ from "
            "exact — identity contract broken"
        )
        failures += 1
    if e23["speedup_vs_baseline"] < MIN_E23_SPEEDUP:
        print(
            "  FAIL e23_fastforward: hybrid speedup "
            f"{e23['speedup_vs_baseline']:.2f}x < {MIN_E23_SPEEDUP}x "
            f"over the pinned {E23_BASELINE_EXACT_WALL_S}s exact wall"
        )
        failures += 1
    return failures


def profile_hot_path(results_dir: Path) -> None:
    """cProfile one hybrid E23 pass; write the top-25 cumulative table.

    The artifact (``DIR/profile_top25.txt``) is what the fast-forward
    work was steered by: it shows where the remaining wall goes once
    the handlers are fused (heap ops, dict lookups, the fused closures
    themselves).
    """
    import cProfile
    import io
    import pstats

    from repro.campaign.perf import _chain_app, _events
    from repro.cluster import ClusterSpec
    from repro.sim import SimConfig, create_runtime
    from repro.sim.sources import Source

    n, spacing, keys, machines = 30_000, 0.00002, 200, 4
    horizon = n * spacing + 5.0
    runtime = create_runtime(
        _chain_app(),
        ClusterSpec.uniform(machines, cores=4),
        SimConfig(fastforward=True),
        [Source("S1", iter(_events(n, spacing, keys)))],
    )
    profiler = cProfile.Profile()
    profiler.enable()
    runtime.run(horizon)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / "profile_top25.txt"
    out.write_text(buffer.getvalue())
    print(buffer.getvalue())
    print(f"wrote {out}")


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--update",
        action="store_true",
        help="refresh BENCH_PERF.json (and its markdown rendering) "
        "through the campaign runner",
    )
    mode.add_argument(
        "--check",
        action="store_true",
        help="compare against committed BENCH_PERF.json; exit 1 on regression",
    )
    parser.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help="also write the measured numbers to DIR/perf_gate.json (CI artifact)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile one hybrid E23 pass and write the top-25 "
        "cumulative table to the results dir (default benchmarks/results/)",
    )
    args = parser.parse_args(argv)

    if args.profile:
        default_dir = REPO_ROOT / "benchmarks" / "results"
        chosen = Path(args.results_dir) if args.results_dir else default_dir
        profile_hot_path(chosen)
        return 0

    result = run_campaign()

    if args.update:
        # The committed baseline is the campaign artifact itself —
        # identical to `python -m repro campaign run perf_baseline
        # --update` run from the repo root.
        spec = get_spec("perf_baseline")
        json_path = spec.committed_path(REPO_ROOT)
        write_outputs(spec, result, json_path, spec.markdown_path(REPO_ROOT))
        print(f"wrote {json_path}")
        return 1 if (result.failed or result.verify_failures) else 0

    if result.failed or result.verify_failures:
        print(
            f"perf campaign failed ({result.failed} cells, "
            f"{len(result.verify_failures)} verify failures)"
        )
        return 1
    current = scenarios_from_artifact(result.payload)
    print(json.dumps(current, indent=2, sort_keys=True))

    if args.results_dir is not None:
        results_dir = Path(args.results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        out = results_dir / "perf_gate.json"
        out.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")

    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run --update first")
            return 1
        baseline = scenarios_from_artifact(load_artifact(BASELINE_PATH))
        failures = check(current, baseline)
        if failures:
            print(f"perf gate: {failures} gate(s) violated")
            return 1
        print("perf gate: all gates pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
