"""Perf gate — wall-clock and simulated-throughput regression guard.

Runs four canonical scenarios (E1-style scaling, E2-style latency,
E9-style flush, E23 fast-forwarding) and measures, for each, the
*simulated* events/second (deterministic — identical on every machine)
and the *real* wall-clock and CPU seconds the simulation itself took
(machine-dependent). The E1 scenario runs twice, with data-plane
batching off and on, and reports the batching speedup plus a
byte-identity check of the final slate state — the two headline claims
of the batched data plane. The E23 scenario runs the E1 workload exact
and hybrid (``fastforward=True``) with *identical* configuration,
asserts report- and slate-identity, and reports the hybrid speedup
against the pinned exact baseline wall.

Usage::

    python benchmarks/bench_perf_gate.py            # run + print
    python benchmarks/bench_perf_gate.py --update   # write BENCH_PERF.json
    python benchmarks/bench_perf_gate.py --check    # compare vs committed
                                                    # baseline (CI gate)
    python benchmarks/bench_perf_gate.py --profile  # + cProfile top-25

``--check`` fails (exit 1) when a scenario's simulated throughput drops
more than 10% below the committed baseline, or its wall-clock exceeds it
by more than 25%, or E1's batching CPU speedup falls under 1.1x, or
E23's hybrid run is not fused / not identical to exact / slower than
the 3.0x floor over the pinned exact baseline. The simulated-throughput
check is effectively exact (the simulator is deterministic); the wall
checks assume comparable hardware — refresh the baseline with
``--update`` when the reference machine changes.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterSpec
from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Mapper, Updater
from repro.kvstore.cluster import ReplicatedKVStore
from repro.sim import SimConfig, SimRuntime, create_runtime
from repro.sim.sources import Source
from repro.slates.manager import FlushPolicy, SlateManager

BASELINE_PATH = REPO_ROOT / "BENCH_PERF.json"

#: --check tolerances.
SIM_THROUGHPUT_TOLERANCE = 0.10   # simulated ev/s may drop at most 10%
WALL_TOLERANCE = 0.25             # wall-clock may grow at most 25%
MIN_E1_CPU_SPEEDUP = 1.1          # batching must stay a CPU win

#: E23 exact-mode baseline: the committed wall of the E1 workload on the
#: exact stepper (BENCH_PERF.json e1_scaling.wall_s_unbatched) on the
#: reference machine, pinned so the hybrid speedup claim is measured
#: against a fixed yardstick rather than a same-run remeasurement. The
#: issue targeted 5x; the honest measured speedup on this workload is
#: ~4x (see EXPERIMENTS.md E23 for the CPython floor analysis), so the
#: CI floor is set at 3.0x to stay robust to scheduler noise.
E23_BASELINE_EXACT_WALL_S = 3.6863
MIN_E23_SPEEDUP = 3.0

#: Timing repeats per measured run; min is reported (least-noise).
REPEATS = 3


class _Echo(Mapper):
    def map(self, ctx, event):
        ctx.publish(self.config["output_sid"], event.key, event.value)


class _Count(Updater):
    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1


def _chain_app() -> Application:
    """S1 -> M1 -> S2 -> M2 -> S3 -> U1: two cheap map hops per event,
    so the data plane (not operator CPU) dominates — the E1 scenario."""
    app = Application("perf-gate-chain")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_stream("S3")
    app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"],
                   config={"output_sid": "S2"})
    app.add_mapper("M2", _Echo, subscribes=["S2"], publishes=["S3"],
                   config={"output_sid": "S3"})
    app.add_updater("U1", _Count, subscribes=["S3"])
    return app.validate()


def _count_app() -> Application:
    """S1 -> M1 -> S2 -> U1: the minimal end-to-end pipeline (E2)."""
    app = Application("perf-gate-count")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"],
                   config={"output_sid": "S2"})
    app.add_updater("U1", _Count, subscribes=["S2"])
    return app.validate()


def _events(n: int, spacing: float, keys: int):
    return [Event("S1", ts=i * spacing, key=f"k{i % keys}", value=i)
            for i in range(n)]


def _timed(fn) -> Tuple[Any, float, float]:
    """Run ``fn`` REPEATS times; return (last result, min wall, min cpu)."""
    walls, cpus = [], []
    result = None
    for _ in range(REPEATS):
        w0, c0 = time.perf_counter(), time.process_time()
        result = fn()
        walls.append(time.perf_counter() - w0)
        cpus.append(time.process_time() - c0)
    return result, min(walls), min(cpus)


# -- scenarios ---------------------------------------------------------------
def scenario_e1_scaling() -> Dict[str, Any]:
    """Chain pipeline at 50k ev/s on 4 machines, the batched data plane
    off (no event coalescing, no routing memos, per-slate flushes — the
    pre-optimization behaviour) versus on (all three)."""
    n, spacing, keys, machines = 30_000, 0.00002, 200, 4
    horizon = n * spacing + 5.0

    def run(batch: bool):
        cfg = SimConfig(batch_max_events=64 if batch else 0,
                        batch_linger_s=0.005 if batch else 0.0,
                        memoize_routing=batch,
                        coalesce_slate_flushes=batch)
        runtime = SimRuntime(_chain_app(),
                             ClusterSpec.uniform(machines, cores=4),
                             cfg,
                             [Source("S1", iter(_events(n, spacing, keys)))])
        report = runtime.run(horizon)
        return report, runtime.slates_of("U1")

    (rep_off, slates_off), wall_off, cpu_off = _timed(lambda: run(False))
    (rep_on, slates_on), wall_on, cpu_on = _timed(lambda: run(True))
    identical = (json.dumps(slates_off, sort_keys=True)
                 == json.dumps(slates_on, sort_keys=True))
    return {
        "events": n,
        "machines": machines,
        "sim_events_per_s": round(rep_on.events_per_second(), 3),
        "sim_events_per_s_unbatched": round(rep_off.events_per_second(), 3),
        "steps_unbatched": rep_off.steps,
        "steps_batched": rep_on.steps,
        "wall_s": round(wall_on, 4),
        "wall_s_unbatched": round(wall_off, 4),
        "cpu_s": round(cpu_on, 4),
        "cpu_s_unbatched": round(cpu_off, 4),
        "speedup_wall": round(wall_off / wall_on, 3),
        "speedup_cpu": round(cpu_off / cpu_on, 3),
        "batches_sent": rep_on.dataplane.batches_sent,
        "avg_batch_events": round(
            rep_on.dataplane.batched_events
            / max(1, rep_on.dataplane.batches_sent), 2),
        "slates_identical": identical,
    }


def scenario_e2_latency() -> Dict[str, Any]:
    """Count pipeline at 2k ev/s on 6 machines with batching on; the
    linger must not push end-to-end latency anywhere near the paper's
    2 s bound."""
    n, spacing, keys, machines = 8_000, 0.0005, 500, 6
    horizon = n * spacing + 5.0

    def run():
        cfg = SimConfig(batch_max_events=64, batch_linger_s=0.002)
        runtime = SimRuntime(_count_app(),
                             ClusterSpec.uniform(machines, cores=4),
                             cfg,
                             [Source("S1", iter(_events(n, spacing, keys)))])
        return runtime.run(horizon)

    report, wall, cpu = _timed(run)
    assert report.latency is not None
    return {
        "events": n,
        "machines": machines,
        "sim_events_per_s": round(report.events_per_second(), 3),
        "p99_latency_ms": round(report.latency.p99 * 1e3, 3),
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
    }


def scenario_e9_flush() -> Dict[str, Any]:
    """Slate-manager flush pressure: 20k hot-key updates through an
    interval policy, exercising the coalesced write_batch path."""
    updates, keys = 20_000, 500

    def run():
        ticks = itertools.count()
        clock = lambda: next(ticks) * 0.001
        store = ReplicatedKVStore(["n0", "n1", "n2", "n3"],
                                  replication_factor=3, clock=clock)
        manager = SlateManager(store, cache_capacity=keys * 2,
                               flush_policy=FlushPolicy.every(0.05),
                               clock=clock)
        updater = _Count(name="U1")
        for i in range(updates):
            slate = manager.get(updater, f"k{i % keys}")
            slate["count"] += 1
            slate.touch(clock())
            manager.note_update(slate)
            manager.flush_due()
        manager.flush_all_dirty()
        return manager

    manager, wall, cpu = _timed(run)
    sim_now = manager.clock()  # one tick past the run's virtual end
    return {
        "updates": updates,
        "sim_events_per_s": round(updates / max(sim_now, 1e-9), 3),
        "kv_writes": manager.stats.kv_writes,
        "batch_flushes": manager.stats.batch_flushes,
        "batched_writes": manager.stats.batched_writes,
        "wall_s": round(wall, 4),
        "cpu_s": round(cpu, 4),
    }


def scenario_e23_fastforward() -> Dict[str, Any]:
    """The E1 chain workload, exact vs hybrid fast-forwarding, with
    *identical* default configuration for both runs — the only delta is
    ``fastforward=True`` — so report and final-slate identity is a
    like-for-like claim. The speedup figure is the hybrid wall against
    the pinned committed exact baseline (the same number E1 reports as
    ``wall_s_unbatched``); a fresh same-config exact wall is recorded
    alongside for transparency about machine drift."""
    n, spacing, keys, machines = 30_000, 0.00002, 200, 4
    horizon = n * spacing + 5.0

    def run(fastforward: bool):
        cfg = SimConfig(fastforward=fastforward)
        runtime = create_runtime(
            _chain_app(), ClusterSpec.uniform(machines, cores=4), cfg,
            [Source("S1", iter(_events(n, spacing, keys)))])
        report = runtime.run(horizon)
        ff = runtime.ff_summary() if fastforward else None
        return report, runtime.slates_of("U1"), ff

    (rep_x, slates_x, _), wall_x, cpu_x = _timed(lambda: run(False))
    (rep_h, slates_h, ff), wall_h, cpu_h = _timed(lambda: run(True))
    identical = (
        rep_x.counter_report() == rep_h.counter_report()
        and json.dumps(slates_x, sort_keys=True)
        == json.dumps(slates_h, sort_keys=True))
    return {
        "events": n,
        "machines": machines,
        "sim_events_per_s": round(rep_h.events_per_second(), 3),
        "steps": rep_h.steps,
        "ff_mode": ff["mode"],
        "inlined_steps": ff["inlined_steps"],
        "baseline_exact_wall_s": E23_BASELINE_EXACT_WALL_S,
        "exact_wall_s_fresh": round(wall_x, 4),
        "wall_s": round(wall_h, 4),
        "cpu_s": round(cpu_h, 4),
        "speedup_vs_baseline": round(E23_BASELINE_EXACT_WALL_S / wall_h, 3),
        "speedup_vs_fresh_exact": round(wall_x / wall_h, 3),
        "identical": identical,
    }


SCENARIOS = {
    "e1_scaling": scenario_e1_scaling,
    "e2_latency": scenario_e2_latency,
    "e9_flush": scenario_e9_flush,
    "e23_fastforward": scenario_e23_fastforward,
}


def run_all() -> Dict[str, Any]:
    results: Dict[str, Any] = {}
    for name, fn in SCENARIOS.items():
        print(f"running {name} ...", flush=True)
        results[name] = fn()
    return {
        "python": sys.version.split()[0],
        "repeats": REPEATS,
        "scenarios": results,
    }


def check(current: Dict[str, Any], baseline: Dict[str, Any]) -> int:
    """Compare a fresh run against the committed baseline; returns the
    number of violated gates (0 = pass)."""
    failures = 0
    for name, now in current["scenarios"].items():
        base = baseline.get("scenarios", {}).get(name)
        if base is None:
            print(f"  {name}: no baseline entry — run --update")
            failures += 1
            continue
        floor = base["sim_events_per_s"] * (1.0 - SIM_THROUGHPUT_TOLERANCE)
        if now["sim_events_per_s"] < floor:
            print(f"  FAIL {name}: simulated throughput "
                  f"{now['sim_events_per_s']:.0f} ev/s < "
                  f"{floor:.0f} (baseline "
                  f"{base['sim_events_per_s']:.0f} - 10%)")
            failures += 1
        ceiling = base["wall_s"] * (1.0 + WALL_TOLERANCE)
        if now["wall_s"] > ceiling:
            print(f"  FAIL {name}: wall {now['wall_s']:.3f}s > "
                  f"{ceiling:.3f}s (baseline {base['wall_s']:.3f}s + 25%)")
            failures += 1
        print(f"  ok   {name}: {now['sim_events_per_s']:.0f} sim ev/s, "
              f"{now['wall_s']:.3f}s wall")
    e1 = current["scenarios"]["e1_scaling"]
    if not e1["slates_identical"]:
        print("  FAIL e1_scaling: batched final slates differ from "
              "unbatched — determinism broken")
        failures += 1
    if e1["speedup_cpu"] < MIN_E1_CPU_SPEEDUP:
        print("  FAIL e1_scaling: batching CPU speedup "
              f"{e1['speedup_cpu']:.2f}x < {MIN_E1_CPU_SPEEDUP}x")
        failures += 1
    e23 = current["scenarios"]["e23_fastforward"]
    if e23["ff_mode"] != "fused":
        print("  FAIL e23_fastforward: hybrid run fell back to exact "
              f"mode ({e23['ff_mode']}) on a fusion-eligible config")
        failures += 1
    if not e23["identical"]:
        print("  FAIL e23_fastforward: hybrid report/slates differ from "
              "exact — identity contract broken")
        failures += 1
    if e23["speedup_vs_baseline"] < MIN_E23_SPEEDUP:
        print("  FAIL e23_fastforward: hybrid speedup "
              f"{e23['speedup_vs_baseline']:.2f}x < {MIN_E23_SPEEDUP}x "
              f"over the pinned {E23_BASELINE_EXACT_WALL_S}s exact wall")
        failures += 1
    return failures


def profile_hot_path(results_dir: Path) -> None:
    """cProfile one hybrid E23 pass; write the top-25 cumulative table.

    The artifact (``DIR/profile_top25.txt``) is what the fast-forward
    work was steered by: it shows where the remaining wall goes once
    the handlers are fused (heap ops, dict lookups, the fused closures
    themselves).
    """
    import cProfile
    import io
    import pstats

    n, spacing, keys, machines = 30_000, 0.00002, 200, 4
    horizon = n * spacing + 5.0
    runtime = create_runtime(
        _chain_app(), ClusterSpec.uniform(machines, cores=4),
        SimConfig(fastforward=True),
        [Source("S1", iter(_events(n, spacing, keys)))])
    profiler = cProfile.Profile()
    profiler.enable()
    runtime.run(horizon)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    results_dir.mkdir(parents=True, exist_ok=True)
    out = results_dir / "profile_top25.txt"
    out.write_text(buffer.getvalue())
    print(buffer.getvalue())
    print(f"wrote {out}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--update", action="store_true",
                      help="write BENCH_PERF.json with fresh numbers")
    mode.add_argument("--check", action="store_true",
                      help="compare against committed BENCH_PERF.json; "
                           "exit 1 on regression")
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help="also write the measured numbers to "
                             "DIR/perf_gate.json (CI artifact)")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile one hybrid E23 pass and write the "
                             "top-25 cumulative table to the results dir "
                             "(default benchmarks/results/)")
    args = parser.parse_args(argv)

    if args.profile:
        profile_hot_path(Path(args.results_dir)
                         if args.results_dir is not None
                         else REPO_ROOT / "benchmarks" / "results")
        return 0

    current = run_all()
    print(json.dumps(current, indent=2))

    if args.results_dir is not None:
        results_dir = Path(args.results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        out = results_dir / "perf_gate.json"
        out.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {out}")

    if args.update:
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"wrote {BASELINE_PATH}")
        return 0
    if args.check:
        if not BASELINE_PATH.exists():
            print(f"no baseline at {BASELINE_PATH}; run --update first")
            return 1
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check(current, baseline)
        if failures:
            print(f"perf gate: {failures} gate(s) violated")
            return 1
        print("perf gate: all gates pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
