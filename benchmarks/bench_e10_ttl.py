"""E10 — TTL-bounded storage (Sections 4.2, 5).

"The TTL parameter helps contain the amount of storage used by a Muppet
application over time. Many such applications only care about current
activities ... an application may want to keep track of only active
Twitter users ... a working set which is typically much smaller than the
set of all Twitter users who have ever tweeted." We simulate days of user
churn: a fixed active core plus a daily stream of one-shot users, with
and without a slate TTL, and track stored cells after compaction.
"""

from __future__ import annotations



from repro.kvstore.device import StorageDevice
from repro.kvstore.node import StorageNode

DAY = 86_400.0


def run_days(ttl, days: int = 8, active_users: int = 500,
             churn_per_day: int = 2_000):
    """Write slates for an active core + daily one-shot users."""
    now = [0.0]
    node = StorageNode("n", device=StorageDevice.ssd(),
                       clock=lambda: now[0],
                       memtable_flush_bytes=1 << 30)  # explicit flushes
    stored_per_day = []
    for day in range(days):
        now[0] = day * DAY
        for user in range(active_users):          # active core, every day
            node.put(f"active{user}", "U1", b"s" * 64, ttl=ttl)
        for i in range(churn_per_day):            # one-shot drive-bys
            node.put(f"d{day}u{i}", "U1", b"s" * 64, ttl=ttl)
        node.flush()
        node.compact()                             # GC runs here (§4.2)
        stored_per_day.append(node.total_cells())
    return stored_per_day, node


def test_e10_ttl_bounds_storage(benchmark, experiment):
    def run():
        unbounded, _ = run_days(ttl=None)
        bounded, node = run_days(ttl=2 * DAY)
        return unbounded, bounded, node

    unbounded, bounded, node = benchmark.pedantic(run, rounds=1,
                                                  iterations=1)
    report = experiment("E10-ttl-storage")
    report.claim("slates not written for longer than the TTL are garbage "
                 "collected; storage tracks the active working set "
                 "instead of every user ever seen")
    report.table(
        ["day", "stored slates (no TTL)", "stored slates (TTL=2 days)"],
        [[day, unbounded[day], bounded[day]]
         for day in range(len(unbounded))])
    # No TTL: unbounded linear growth.
    assert unbounded[-1] > unbounded[0] * 4
    assert unbounded[-1] - unbounded[-2] >= 2_000
    # TTL: plateaus at ~ (active core + 2 days of churn).
    plateau = 500 + 2 * 2_000 + 2_000
    assert bounded[-1] <= plateau
    assert bounded[-1] == bounded[-2]  # steady state reached
    assert node.stats.ttl_purged_cells > 0
    report.outcome(
        f"day-8 storage: {unbounded[-1]} slates without TTL (and "
        f"growing) vs {bounded[-1]} with a 2-day TTL (plateaued); "
        f"{node.stats.ttl_purged_cells} cells GC'd at compaction")


def test_e10_expired_slate_resets_fresh(benchmark, experiment):
    """After GC, the updater re-initializes — 'resetting to an empty
    slate at that time' — measured through the full slate manager."""
    from repro.core.operators import Updater
    from repro.kvstore.cluster import ReplicatedKVStore
    from repro.slates.manager import FlushPolicy, SlateManager

    class Count(Updater):
        slate_ttl = DAY

        def init_slate(self, key):
            return {"count": 0}

        def update(self, ctx, event, slate):
            slate["count"] += 1

    def run():
        now = [0.0]
        store = ReplicatedKVStore(["n0"], replication_factor=1,
                                  clock=lambda: now[0])
        manager = SlateManager(store, cache_capacity=2,
                               flush_policy=FlushPolicy.write_through(),
                               clock=lambda: now[0])
        updater = Count(name="U1")
        slate = manager.get(updater, "lapsed")
        slate["count"] = 99
        slate.touch(now[0])
        manager.note_update(slate)
        # Push it out of the cache, then let 3 days pass.
        for filler in ("a", "b", "c"):
            manager.get(updater, filler)
        now[0] = 3 * DAY
        store.compact_all()
        fresh = manager.get(updater, "lapsed")
        return fresh["count"], manager.stats.ttl_resets

    count, resets = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E10b-ttl-reset")
    report.claim("a slate whose TTL expired comes back freshly "
                 "initialized on next access")
    report.table(["metric", "value"],
                 [["count before expiry", 99],
                  ["count after 3 days (TTL=1 day)", count],
                  ["ttl resets observed", resets]])
    assert count == 0
    report.outcome("the lapsed slate re-initialized to count=0")
