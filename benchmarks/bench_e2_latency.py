"""E2 — End-to-end latency under production load (Section 5).

Paper: "achieved a latency of under 2 seconds" while processing the
Twitter Firehose and Foursquare checkins on a cluster of tens of
machines. We drive both production streams simultaneously — tweets at
the paper's ~1,157 ev/s and checkins at ~17 ev/s — through a multi-stage
application mix on ten simulated machines and report the latency
distribution.
"""

from __future__ import annotations


from repro.cluster import ClusterSpec
from repro.core import Application
from repro.metrics import (PAPER_CHECKINS_PER_SECOND, PAPER_LATENCY_BOUND_S,
                           PAPER_TWEETS_PER_SECOND)
from repro.sim import SimConfig, SimRuntime, from_trace, poisson_rate
from repro.workloads import CheckinGenerator, TweetGenerator
from repro.apps.hot_topics import MinuteCounter, TopicMapper
from repro.apps.retailer_count import CheckinCounter, RetailerMapper


def build_production_mix() -> Application:
    """Tweets → topic counting; checkins → retailer counting; one app."""
    app = Application("production-mix")
    app.add_stream("TWEETS", external=True)
    app.add_stream("CHECKINS", external=True)
    app.add_stream("TOPICS")
    app.add_stream("TOPIC_COUNTS")
    app.add_stream("RETAIL")
    app.add_mapper("M_topic", TopicMapper, subscribes=["TWEETS"],
                   publishes=["TOPICS"], config={"output_sid": "TOPICS"})
    app.add_updater("U_minute", MinuteCounter, subscribes=["TOPICS"],
                    publishes=["TOPIC_COUNTS"],
                    config={"output_sid": "TOPIC_COUNTS"})
    app.add_mapper("M_retail", RetailerMapper, subscribes=["CHECKINS"],
                   publishes=["RETAIL"], config={"output_sid": "RETAIL"})
    app.add_updater("U_retail", CheckinCounter, subscribes=["RETAIL"])
    return app.validate()


def test_e2_latency_under_two_seconds(benchmark, experiment):
    duration = 2.0
    tweets = TweetGenerator(sid="TWEETS",
                            rate_per_s=PAPER_TWEETS_PER_SECOND,
                            seed=201)
    checkins = CheckinGenerator(sid="CHECKINS",
                                rate_per_s=max(17.0,
                                               PAPER_CHECKINS_PER_SECOND),
                                seed=202)

    def run():
        runtime = SimRuntime(
            build_production_mix(),
            ClusterSpec.uniform(10, cores=4),
            SimConfig(),
            [from_trace("TWEETS", tweets.events(duration)),
             from_trace("CHECKINS", checkins.events(duration))])
        return runtime.run(duration + 10.0)

    sim_report = benchmark.pedantic(run, rounds=1, iterations=1)
    latency = sim_report.latency
    assert latency is not None
    report = experiment("E2-latency")
    report.claim("latency under 2 seconds at >100M tweets/day + 1.5M "
                 "checkins/day on tens of machines")
    report.table(
        ["metric", "value"],
        [["machines", 10],
         ["tweet rate (ev/s)", f"{PAPER_TWEETS_PER_SECOND:.0f}"],
         ["checkin rate (ev/s)", "17"],
         ["updater completions", latency.count],
         ["mean latency (ms)", f"{latency.mean * 1e3:.2f}"],
         ["p50 (ms)", f"{latency.p50 * 1e3:.2f}"],
         ["p95 (ms)", f"{latency.p95 * 1e3:.2f}"],
         ["p99 (ms)", f"{latency.p99 * 1e3:.2f}"],
         ["max (ms)", f"{latency.maximum * 1e3:.2f}"],
         ["paper bound (s)", PAPER_LATENCY_BOUND_S]])
    for name, summary in sorted(sim_report.latency_by_updater.items()):
        report.line(f"  {name}: p99 = {summary.p99 * 1e3:.2f} ms")
    assert latency.p99 < PAPER_LATENCY_BOUND_S
    assert latency.maximum < PAPER_LATENCY_BOUND_S
    report.outcome(f"p99 = {latency.p99 * 1e3:.1f} ms, max = "
                   f"{latency.maximum * 1e3:.1f} ms — far inside the "
                   "2 s bound (millisecond-to-second regime, §6)")


def test_e2_latency_vs_offered_load(benchmark, experiment):
    """Latency stays flat until saturation, then explodes — the knee."""
    rates = [1_000, 4_000, 8_000, 16_000, 32_000]

    def run():
        rows = []
        for rate in rates:
            source = poisson_rate("S1", rate, 0.5,
                                  key_fn=lambda i: f"u{i % 997}",
                                  seed=rate)
            from tests.conftest import build_count_app

            runtime = SimRuntime(build_count_app(),
                                 ClusterSpec.uniform(4, cores=4),
                                 SimConfig(queue_capacity=200_000),
                                 [source])
            sim_report = runtime.run(30.0)
            rows.append((rate, sim_report.latency.p50,
                         sim_report.latency.p99))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E2b-latency-knee")
    report.claim("near-real-time while under capacity; queueing delay "
                 "appears only past saturation")
    report.table(["offered ev/s", "p50 (ms)", "p99 (ms)"],
                 [[r, f"{p50 * 1e3:.2f}", f"{p99 * 1e3:.2f}"]
                  for r, p50, p99 in rows])
    p99s = [p99 for _, __, p99 in rows]
    assert p99s[0] < 0.05           # flat region: milliseconds
    assert p99s[-1] > 10 * p99s[0]  # saturated region: queueing blow-up
    report.outcome("flat millisecond latency until ~4 machines' capacity, "
                   "then the queueing knee (saturation)")


def test_e2_batching_latency_ablation(benchmark, experiment):
    """Latency cost of data-plane batching: the linger is the price.

    Coalescing delays an event by at most ``batch_linger_s`` while its
    envelope fills; the sweep shows p99 tracking the linger and staying
    orders of magnitude inside the paper's 2 s bound.
    """
    lingers_ms = [0.0, 2.0, 10.0]

    def once(linger_ms: float):
        from tests.conftest import build_count_app
        cfg = SimConfig(queue_capacity=200_000,
                        batch_max_events=64 if linger_ms > 0 else 0,
                        batch_linger_s=linger_ms / 1e3)
        source = poisson_rate("S1", 2_000, 2.0,
                              key_fn=lambda i: f"u{i % 997}",
                              seed=7)
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(6, cores=4),
                             cfg, [source])
        return runtime.run(30.0)

    def run():
        return [once(ms) for ms in lingers_ms]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E2c-batching-latency")
    report.claim("the linger bounds the latency added by coalescing; "
                 "end-to-end p99 stays far inside the 2 s bound")
    rows = []
    for ms, rep in zip(lingers_ms, reports):
        dp = rep.dataplane
        rows.append([f"{ms:.0f}",
                     f"{rep.latency.p50 * 1e3:.2f}",
                     f"{rep.latency.p99 * 1e3:.2f}",
                     dp.batches_sent,
                     f"{dp.batched_events / max(1, dp.batches_sent):.1f}"])
    report.table(["linger (ms)", "p50 (ms)", "p99 (ms)",
                  "batches", "avg ev/batch"], rows)
    p99s = [rep.latency.p99 for rep in reports]
    # Latency grows with the linger but stays bounded by it (plus the
    # unbatched base), far below the paper's 2 s requirement.
    assert p99s[1] >= p99s[0]
    assert p99s[2] >= p99s[1]
    for ms, p99 in zip(lingers_ms, p99s):
        assert p99 < PAPER_LATENCY_BOUND_S
        assert p99 < p99s[0] + ms / 1e3 + 0.05
    # Same work gets done regardless of the linger.
    processed = {rep.counters.processed for rep in reports}
    assert len(processed) == 1
    report.outcome(f"p99 {p99s[0] * 1e3:.1f} -> {p99s[1] * 1e3:.1f} -> "
                   f"{p99s[2] * 1e3:.1f} ms across 0/2/10 ms lingers — "
                   "latency cost equals the linger, throughput unchanged")
