"""F1 — Figure 1's example workflows, end to end.

Figure 1 shows (a) a generic multi-operator workflow graph, (b) the
retailer checkin counter of Example 4, and (c) the hot-topic detector of
Example 5. This bench runs (b) and (c) as real applications on the local
thread runtime and checks (a)'s structural properties, timing the
end-to-end throughput of each.
"""

from __future__ import annotations


from repro.apps import (build_hot_topics_app, build_retailer_app)
from repro.core import Application, ReferenceExecutor
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.workloads import CheckinGenerator, TopicBurst, TweetGenerator
from tests.conftest import CountingUpdater, EchoMapper, ForwardingUpdater


def test_f1a_generic_workflow_graph(benchmark, experiment):
    """Figure 1(a): a multi-operator graph with fan-out and a cycle."""
    def build() -> Application:
        app = Application("figure-1a")
        app.add_stream("S1", external=True)
        app.add_stream("S2")
        app.add_stream("S3")
        app.add_stream("S4")
        app.add_mapper("M1", EchoMapper, subscribes=["S1"],
                       publishes=["S2"])
        app.add_mapper("M2", EchoMapper, subscribes=["S2"],
                       publishes=["S3"], config={"output_sid": "S3"})
        app.add_updater("U1", ForwardingUpdater, subscribes=["S2"],
                        publishes=["S4"], config={"output_sid": "S4"})
        app.add_updater("U2", CountingUpdater, subscribes=["S3", "S4"])
        return app.validate()

    app = benchmark(build)
    report = experiment("F1a-generic-workflow")
    report.claim("MapUpdate applications are directed workflow graphs of "
                 "maps and updates over streams (cycles allowed)")
    graph = app.to_networkx()
    report.table(
        ["property", "value"],
        [["operators", len(app.operators())],
         ["streams", len(app.streams.sids())],
         ["graph nodes", graph.number_of_nodes()],
         ["graph edges", graph.number_of_edges()],
         ["validates", True]])
    report.outcome("graph builds, validates, and introspects")


def test_f1b_retailer_counts(benchmark, experiment):
    """Figure 1(b) / Example 4: count Foursquare checkins per retailer."""
    events, truth = CheckinGenerator(rate_per_s=2000,
                                     seed=101).take_with_truth(4000)

    def run():
        with LocalMuppet(build_retailer_app(),
                         LocalConfig(num_threads=4)) as runtime:
            runtime.ingest_many(list(events))
            runtime.drain()
            return {k: v["count"]
                    for k, v in runtime.read_slates_of("U1").items()}

    counts = benchmark.pedantic(run, rounds=3, iterations=1)
    assert counts == truth
    report = experiment("F1b-retailer-counts")
    report.claim("the application counts checkins per retailer; its "
                 "output is the set of slates maintained by U1")
    report.table(["retailer", "slate count", "ground truth"],
                 [[k, counts[k], truth[k]] for k in sorted(truth)])
    report.outcome(f"all {len(truth)} retailer slates exactly match "
                   f"ground truth over {len(events)} checkins")


def test_f1c_hot_topics(benchmark, experiment):
    """Figure 1(c) / Example 5: detect hot topics via per-minute counts."""
    day1 = list(TweetGenerator(rate_per_s=40, seed=102)
                .events(duration_s=240.0))
    burst = TopicBurst("fashion", 86_400 + 60.0, 86_400 + 120.0,
                       multiplier=30.0)
    day2 = list(TweetGenerator(rate_per_s=40, seed=103, bursts=[burst])
                .events(duration_s=240.0, start_ts=86_400.0))

    def run():
        executor = ReferenceExecutor(
            build_hot_topics_app(window_s=60.0, threshold=3.0,
                                 with_sink=False),
            max_events=1_000_000)
        return executor.run(day1 + day2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    alerts = [(e.key, e.value) for e in result.events_on("S4")]
    report = experiment("F1c-hot-topics")
    report.claim("S4 carries <topic, minute> pairs whose count exceeds "
                 "the per-day average by a threshold")
    report.table(["stream", "events"],
                 [["S2 (topic|minute mentions)",
                   len(result.events_on("S2"))],
                  ["S3 (per-minute counts)", len(result.events_on("S3"))],
                  ["S4 (hot alerts)", len(alerts)]])
    report.line(f"alerts: {alerts}")
    assert any(key.startswith("fashion|") for key, _ in alerts)
    report.outcome("the injected day-2 fashion burst is the detected "
                   "hot topic; steady topics stay quiet")
