"""E24 — Elastic scaling with crash-safe live slate migration.

The paper fixes the cluster size before the run and pays for peak
load all day (Section 7 discusses hash-ring re-addressing only as a
failure response). E24 adds the ``repro.elastic`` subsystem: an
EWMA-driven autoscaler that grows and shrinks the worker pool through
live, crash-safe slate migrations — snapshot, bounded delta rounds,
and an atomic cutover behind the per-partition migration barrier —
instead of the stop-the-world flush-and-rehydrate the paper's
recovery story implies.

The workload is a diurnal swing: a calm warm-up, a >11x surge, and a
long cool-down, against a deliberately expensive counter (5 ms per
update), so demand crosses the autoscaler's whole 2..16 machine
range. The claims under test: the cluster rides the swing 2 -> 16 ->
2 with zero lost and zero duplicated updates under effectively-once,
and the incremental handoff moves strictly fewer bytes than the
full-rehydration ablation (the paper-style flush barrier, whose
writes fan out to every kv replica and whose receiver pays a cold
read per slate).
"""

from __future__ import annotations

from repro.analysis.scenarios import (E24_DIURNAL_PHASES,
                                      e24_elasticity_run,
                                      e24_expected_events)


def _counted(runtime) -> int:
    return sum(v["count"]
               for v in runtime.slates_of("U1", read_through=True).values())


def _mode_row(mode, runtime, report, trajectory):
    mc = runtime._migration.counters
    ac = runtime._autoscaler.counters
    return [
        mode,
        max(machines for _, machines in trajectory),
        trajectory[-1][1],
        f"{ac.scale_ups}/{ac.scale_downs}",
        f"{mc.completed}/{mc.aborted}",
        mc.incremental_bytes or mc.full_barrier_bytes,
        _counted(runtime),
        report.counters.lost_total(),
    ]


_HEADERS = ["handoff", "peak", "final", "ups/downs", "done/aborted",
            "moved bytes", "counted", "lost"]


def test_e24_diurnal_swing(benchmark, experiment):
    """The full 2 -> 16 -> 2 swing, incremental vs full rehydration."""

    def run():
        return {
            mode: e24_elasticity_run(full_rehydration=(mode == "full"))
            for mode in ("incremental", "full")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = e24_expected_events()
    peak_rate = max(rate for rate, _ in E24_DIURNAL_PHASES)
    report = experiment("E24-elastic-scaling")
    report.claim("an EWMA autoscaler rides a >11x diurnal swing "
                 "2 -> 16 -> 2 machines through live migrations with "
                 "zero lost and zero duplicated updates, and the "
                 "incremental handoff moves fewer bytes than a "
                 "flush-barrier full rehydration")
    report.line(f"diurnal phases {E24_DIURNAL_PHASES} "
                f"({expected} events, peak {peak_rate:g}/s against "
                f"2x200/s seed capacity):")
    report.table(_HEADERS, [
        _mode_row(mode, *results[mode])
        for mode in ("incremental", "full")])

    inc_rt, inc_report, inc_traj = results["incremental"]
    full_rt, full_report, full_traj = results["full"]

    for runtime, run_report, trajectory in results.values():
        # The swing: every run must reach the ceiling and come home.
        assert max(machines for _, machines in trajectory) == 16
        assert trajectory[-1][1] == 2
        # Effectively-once exactness across every handoff.
        assert _counted(runtime) == expected
        assert run_report.counters.lost_total() == 0
        assert runtime._migration.counters.aborted == 0
        assert runtime._migration.counters.completed \
            == (runtime._autoscaler.counters.scale_ups
                + runtime._autoscaler.counters.scale_downs) \
            * runtime.config.autoscale.grow_step

    # The tentpole byte claim: the incremental snapshot/delta stream
    # beats the ablation's replicated barrier writes plus cold reads.
    inc_mc = inc_rt._migration.counters
    full_mc = full_rt._migration.counters
    assert inc_mc.incremental_bytes > 0 and inc_mc.full_barrier_bytes == 0
    assert full_mc.full_barrier_bytes > 0 and full_mc.incremental_bytes == 0
    assert inc_mc.incremental_bytes < full_mc.full_barrier_bytes

    ratio = inc_mc.incremental_bytes / full_mc.full_barrier_bytes
    report.outcome(
        f"both modes rode 2 -> 16 -> 2 exactly ({expected} events, "
        f"0 lost, {inc_mc.completed}+{full_mc.completed} migrations); "
        f"incremental handoff moved {inc_mc.incremental_bytes} bytes "
        f"= {ratio * 100:.0f}% of full rehydration's "
        f"{full_mc.full_barrier_bytes}")


def test_e24_replay_exact(benchmark, experiment):
    """The elastic run is deterministic: same config, same bytes."""

    def run():
        first_rt, first, _ = e24_elasticity_run()
        second_rt, second, _ = e24_elasticity_run()
        return (first.counter_report(), first_rt.slates_of("U1"),
                second.counter_report(), second_rt.slates_of("U1"))

    first, first_slates, second, second_slates = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = experiment("E24b-replay-exact")
    report.claim("autoscaler decisions, migration scheduling, and "
                 "handoff transfers all run inside the DES, so an "
                 "elastic run replays byte-identically")
    assert first == second
    assert first_slates == second_slates
