"""E11 — Slate size versus updater speed (Section 5).

"We observe that slates can grow quite large and updaters that maintain
large slates can run more slowly due to the overhead. Consequently, we
encourage developers to keep individual slates small, e.g., many
kilobytes rather than many megabytes." We sweep slate payload size on
both the wall-clock local runtime (real serialization costs) and the
simulator (modeled per-byte cost).
"""

from __future__ import annotations

import time


from repro.cluster import ClusterSpec
from repro.core import Application, Event, Updater
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy


class PaddedCounter(Updater):
    """A counter whose slate carries a configurable payload blob."""

    def init_slate(self, key):
        pad_bytes = int(self.config.get("pad_bytes", 0))
        return {"count": 0, "pad": "x" * pad_bytes}

    def update(self, ctx, event, slate):
        slate["count"] += 1


def build_padded_app(pad_bytes: int) -> Application:
    app = Application(f"padded-{pad_bytes}")
    app.add_stream("S1", external=True)
    app.add_updater("U1", PaddedCounter, subscribes=["S1"],
                    config={"pad_bytes": pad_bytes})
    return app.validate()


SIZES = [100, 10_000, 1_000_000]  # 100 B / 10 KB / 1 MB
LABELS = ["100 B", "10 KB", "1 MB"]


def test_e11_wallclock_slate_size(benchmark, experiment):
    """Real serialization: write-through flushing pays per byte."""
    events = [Event("S1", float(i) * 1e-4, f"k{i % 8}")
              for i in range(400)]

    def throughput(pad_bytes: int) -> float:
        config = LocalConfig(num_threads=2,
                             flush_policy=FlushPolicy.write_through(),
                             record_latency=False)
        with LocalMuppet(build_padded_app(pad_bytes), config) as runtime:
            start = time.perf_counter()
            runtime.ingest_many(list(events))
            runtime.drain()
            elapsed = time.perf_counter() - start
        return len(events) / elapsed

    def run():
        return [throughput(size) for size in SIZES]

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E11a-slate-size-wallclock")
    report.claim("updaters that maintain large slates run more slowly; "
                 "keep slates to kilobytes, not megabytes")
    report.table(
        ["slate size", "updates/s (wall clock, write-through)"],
        [[label, f"{rate:,.0f}"] for label, rate in zip(LABELS, rates)])
    assert rates[0] > 3 * rates[2]  # megabyte slates are much slower
    report.outcome(
        f"throughput {rates[0]:,.0f}/s at 100 B vs {rates[2]:,.0f}/s at "
        f"1 MB — {rates[0] / rates[2]:.0f}x slowdown from slate bloat")


def test_e11_simulated_slate_size(benchmark, experiment):
    """The same sweep on the cluster simulator's cost model."""
    def run():
        rows = []
        for size, label in zip(SIZES, LABELS):
            source = constant_rate("S1", rate_per_s=500, duration_s=0.5,
                                   key_fn=lambda i: f"k{i % 8}")
            runtime = SimRuntime(build_padded_app(size),
                                 ClusterSpec.uniform(1, cores=4),
                                 SimConfig(queue_capacity=100_000),
                                 [source])
            sim_report = runtime.run(60.0)
            rows.append((label, sim_report.latency.p50,
                         sim_report.latency.p99))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E11b-slate-size-sim")
    report.claim("the per-event cost grows with slate size (serialization "
                 "and copying overhead)")
    report.table(
        ["slate size", "p50 (ms)", "p99 (ms)"],
        [[label, f"{p50 * 1e3:.3f}", f"{p99 * 1e3:.3f}"]
         for label, p50, p99 in rows])
    assert rows[2][1] > 3 * rows[0][1]
    report.outcome(
        f"p50 rises {rows[0][1] * 1e3:.2f} ms -> {rows[2][1] * 1e3:.2f} "
        "ms from 100 B to 1 MB slates")


def test_e11_size_cap_enforcement(benchmark, experiment):
    """The engineering answer: an enforced max_slate_bytes cap."""

    class Grower(Updater):
        def init_slate(self, key):
            return {"log": []}

        def update(self, ctx, event, slate):
            log = slate["log"]
            log.append("entry " * 50)
            slate["log"] = log

    def build():
        app = Application("grower")
        app.add_stream("S1", external=True)
        app.add_updater("U1", Grower, subscribes=["S1"])
        return app.validate()

    def run():
        config = LocalConfig(num_threads=1, max_slate_bytes=10_000,
                             flush_policy=FlushPolicy.write_through())
        with LocalMuppet(build(), config) as runtime:
            for i in range(100):
                runtime.ingest(Event("S1", float(i), "k"))
            runtime.drain()
            errors = runtime.operator_errors
            stored = runtime.store.read("k", "U1").value
        return errors, stored

    errors, stored = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E11c-size-cap")
    report.claim("engines can enforce the keep-slates-small advice: "
                 "updates that push a slate past the cap are rejected "
                 "(and logged), and oversized state never reaches the "
                 "key-value store")
    report.table(["metric", "value"],
                 [["cap (bytes)", 10_000],
                  ["updates rejected over cap", errors],
                  ["largest persisted blob (bytes)",
                   len(stored) if stored else 0]])
    assert errors > 0                         # cap actually fired
    assert stored is None or len(stored) < 20_000
    report.outcome(f"{errors} oversized updates rejected; the store "
                   "never saw a blob past the cap")
