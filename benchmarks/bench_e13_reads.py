"""E13 — Reading slates (Sections 4.4, 5).

"The fetch retrieves the slate from Muppet's slate cache ... rather than
from the durable key-value store to ensure an up-to-date reply." And for
bulk dumps, "repeated HTTP slate fetches can be expensive (in network
round trips)", so users log slate data from inside update functions
instead. We measure the HTTP fetch path (latency, freshness) and the
bulk-read trade-off.
"""

from __future__ import annotations

import json
import time
import urllib.request

import pytest

from repro.muppet.http import SlateHTTPServer
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app, make_events


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read())


def test_e13_http_fetch_latency(benchmark, experiment):
    """One slate fetch over real HTTP, timed by pytest-benchmark."""
    app = build_count_app()
    with LocalMuppet(app, LocalConfig(num_threads=2)) as runtime:
        runtime.ingest_many(make_events(100, keys=4))
        runtime.drain()
        with SlateHTTPServer(runtime) as server:
            url = f"http://127.0.0.1:{server.port}/slate/U1/k0"
            payload = benchmark(fetch, url)
    report = experiment("E13a-http-fetch")
    report.claim("a small HTTP server on each node serves slate fetches "
                 "addressed by updater name and slate key")
    report.table(["field", "value"],
                 [["URI", "/slate/U1/k0"],
                  ["updater", payload["updater"]],
                  ["key", payload["key"]],
                  ["slate", json.dumps(payload["slate"])]])
    assert payload["slate"]["count"] == 25
    report.outcome("live slate served over HTTP (see timing table for "
                   "fetch latency)")


def test_e13_cache_freshness_vs_store(benchmark, experiment):
    """The cache answer leads the durable store by up to one flush
    interval — which is why §4.4 reads the cache."""
    def run():
        config = LocalConfig(num_threads=2,
                             flush_policy=FlushPolicy.every(3600.0))
        with LocalMuppet(build_count_app(), config) as runtime:
            runtime.ingest_many(make_events(50, keys=1))
            runtime.drain()
            cache_view = runtime.read_slate("U1", "k0")
            store_view = runtime.store.read("k0", "U1").value
            runtime.manager.flush_all_dirty()
            store_after_flush = runtime.manager.codec.decode(
                runtime.store.read("k0", "U1").value)
        return cache_view, store_view, store_after_flush

    cache_view, store_view, store_after = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = experiment("E13b-freshness")
    report.claim("fetches read the slate cache, not the store, 'to "
                 "ensure an up-to-date reply'")
    report.table(
        ["view", "count"],
        [["slate cache (what HTTP serves)", cache_view["count"]],
         ["durable store, before flush",
          "absent" if store_view is None else "stale"],
         ["durable store, after flush", store_after["count"]]])
    assert cache_view["count"] == 50
    assert store_view is None          # nothing flushed yet
    assert store_after["count"] == 50
    report.outcome("the cache led the store by the whole unflushed "
                   "history; cache-first reads are the only fresh ones")


def test_e13_bulk_read_tradeoff(benchmark, experiment):
    """N per-slate HTTP round trips versus one store row scan — why the
    paper steers bulk dumps away from repeated fetches."""
    slates = 200

    def run():
        config = LocalConfig(num_threads=2,
                             flush_policy=FlushPolicy.write_through())
        with LocalMuppet(build_count_app(), config) as runtime:
            runtime.ingest_many(make_events(slates, keys=slates))
            runtime.drain()
            with SlateHTTPServer(runtime) as server:
                base = f"http://127.0.0.1:{server.port}"
                start = time.perf_counter()
                for i in range(slates):
                    fetch(f"{base}/slate/U1/k{i}")
                http_time = time.perf_counter() - start
                start = time.perf_counter()
                listing = fetch(f"{base}/slates/U1")
                bulk_time = time.perf_counter() - start
        return http_time, bulk_time, len(listing["slates"])

    http_time, bulk_time, listed = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    report = experiment("E13c-bulk-reads")
    report.claim("repeated HTTP slate fetches are expensive in round "
                 "trips; bulk consumers should use one scan (or log "
                 "from the update function)")
    report.table(
        ["method", "slates", "wall time (ms)", "per slate (ms)"],
        [[f"{slates} individual GETs", slates, f"{http_time * 1e3:.1f}",
          f"{http_time / slates * 1e3:.3f}"],
         ["one bulk listing", listed, f"{bulk_time * 1e3:.1f}",
          f"{bulk_time / max(1, listed) * 1e3:.3f}"]])
    assert listed == slates
    assert bulk_time < http_time / 5
    report.outcome(
        f"{slates} round trips took {http_time * 1e3:.0f} ms; one bulk "
        f"listing took {bulk_time * 1e3:.1f} ms "
        f"({http_time / bulk_time:.0f}x)")
