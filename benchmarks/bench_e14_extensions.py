"""E14–E16 — Section 5's "ongoing extensions", implemented and measured.

The paper closes with work in progress: locality-aware placement of
mappers/updaters (E14), changing the number of machines on the fly and
replaying lost events (E15), and the side-effect/logging guidance (E16).
We built all of them (see DESIGN.md §6); these benches are their
ablations.
"""

from __future__ import annotations

import threading
import time


from repro.cluster import ClusterSpec
from repro.muppet.placement import (TrafficMatrix, evaluate_placement,
                                    greedy_placement, hash_placement)
from repro.muppet.sideeffects import PerWorkerLogger, SharedLogger
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from repro.workloads.zipf import ZipfSampler
from tests.conftest import build_count_app


def test_e14_placement_locality(benchmark, experiment):
    """Locality-aware placement versus the production hash placement,
    on a realistic ingest-skewed traffic matrix."""
    machines = [f"m{i}" for i in range(8)]

    def run():
        # Checkins land on two ingest machines; retailer popularity is
        # Zipfian — the paper's exact scenario.
        matrix = TrafficMatrix()
        sampler = ZipfSampler(40, 1.2, seed=5)
        for i in range(20_000):
            producer = machines[i % 2]          # ingest nodes m0/m1
            retailer = f"retailer{sampler.sample()}"
            matrix.record(producer, "U1", retailer, 500)
        hashed = evaluate_placement(matrix,
                                    hash_placement(matrix, machines))
        greedy = evaluate_placement(
            matrix, greedy_placement(matrix, machines,
                                     max_load_fraction=0.4))
        return matrix, hashed, greedy

    matrix, hashed, greedy = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    report = experiment("E14-placement")
    report.claim("placing updaters near their producers reduces network "
                 "traffic; but an uncapped local placement would melt "
                 "the ingest machine (the paper's caveats)")
    report.table(
        ["placement", "cross-machine MB", "locality",
         "max machine share"],
        [["hash ring (production)",
          f"{hashed.cross_machine_bytes / 1e6:.2f}",
          f"{hashed.locality:.2f}", f"{hashed.max_machine_share:.2f}"],
         ["greedy locality (cap 40%)",
          f"{greedy.cross_machine_bytes / 1e6:.2f}",
          f"{greedy.locality:.2f}", f"{greedy.max_machine_share:.2f}"]])
    assert greedy.cross_machine_bytes < 0.7 * hashed.cross_machine_bytes
    assert greedy.max_machine_share <= 0.45
    report.outcome(
        "greedy placement cuts cross-machine traffic "
        f"{hashed.cross_machine_bytes / 1e6:.1f} -> "
        f"{greedy.cross_machine_bytes / 1e6:.1f} MB "
        f"({hashed.cross_machine_bytes / max(1, greedy.cross_machine_bytes):.1f}x) "
        "while the load cap keeps any machine under 45%")


def test_e15_elastic_and_replay(benchmark, experiment):
    """Adding a machine on the fly (rebalance barrier) and replaying the
    failure window (at-least-once) — both Section 5/4.3 future work."""
    def run():
        rows = {}
        # (a) elastic join mid-stream.
        source = constant_rate("S1", rate_per_s=2000, duration_s=2.0,
                               key_fn=lambda i: f"k{i % 64}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=4),
                             SimConfig(), [source])
        runtime.schedule_add_machine(1.0, "m_new", cores=4)
        elastic_report = runtime.run(10.0)
        elastic_counted = sum(v["count"]
                              for v in runtime.slates_of("U1").values())
        new_accepted = sum(w.queue.stats.accepted
                           for w in runtime.machines["m_new"].workers)
        rows["elastic"] = (elastic_counted, elastic_report, new_accepted)

        # (b) failure with and without replay (write-through slates so
        # only event loss matters).
        for label, horizon in (("no-replay", None), ("replay", 0.5)):
            source = constant_rate("S1", rate_per_s=2000,
                                   duration_s=2.0,
                                   key_fn=lambda i: f"k{i % 64}")
            runtime = SimRuntime(
                build_count_app(), ClusterSpec.uniform(4, cores=4),
                SimConfig(replay_horizon_s=horizon,
                          flush_policy=FlushPolicy.write_through()),
                [source], failures=[(1.0, "m001")])
            sim_report = runtime.run(10.0)
            counted = sum(v["count"]
                          for v in runtime.slates_of("U1").values())
            rows[label] = (counted, sim_report,
                           runtime.counters_replayed)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E15-elastic-replay")
    report.claim("future work implemented: machines can join on the fly "
                 "(dirty slates flushed before the ring change, so no "
                 "dual-owner slates); a replay journal recovers the "
                 "failure window at-least-once")
    elastic_counted, elastic_report, new_accepted = rows["elastic"]
    report.table(
        ["scenario", "counted (of 4000)", "lost", "replayed/joined"],
        [["machine joins at t=1 s", elastic_counted,
          elastic_report.counters.lost_total(),
          f"{new_accepted} events on new machine"],
         ["failure, no replay (paper)", rows["no-replay"][0],
          rows["no-replay"][1].counters.lost_failure, "-"],
         ["failure, replay horizon 0.5 s", rows["replay"][0],
          rows["replay"][1].counters.lost_failure,
          f"{rows['replay'][2]} replayed"]])
    assert elastic_counted == 4000
    assert elastic_report.counters.lost_total() == 0
    assert new_accepted > 0
    assert rows["replay"][0] >= 4000          # at-least-once
    assert rows["replay"][0] >= rows["no-replay"][0]
    report.outcome(
        "elastic join: 4000/4000 with zero loss; replay lifts the "
        f"post-failure count {rows['no-replay'][0]} -> "
        f"{rows['replay'][0]} (>= 4000, at-least-once)")


def test_e16_shared_log_contention(benchmark, experiment):
    """'Asking mappers and updaters to write to a common log can
    introduce lock contention for the common logger, thereby
    dramatically slowing down the workers.'"""
    threads_n = 8
    lines_per_thread = 400
    write_cost_s = 100e-6

    def drive(log_fn) -> float:
        barrier = threading.Barrier(threads_n)

        def worker(index: int) -> None:
            barrier.wait()
            for i in range(lines_per_thread):
                log_fn(index, f"worker {index} line {i}")

        workers = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads_n)]
        start = time.perf_counter()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        return time.perf_counter() - start

    def run():
        shared = SharedLogger(write_cost_s=write_cost_s)
        shared_time = drive(lambda i, line: shared.log(line))
        private = PerWorkerLogger(threads_n, write_cost_s=write_cost_s)
        private_time = drive(private.log)
        return shared, shared_time, private, private_time

    shared, shared_time, private, private_time = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = experiment("E16-log-contention")
    report.claim("a common log serializes all workers on one lock; "
                 "per-worker logs (merged on read) do not")
    total = threads_n * lines_per_thread
    report.table(
        ["logger", "lines", "wall time (ms)", "lines/s",
         "lock wait (ms)"],
        [["shared (one lock)", total, f"{shared_time * 1e3:.1f}",
          f"{total / shared_time:,.0f}",
          f"{shared.stats.lock_wait_s * 1e3:.1f}"],
         ["per-worker", total, f"{private_time * 1e3:.1f}",
          f"{total / private_time:,.0f}", "0.0"]])
    assert len(shared.lines()) == total
    assert len(private.lines()) == total
    assert private_time < shared_time
    report.outcome(
        f"shared log: {total / shared_time:,.0f} lines/s with "
        f"{shared.stats.lock_wait_s * 1e3:.0f} ms of lock waiting; "
        f"per-worker logs: {total / private_time:,.0f} lines/s "
        f"({shared_time / private_time:.1f}x faster)")
