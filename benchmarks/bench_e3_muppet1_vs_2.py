"""E3 — Muppet 1.0 versus Muppet 2.0 (Section 4.5).

The paper lists four 1.0 limitations that 2.0 removes: (1) duplicate
per-worker copies of the operator code waste memory; (2) conductor↔task-
processor IPC wastes CPU; (3) fragmented per-worker slate caches need
~25% more memory for the same working set (the 125-vs-100 example);
(4) a fixed worker-per-function layout underuses multicore machines.
This bench quantifies each on identical workloads.
"""

from __future__ import annotations


from repro.cluster import ClusterSpec
from repro.cluster.hashring import HashRing
from repro.core.slate import SlateKey
from repro.sim import (ENGINE_MUPPET1, ENGINE_MUPPET2, SimConfig,
                       SimRuntime, constant_rate)
from repro.slates.cache import SlateCache, fragmented_capacity
from repro.workloads.zipf import ZipfSampler, zipf_key_fn
from tests.conftest import build_count_app


def run_engine(engine: str, rate: float = 20_000.0,
               duration: float = 0.5, machines: int = 2):
    config = SimConfig(engine=engine, queue_capacity=200_000,
                       workers_per_function_per_machine=2)
    source = constant_rate("S1", rate_per_s=rate, duration_s=duration,
                           key_fn=zipf_key_fn("u", 2000, 1.0, seed=7))
    runtime = SimRuntime(build_count_app(),
                         ClusterSpec.uniform(machines, cores=4), config,
                         [source])
    return runtime, runtime.run(30.0)


def test_e3_throughput_and_memory(benchmark, experiment):
    def run():
        results = {}
        for engine in (ENGINE_MUPPET1, ENGINE_MUPPET2):
            _, sim_report = run_engine(engine)
            results[engine] = sim_report
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    r1, r2 = results[ENGINE_MUPPET1], results[ENGINE_MUPPET2]
    report = experiment("E3a-muppet1-vs-2")
    report.claim("Muppet 2.0 eliminates duplicate code copies, in-machine "
                 "IPC, fragmented caches, and fixed worker layouts")
    report.table(
        ["metric", "Muppet 1.0", "Muppet 2.0"],
        [["p50 latency (ms)", f"{r1.latency.p50 * 1e3:.2f}",
          f"{r2.latency.p50 * 1e3:.2f}"],
         ["p99 latency (ms)", f"{r1.latency.p99 * 1e3:.2f}",
          f"{r2.latency.p99 * 1e3:.2f}"],
         ["memory MB/machine (code+cache)",
          f"{r1.memory_mb_per_machine:.0f}",
          f"{r2.memory_mb_per_machine:.0f}"],
         ["max workers per slate", r1.max_workers_per_slate,
          r2.max_workers_per_slate],
         ["peak queue depth", r1.queue_peak_depth, r2.queue_peak_depth]])
    # 1.0 loads one code copy per worker (2 functions x 2 workers = 4
    # copies) versus one shared copy in 2.0.
    assert r1.memory_mb_per_machine > 3 * r2.memory_mb_per_machine
    # The IPC overhead makes 1.0 slower at the same offered load.
    assert r1.latency.p99 > r2.latency.p99
    # 2.0 allows bounded contention (<=2); 1.0 has exactly one owner.
    assert r1.max_workers_per_slate == 1
    assert r2.max_workers_per_slate <= 2
    report.outcome(
        f"2.0 wins: memory {r1.memory_mb_per_machine:.0f} -> "
        f"{r2.memory_mb_per_machine:.0f} MB/machine, p99 "
        f"{r1.latency.p99 * 1e3:.1f} -> {r2.latency.p99 * 1e3:.1f} ms")


def test_e3_wallclock_real_threads(benchmark, experiment):
    """E3c: the same comparison on *real threads* — LocalMuppet1 pays
    genuine per-event frame serialization through its conductor pipes;
    LocalMuppet (2.0) shares one in-process instance and cache."""
    import time

    from repro.muppet.local import LocalConfig, LocalMuppet
    from repro.muppet.local1 import Local1Config, LocalMuppet1
    from tests.conftest import make_events

    events = make_events(3000, keys=32)

    def run():
        with LocalMuppet1(build_count_app(),
                          Local1Config(workers_per_function=2)) as rt1:
            start = time.perf_counter()
            rt1.ingest_many(list(events))
            rt1.drain()
            t1 = time.perf_counter() - start
            ipc = rt1.ipc_stats()
        with LocalMuppet(build_count_app(),
                         LocalConfig(num_threads=4)) as rt2:
            start = time.perf_counter()
            rt2.ingest_many(list(events))
            rt2.drain()
            t2 = time.perf_counter() - start
        return t1, t2, ipc

    t1, t2, ipc = benchmark.pedantic(run, rounds=1, iterations=1)
    n = 3000
    report = experiment("E3c-wallclock-1-vs-2")
    report.claim("passing data between processes can be computationally "
                 "wasteful; Muppet 2.0 eliminates it within each machine")
    report.table(
        ["runtime", "wall time (s)", "events/s", "IPC bytes", "IPC frames"],
        [["LocalMuppet1 (conductor pipes)", f"{t1:.3f}",
          f"{n / t1:,.0f}", ipc.total_bytes,
          ipc.frames_to_task + ipc.frames_to_conductor],
         ["LocalMuppet (2.0 threads)", f"{t2:.3f}", f"{n / t2:,.0f}",
          0, 0]])
    assert ipc.total_bytes > 0
    report.outcome(
        f"1.0 moved {ipc.total_bytes / 1e6:.2f} MB through conductor "
        f"pipes for {n} events ({n / t1:,.0f} ev/s) vs zero IPC on 2.0 "
        f"({n / t2:,.0f} ev/s)")


def test_e3_cache_fragmentation_125_vs_100(benchmark, experiment):
    """The paper's worked example: a 100-slate working set over 5 workers
    needs ~125 fragmented cache slots for the hit rate one central cache
    of 100 achieves."""
    working_set = 100
    workers = 5
    accesses = 20_000

    def run():
        sampler = ZipfSampler(working_set, 0.8, seed=3)
        keys = [f"k{sampler.sample()}" for _ in range(accesses)]
        ring: HashRing[int] = HashRing(range(workers))
        share = {w: set() for w in range(workers)}
        for key in set(keys):
            share[ring.lookup(key)].add(key)
        max_share = max(len(s) for s in share.values()) / working_set

        def hit_rate_fragmented(per_worker_capacity: int) -> float:
            caches = [SlateCache(per_worker_capacity)
                      for _ in range(workers)]
            hits = 0
            for key in keys:
                cache = caches[ring.lookup(key)]
                slate_key = SlateKey("U1", key)
                if cache.get(slate_key) is not None:
                    hits += 1
                else:
                    from repro.core.slate import Slate

                    cache.put(Slate(slate_key))
            return hits / len(keys)

        def hit_rate_central(capacity: int) -> float:
            cache = SlateCache(capacity)
            hits = 0
            for key in keys:
                slate_key = SlateKey("U1", key)
                if cache.get(slate_key) is not None:
                    hits += 1
                else:
                    from repro.core.slate import Slate

                    cache.put(Slate(slate_key))
            return hits / len(keys)

        even = working_set // workers                     # 20 per worker
        needed = fragmented_capacity(working_set, workers, max_share)
        return {
            "max_share": max_share,
            "needed_per_worker": needed,
            "central_100": hit_rate_central(100),
            "frag_even_total_100": hit_rate_fragmented(even),
            "frag_needed_total": hit_rate_fragmented(needed),
            "frag_needed_slots": needed * workers,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E3b-cache-fragmentation")
    report.claim("five per-worker caches need e.g. 25 slates each (125 "
                 "total) to hold a 100-slate working set one central "
                 "cache holds in 100 slots")
    report.table(
        ["configuration", "total slots", "hit rate"],
        [["central cache (Muppet 2.0)", 100,
          f"{stats['central_100']:.3f}"],
         ["5 x 20 fragmented (same 100 slots)", 100,
          f"{stats['frag_even_total_100']:.3f}"],
         [f"5 x {stats['needed_per_worker']} fragmented (sized to "
          "worst worker)", stats["frag_needed_slots"],
          f"{stats['frag_needed_total']:.3f}"]])
    # The central cache holds the whole working set; the evenly split
    # caches thrash; matching its hit rate needs > 100 fragmented slots.
    assert stats["central_100"] > stats["frag_even_total_100"]
    assert stats["frag_needed_slots"] > 100
    assert stats["frag_needed_total"] >= stats["central_100"] - 0.01
    report.outcome(
        f"worst worker owns {stats['max_share'] * 100:.0f}% of the hot "
        f"set -> {stats['frag_needed_slots']} fragmented slots needed to "
        "match a 100-slot central cache (paper's 125-vs-100 effect)")
