"""E8 — SSDs for the key-value store (Section 4.2).

The paper's three reasons for running Cassandra on SSDs:

1. cold start — "early update events may require many row fetches from
   the key-value store. Fast random access helps ... warming the slate
   cache";
2. concurrent compaction — "Muppet often needs random-seek I/O capacity
   to fetch uncached slates. Meanwhile, Cassandra also requires I/O
   capacity for periodic compactions";
3. write buffering — "we minimize disk I/O for writing ... if we devote
   the store's main memory to buffering writes".

We measure each on our LSM node with the SSD and HDD device models.
"""

from __future__ import annotations

import itertools


from repro.cluster import ClusterSpec
from repro.kvstore.device import StorageDevice
from repro.kvstore.node import StorageNode
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app


def make_node(kind: str, **kwargs) -> StorageNode:
    counter = itertools.count()
    device = StorageDevice.ssd() if kind == "ssd" else StorageDevice.hdd()
    return StorageNode(kind, device=device,
                       clock=lambda: float(next(counter)) * 0.001,
                       **kwargs)


def test_e8_cold_start_warmup(benchmark, experiment):
    """Reason 1: reading N cold slates off disk to warm the cache."""
    slates = 5_000
    blob = b"x" * 512

    def run():
        times = {}
        for kind in ("ssd", "hdd"):
            node = make_node(kind, memtable_flush_bytes=1 << 30)
            for i in range(slates):
                node.put(f"user{i}", "U1", blob)
            node.flush()           # everything on disk, cache cold
            total = 0.0
            for i in range(slates):
                _, cost = node.get(f"user{i}", "U1")
                total += cost
            times[kind] = total
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E8a-cold-start")
    report.claim("fast random access helps the store respond to the "
                 "cold-start read volume, warming the slate cache")
    report.table(
        ["device", f"time to warm {slates} slates (s)",
         "per-read (ms)"],
        [[k, f"{v:.2f}", f"{v / slates * 1e3:.3f}"]
         for k, v in times.items()])
    assert times["hdd"] > 20 * times["ssd"]
    report.outcome(f"warm-up: SSD {times['ssd']:.2f} s vs HDD "
                   f"{times['hdd']:.1f} s "
                   f"({times['hdd'] / times['ssd']:.0f}x)")


def test_e8_reads_during_compaction(benchmark, experiment):
    """Reason 2: random reads compete with compaction streaming I/O."""
    def run():
        rows = {}
        for kind in ("ssd", "hdd"):
            node = make_node(kind, memtable_flush_bytes=16 * 1024,
                             compaction_threshold=4)
            read_cost = 0.0
            reads = 0
            # Interleave writes (forcing flushes + compactions) with
            # uncached reads.
            for i in range(4_000):
                node.put(f"k{i % 800}", "U1", b"y" * 256)
                if i % 10 == 0:
                    _, cost = node.get(f"k{(i * 7) % 800}", "U1")
                    read_cost += cost
                    reads += 1
            rows[kind] = (read_cost / max(1, reads),
                          node.stats.compactions,
                          node.device.stats.busy_time_s)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E8b-compaction-interference")
    report.claim("SSDs provide the I/O capacity to sustain uncached "
                 "slate fetches while compactions run")
    report.table(
        ["device", "mean uncached read (ms)", "compactions",
         "device busy (s)"],
        [[k, f"{r * 1e3:.3f}", c, f"{b:.2f}"]
         for k, (r, c, b) in rows.items()])
    assert rows["hdd"][2] > rows["ssd"][2]
    report.outcome(
        f"same workload keeps the HDD busy {rows['hdd'][2]:.2f} s vs "
        f"{rows['ssd'][2]:.2f} s on SSD — the spindle has no headroom "
        "for reads during compaction")


def test_e8_write_buffering_absorbs_overwrites(benchmark, experiment):
    """Reason 3: hot-slate overwrites coalesce in the memtable."""
    def run():
        node = make_node("ssd", memtable_flush_bytes=1 << 20)
        for i in range(20_000):
            node.put(f"hot{i % 50}", "U1", b"z" * 200)  # 50 hot slates
        absorbed = node._memtable.absorbed_overwrites
        node.flush()
        return absorbed, node.stats.bytes_flushed, 20_000 * 200

    absorbed, flushed_bytes, raw_bytes = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = experiment("E8c-write-buffering")
    report.claim("overwrites of the same row are inexpensive while the "
                 "row is in memory; delaying flushes minimizes disk "
                 "writes")
    report.table(
        ["metric", "value"],
        [["writes issued", 20_000],
         ["overwrites absorbed in memtable", absorbed],
         ["bytes if every write hit disk", raw_bytes],
         ["bytes actually flushed", flushed_bytes],
         ["write amplification avoided",
          f"{raw_bytes / max(1, flushed_bytes):.0f}x"]])
    assert absorbed >= 19_000
    assert flushed_bytes < raw_bytes / 50
    report.outcome(f"{absorbed}/20000 writes absorbed in memory; disk "
                   f"saw {flushed_bytes} bytes instead of {raw_bytes}")


def test_e8_cluster_cold_start_ssd_vs_hdd(benchmark, experiment):
    """End to end: a restarted Muppet cluster replays reads against the
    store; HDD-backed machines fall behind the stream."""
    def run():
        results = {}
        for storage in ("ssd", "hdd"):
            # Pre-populate the store, then run with a cold cache.
            source = constant_rate("S1", rate_per_s=2000, duration_s=0.5,
                                   key_fn=lambda i: f"u{i % 2000}")
            # Tiny slate cache + small kv memtable: most slate fetches
            # miss the cache AND the memtable, forcing random reads
            # against on-disk SSTables — the paper's uncached-fetch path.
            runtime = SimRuntime(
                build_count_app(),
                ClusterSpec.uniform(2, cores=4, storage=storage),
                SimConfig(flush_policy=FlushPolicy.write_through(),
                          cache_slates_per_machine=100,
                          kv_memtable_flush_bytes=16 * 1024,
                          queue_capacity=200_000),
                [source])
            sim_report = runtime.run(60.0)
            results[storage] = sim_report
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E8d-cluster-storage")
    report.claim("running the store on SSDs keeps end-to-end latency low "
                 "despite kv-store I/O on the critical path")
    report.table(
        ["storage", "p50 (ms)", "p99 (ms)"],
        [[k, f"{v.latency.p50 * 1e3:.2f}", f"{v.latency.p99 * 1e3:.2f}"]
         for k, v in results.items()])
    assert results["hdd"].latency.p99 > results["ssd"].latency.p99
    report.outcome(
        "write-through on HDD: p99 "
        f"{results['hdd'].latency.p99 * 1e3:.1f} ms vs SSD "
        f"{results['ssd'].latency.p99 * 1e3:.1f} ms")
