"""F2 — Figure 2: Muppet's distributed execution with hashed routing.

Figure 2 shows an application with one map and one update function run as
five workers — three mappers M1–M3 and two updaters U1–U2 — fed by the
special source mapper M0, with events routed by hashing <key, destination
function>. We reproduce exactly that layout on the Muppet 1.0 engine and
verify its routing invariants: every key is owned by exactly one updater
worker, and load spreads across the workers.
"""

from __future__ import annotations


from repro.cluster import ClusterSpec
from repro.sim import ENGINE_MUPPET1, SimConfig, SimRuntime, constant_rate
from tests.conftest import build_count_app


def test_f2_three_mappers_two_updaters(benchmark, experiment):
    keys = 24

    def run():
        config = SimConfig(
            engine=ENGINE_MUPPET1,
            workers_per_function={"M1": 3, "U1": 2},
        )
        source = constant_rate("S1", rate_per_s=2000, duration_s=1.2,
                               key_fn=lambda i: f"k{i % keys}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(1, cores=8), config,
                             [source])
        report = runtime.run(4.0)
        return runtime, report

    runtime, sim_report = benchmark.pedantic(run, rounds=1, iterations=1)
    machine = runtime.machines["m000"]
    mappers = [w for w in machine.workers if w.function == "M1"]
    updaters = [w for w in machine.workers if w.function == "U1"]
    assert len(mappers) == 3 and len(updaters) == 2

    report = experiment("F2-distributed-execution")
    report.claim("three mappers M1–M3 and two updaters U1–U2; M0 hashes "
                 "each event's key to pick the mapper; mappers hash "
                 "<key, destination updater> to pick the updater; all "
                 "events with one key go to one updater (no slate "
                 "contention in Muppet 1.0)")
    rows = []
    for worker in mappers + updaters:
        rows.append([worker.wid, worker.queue.stats.accepted,
                     worker.queue.stats.peak_depth])
    report.table(["worker", "events accepted", "peak queue depth"], rows)

    # Invariant: each key's updater events all landed on one worker.
    total = sum(v["count"] for v in runtime.slates_of("U1").values())
    assert total == 2400
    assert sim_report.max_workers_per_slate == 1
    # Both updaters took part (hash spread).
    updater_loads = [w.queue.stats.accepted for w in updaters]
    assert all(load > 0 for load in updater_loads)
    mapper_loads = [w.queue.stats.accepted for w in mappers]
    assert all(load > 0 for load in mapper_loads)
    report.outcome("2400/2400 events counted; per-key single ownership "
                   "held (max workers per slate = "
                   f"{sim_report.max_workers_per_slate}); load spread "
                   f"mappers={mapper_loads} updaters={updater_loads}")
