"""Determinism gate — byte-identity of a seeded chaos run, in CI.

The simulator's reproducibility contract: two runs of the same seeded
:class:`~repro.faults.FaultSchedule` over the same workload must produce
*byte-identical* ``SimReport.counter_report()`` output and identical
final slate state. This script runs the E6d chaos scenario (crash m001
mid-stream, recover, hinted handoff drains, slates re-hydrate) twice and
fails on any byte difference — the CI ``determinism`` job's teeth.

A third run executes the same scenario with the observability layer
fully on (span tracing + timeline sampling) and asserts the report is
*still* byte-identical: tracing is passive and must never perturb the
simulated outcome.

Usage::

    python benchmarks/bench_determinism_gate.py
    python benchmarks/bench_determinism_gate.py --results-dir /tmp/out
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterSpec
from repro.core.application import Application
from repro.core.operators import Mapper, Updater
from repro.faults import FaultSchedule
from repro.sim import SimConfig, SimRuntime
from repro.sim.sources import constant_rate
from repro.slates.manager import FlushPolicy


class _Echo(Mapper):
    def map(self, ctx, event):
        ctx.publish("S2", event.key, event.value)


class _Count(Updater):
    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1


def _count_app() -> Application:
    """S1 -> M1(echo) -> S2 -> U1(count), as in the E6 chaos benches."""
    app = Application("determinism-gate")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", _Count, subscribes=["S2"])
    return app.validate()


def run_e6d(observed: bool = False) -> Tuple[str, str]:
    """One seeded E6d chaos run; returns (counter_report, slates_json).

    With ``observed`` the full observability stack is on — ring tracing
    and timeline sampling — which must not change either return value.
    """
    config = SimConfig(
        flush_policy=FlushPolicy.every(0.2),
        queue_capacity=100_000,
        kill_kv_on_machine_failure=True,
        trace=observed,
        timeline=observed,
    )
    source = constant_rate(
        "S1", rate_per_s=2000.0, duration_s=3.0, key_fn=lambda i: f"k{i % 64}"
    )
    chaos = FaultSchedule(seed=7).crash(1.05, "m001", recover_at=2.0)
    runtime = SimRuntime(
        _count_app(), ClusterSpec.uniform(4, cores=4), config, [source], failures=chaos
    )
    report = runtime.run(6.0)
    slates = json.dumps(runtime.slates_of("U1"), sort_keys=True)
    return report.counter_report(), slates


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        default=None,
        metavar="DIR",
        help="also write the gate verdict JSON to DIR (CI artifact)",
    )
    args = parser.parse_args(argv)

    print("run 1/3 (chaos, observability off) ...", flush=True)
    report_a, slates_a = run_e6d()
    print("run 2/3 (identical seed — must be byte-identical) ...", flush=True)
    report_b, slates_b = run_e6d()
    print("run 3/3 (tracing + timeline on — must change nothing) ...", flush=True)
    report_obs, slates_obs = run_e6d(observed=True)

    failures = []
    if report_a != report_b:
        failures.append("counter_report differs between identical seeded runs")
        for line_a, line_b in zip(report_a.splitlines(), report_b.splitlines()):
            if line_a != line_b:
                print(f"  run1: {line_a}\n  run2: {line_b}")
    if slates_a != slates_b:
        failures.append("final slates differ between identical seeded runs")
    if report_a != report_obs:
        failures.append("enabling tracing/timeline changed counter_report")
        for line_a, line_o in zip(report_a.splitlines(), report_obs.splitlines()):
            if line_a != line_o:
                print(f"  off: {line_a}\n  obs: {line_o}")
    if slates_a != slates_obs:
        failures.append("enabling tracing/timeline changed final slates")

    verdict: Dict[str, Any] = {
        "scenario": "e6d_chaos_crash_recover",
        "report_lines": len(report_a.splitlines()),
        "byte_identical_rerun": report_a == report_b,
        "byte_identical_with_observability": report_a == report_obs,
        "failures": failures,
    }
    if args.results_dir is not None:
        results_dir = Path(args.results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        out = results_dir / "determinism_gate.json"
        out.write_text(json.dumps(verdict, indent=2) + "\n")
        print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"determinism gate: {len(report_a.splitlines())} report lines "
        "byte-identical across reruns and with observability on"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
