"""E22 — Graceful degradation under overload (shedding vs the paper's
three static policies).

The paper's overload story is blunt: when a queue fills, drop (lose
data), divert to a degraded overflow stream (lose full service), or
throttle the sources (lose latency). E22 adds the adaptive
overload-control subsystem (``repro.shedding``): backpressure tiers
driven by queue/latency signals, probabilistic thinning of thinnable
updaters with inverse-probability-weighted reconstruction (stratified
sampling — deterministically bounded per-key error), proactive
diversion, and source throttling as last resorts.

The workload is a Zipf hotspot (exponent 2.5 over 64 keys — ranks
0..3 carry ~95% of arrivals) against a deliberately expensive counter
at 2×/5×/10× cluster capacity. Ground truth comes from the Section 3
reference executor over the *same* materialized event list; the
claim under test: at 5× overload, thinning holds p99 inside the E2
2-second budget with **<1% max per-key counter error** and zero data
loss, where drop loses the majority of events outright.
"""

from __future__ import annotations

from repro.analysis.scenarios import (E22_POLICIES, build_e22_app,
                                      e22_overload_run, e22_source_events)
from repro.core.reference import ReferenceExecutor
from repro.metrics import PAPER_LATENCY_BOUND_S
from repro.shedding.measure import (loss_summary, measure_counter_error)


def _run_policy(policy, overload, events, reference, **kwargs):
    runtime, report = e22_overload_run(policy=policy, overload=overload,
                                       events=list(events), **kwargs)
    error = measure_counter_error(runtime.slates_of("U1"), reference,
                                  "U1", "count")
    report.shedding_error = error.as_dict()
    return report, error


def _policy_row(policy, report, error):
    loss = loss_summary(report)
    p99 = report.latency_by_updater.get("U1")
    return [
        policy,
        f"{p99.p99:.3f}" if p99 else "-",
        f"{error.max_rel_error * 100:.2f}%",
        f"{error.mean_rel_error * 100:.3f}%",
        error.missing_keys,
        loss["lost"],
        loss["degraded"],
        loss["thinned"],
        f"{loss['throttle_paused_s']:.1f}",
    ]


_HEADERS = ["policy", "U1 p99 (s)", "max err", "mean err",
            "lost keys", "lost events", "degraded", "thinned",
            "paused (s)"]


def test_e22_overload_grid(benchmark, experiment):
    """The full policy × overload grid with reference ground truth."""

    def run():
        grid = {}
        for overload in (2.0, 5.0, 10.0):
            events = e22_source_events(overload)
            reference = ReferenceExecutor(
                build_e22_app(), max_events=2_000_000).run(list(events))
            grid[overload] = {
                policy: _run_policy(policy, overload, events, reference)
                for policy in E22_POLICIES
            }
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E22-overload-shedding")
    report.claim("adaptive thinning degrades gracefully: at 5x a Zipf "
                 "hotspot stays inside the E2 2 s p99 budget with <1% "
                 "max counter error and zero loss, where drop loses "
                 "most events and throttle blows the latency budget")
    for overload, results in grid.items():
        report.line(f"overload {overload:g}x "
                    f"({len(e22_source_events(overload))} events):")
        report.table(_HEADERS, [
            _policy_row(policy, *results[policy])
            for policy in E22_POLICIES])

    # -- the acceptance claims, at 5x --------------------------------------
    thin_report, thin_error = grid[5.0]["thin"]
    drop_report, drop_error = grid[5.0]["drop"]
    throttle_report, throttle_error = grid[5.0]["throttle"]
    thin_p99 = thin_report.latency_by_updater["U1"].p99
    assert thin_p99 < PAPER_LATENCY_BOUND_S
    assert thin_error.max_rel_error < 0.01
    assert thin_error.missing_keys == 0
    assert thin_report.counters.lost_total() == 0
    assert thin_report.shedding.thinned > 0
    # Drop loses events outright; its error is catastrophic next to
    # thinning's bounded estimates.
    assert drop_report.counters.lost_total() > 0
    assert drop_error.max_rel_error > 0.5
    # Throttle is lossless but blows the latency budget thinning holds.
    assert throttle_report.counters.lost_total() == 0
    assert (throttle_report.latency_by_updater["U1"].p99
            > PAPER_LATENCY_BOUND_S)
    # At 10x thinning alone cannot absorb the excess; the controller
    # escalates through its lossy tiers yet still holds the p99 budget
    # — degradation, not collapse.
    thin10_report, _ = grid[10.0]["thin"]
    assert thin10_report.latency_by_updater["U1"].p99 < PAPER_LATENCY_BOUND_S
    assert (thin10_report.counters.lost_total()
            < grid[10.0]["drop"][0].counters.lost_total())

    report.outcome(
        f"5x: thin p99 {thin_p99:.3f} s, max err "
        f"{thin_error.max_rel_error * 100:.2f}%, 0 lost; drop lost "
        f"{drop_report.counters.lost_total()} events (max err "
        f"{drop_error.max_rel_error * 100:.0f}%); throttle p99 "
        f"{throttle_report.latency_by_updater['U1'].p99:.1f} s")


def test_e22_replay_exact(benchmark, experiment):
    """Seeded overload runs replay exactly: same seed, same bytes."""

    def run():
        events = e22_source_events(5.0)
        _, first = e22_overload_run(policy="thin", overload=5.0,
                                    events=list(events))
        _, second = e22_overload_run(policy="thin", overload=5.0,
                                     events=list(events))
        return first.counter_report(), second.counter_report()

    first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E22b-replay-exact")
    report.claim("all probabilistic shedding decisions draw from a "
                 "seeded RNG consumed in DES order, so an overloaded "
                 "run replays byte-identically")
    assert first == second
    assert "overload.thinned=" in first
    report.outcome(f"two seeded 5x thin runs: counter_report "
                   f"byte-identical ({len(first.splitlines())} lines)")


def test_e22_smoke(benchmark, experiment):
    """Reduced-scale CI smoke: thin vs drop at 5x, shorter workload.

    Shorter run → fewer arrivals per hot key → looser (but still
    deterministic) stratified error bounds; the CI assertion budget is
    3% instead of the full-scale 1%.
    """

    def run():
        events = e22_source_events(5.0, duration_s=1.5)
        reference = ReferenceExecutor(
            build_e22_app(), max_events=500_000).run(list(events))
        thin = _run_policy("thin", 5.0, events, reference,
                           duration_s=1.5)
        drop = _run_policy("drop", 5.0, events, reference,
                           duration_s=1.5)
        return thin, drop

    (thin_report, thin_error), (drop_report, drop_error) = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E22c-smoke")
    report.claim("reduced-scale overload smoke for CI: thinning sheds "
                 "without losing, drop loses")
    report.table(_HEADERS, [
        _policy_row("thin", thin_report, thin_error),
        _policy_row("drop", drop_report, drop_error)])
    assert thin_report.latency_by_updater["U1"].p99 < PAPER_LATENCY_BOUND_S
    assert thin_error.max_rel_error < 0.03
    assert thin_report.counters.lost_total() == 0
    assert thin_report.shedding.thinned > 0
    assert drop_report.counters.lost_total() > 0
    report.outcome(
        f"thin: p99 {thin_report.latency_by_updater['U1'].p99:.3f} s, "
        f"max err {thin_error.max_rel_error * 100:.2f}%, 0 lost; "
        f"drop lost {drop_report.counters.lost_total()} events")
