"""Observability overhead gate — tracing off must cost (almost) nothing.

With ``SimConfig.trace`` off, the engine holds ``None`` instead of a
tracer and every emission site is a single ``x is not None`` check — no
span dict is built, no arguments are marshalled. This script verifies
that contract two ways:

* **correctness**: the same seeded scenario with tracing+timeline on
  yields a byte-identical ``counter_report()`` and identical final
  slates — observability never perturbs the simulation;
* **cost**: the no-op guard's overhead is bounded. The measured bound is
  deterministic-by-construction: microbenchmark the per-check cost of
  ``x is not None``, multiply by the number of emission sites a traced
  run actually passes (the span count), and divide by the untraced
  wall-clock. That ratio must stay under ``MAX_OVERHEAD`` (2%). Raw
  wall-clock off-vs-on deltas are also reported for context, but the
  gate uses the guard model because same-process wall noise on shared CI
  runners routinely exceeds 2% on its own.

Usage::

    python benchmarks/bench_obs_overhead.py
    python benchmarks/bench_obs_overhead.py --results-dir /tmp/out
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cluster import ClusterSpec
from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Mapper, Updater
from repro.sim import SimConfig, SimRuntime
from repro.sim.sources import Source

BASELINE_PATH = REPO_ROOT / "BENCH_PERF.json"

#: The tracing-off overhead budget (fraction of untraced wall-clock).
MAX_OVERHEAD = 0.02

#: Timing repeats; min is reported (least-noise estimator).
REPEATS = 3


class _Echo(Mapper):
    def map(self, ctx, event):
        ctx.publish(self.config["output_sid"], event.key, event.value)


class _Count(Updater):
    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1


def _chain_app() -> Application:
    """S1 -> M1 -> S2 -> M2 -> S3 -> U1: the perf gate's E1 pipeline,
    reused so the overhead number is measured on the same workload the
    committed BENCH_PERF.json baseline tracks."""
    app = Application("obs-overhead-chain")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_stream("S3")
    app.add_mapper("M1", _Echo, subscribes=["S1"], publishes=["S2"],
                   config={"output_sid": "S2"})
    app.add_mapper("M2", _Echo, subscribes=["S2"], publishes=["S3"],
                   config={"output_sid": "S3"})
    app.add_updater("U1", _Count, subscribes=["S3"])
    return app.validate()


def _events(n: int, spacing: float, keys: int):
    return [Event("S1", ts=i * spacing, key=f"k{i % keys}", value=i)
            for i in range(n)]


def _timed(fn) -> Tuple[Any, float]:
    walls = []
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        walls.append(time.perf_counter() - start)
    return result, min(walls)


def _run(traced: bool) -> Tuple[str, str, int]:
    """One E1-style run; returns (counter_report, slates, span count)."""
    n, spacing, keys, machines = 30_000, 0.00002, 200, 4
    config = SimConfig(trace=traced, trace_capacity=4_000_000,
                       timeline=traced)
    runtime = SimRuntime(_chain_app(),
                         ClusterSpec.uniform(machines, cores=4), config,
                         [Source("S1", iter(_events(n, spacing, keys)))])
    report = runtime.run(n * spacing + 5.0)
    slates = json.dumps(runtime.slates_of("U1"), sort_keys=True)
    spans = len(runtime.tracer.spans()) if traced else 0
    return report.counter_report(), slates, spans


def _guard_cost_ns() -> float:
    """Per-evaluation cost of the ``x is not None`` no-op guard."""
    tracer = None
    iterations = 2_000_000
    best = float("inf")
    for _ in range(REPEATS):
        hits = 0
        start = time.perf_counter()
        for _ in range(iterations):
            if tracer is not None:
                hits += 1
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        assert hits == 0
    return best / iterations * 1e9


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help="also write the measurement to "
                             "DIR/obs_overhead.json (CI artifact)")
    args = parser.parse_args(argv)

    print("running untraced ...", flush=True)
    (report_off, slates_off, _), wall_off = _timed(lambda: _run(False))
    print("running traced (ring tracer + timeline) ...", flush=True)
    (report_on, slates_on, spans), wall_on = _timed(lambda: _run(True))
    guard_ns = _guard_cost_ns()

    # Guard-model overhead of the *off* path: one is-not-None check per
    # span a traced run would emit, relative to the untraced wall time.
    guard_overhead = (guard_ns * 1e-9 * spans) / wall_off
    measured_delta = (wall_on - wall_off) / wall_off

    failures = []
    if report_off != report_on:
        failures.append("counter_report changed when tracing was enabled")
    if slates_off != slates_on:
        failures.append("final slates changed when tracing was enabled")
    if guard_overhead >= MAX_OVERHEAD:
        failures.append(
            f"tracing-off guard overhead {guard_overhead:.4%} >= "
            f"{MAX_OVERHEAD:.0%} budget")

    baseline_wall = None
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        baseline_wall = (baseline.get("scenarios", {})
                         .get("e1_scaling", {}).get("wall_s"))

    result: Dict[str, Any] = {
        "wall_s_untraced": round(wall_off, 4),
        "wall_s_traced": round(wall_on, 4),
        "baseline_e1_wall_s": baseline_wall,
        "spans_emitted": spans,
        "guard_ns_per_check": round(guard_ns, 2),
        "tracing_off_overhead": round(guard_overhead, 6),
        "tracing_on_wall_delta": round(measured_delta, 4),
        "report_byte_identical": report_off == report_on,
        "slates_byte_identical": slates_off == slates_on,
        "budget": MAX_OVERHEAD,
        "failures": failures,
    }
    print(json.dumps(result, indent=2))

    if args.results_dir is not None:
        results_dir = Path(args.results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        out = results_dir / "obs_overhead.json"
        out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("obs overhead gate: tracing-off overhead "
          f"{guard_overhead:.4%} < {MAX_OVERHEAD:.0%} "
          f"({spans} spans, guard {guard_ns:.1f} ns/check)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
