"""E12 — MapUpdate versus the related-work baselines (Sections 2, 6).

Three comparisons the paper argues qualitatively, quantified here:

* **latency** — MapUpdate streams per event ("millisecond to second
  latencies", §6) versus micro-batch incremental MapReduce (bounded below
  by its batch interval) versus periodic snapshot MapReduce (staleness
  grows with accumulated history);
* **state on failure** — Muppet's slates are persisted and refetchable;
  a Storm/S4-style app-managed-state system loses its state on restart;
* **programming surface** — all systems compute identical answers on the
  identical workload (the comparison is apples-to-apples).
"""

from __future__ import annotations

import json


from repro.apps.retailer_count import build_retailer_app, match_retailer
from repro.baselines.mapreduce import periodic_job_staleness
from repro.baselines.mapreduce_online import (MicroBatchEngine,
                                              counting_reduce)
from repro.baselines.storm_like import StormLikeTopology
from repro.cluster import ClusterSpec
from repro.sim import SimConfig, SimRuntime, from_trace
from repro.slates.manager import FlushPolicy
from repro.workloads import CheckinGenerator


def retailer_map(key, value):
    retailer = match_retailer(json.loads(value)["venue"]["name"])
    if retailer:
        yield (retailer, 1)


def test_e12_latency_comparison(benchmark, experiment):
    duration = 60.0
    generator = CheckinGenerator(rate_per_s=100, seed=401)
    events, truth = generator.take_with_truth(int(100 * duration))

    def run():
        results = {}
        # MapUpdate on the simulated cluster.
        runtime = SimRuntime(build_retailer_app(),
                             ClusterSpec.uniform(4, cores=4), SimConfig(),
                             [from_trace("S1", list(events))])
        muppet = runtime.run(duration + 10.0)
        muppet_counts = {k: v["count"]
                         for k, v in runtime.slates_of("U1").items()}
        results["muppet"] = (muppet.latency.p50, muppet.latency.p99,
                             muppet_counts)
        # Micro-batch at two intervals.
        for interval in (1.0, 10.0):
            engine = MicroBatchEngine(retailer_map, counting_reduce,
                                      batch_interval_s=interval)
            mb = engine.run(list(events))
            summary = mb.latency.summary()
            results[f"microbatch-{interval:g}s"] = (summary.p50,
                                                    summary.p99, mb.state)
        # Periodic snapshot MapReduce staleness (10-minute cadence over a
        # day of accumulated history at this rate).
        staleness = periodic_job_staleness(
            arrival_rate_per_s=100, period_s=600,
            history_records=int(100 * 86_400))
        results["snapshot-mr"] = (staleness, staleness, None)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E12a-latency-vs-baselines")
    report.claim("slates let an updater process each event immediately "
                 "(ms–s latency) versus batch-bound alternatives")
    rows = []
    for name, (p50, p99, counts) in results.items():
        correct = "-" if counts is None else \
            ("exact" if counts == truth else "WRONG")
        rows.append([name, f"{p50:.4f}", f"{p99:.4f}", correct])
    report.table(["system", "p50 latency (s)", "p99 latency (s)",
                  "counts vs truth"], rows)
    muppet_p99 = results["muppet"][1]
    assert muppet_p99 < 0.1
    assert results["microbatch-1s"][0] > 0.4      # ≥ half the interval
    assert results["microbatch-10s"][0] > 4.0
    assert results["snapshot-mr"][0] > 300.0      # minutes of staleness
    assert results["muppet"][2] == truth
    assert results["microbatch-10s"][2] == truth
    report.outcome(
        "identical answers everywhere, but p99 latency spans "
        f"{muppet_p99 * 1e3:.1f} ms (Muppet) -> "
        f"{results['microbatch-10s'][1]:.1f} s (10 s micro-batch) -> "
        f"{results['snapshot-mr'][0]:.0f} s (periodic snapshot)")


def test_e12_state_survives_failure_only_with_slates(benchmark,
                                                     experiment):
    generator = CheckinGenerator(rate_per_s=200, seed=402)
    events, truth = generator.take_with_truth(2000)
    total_truth = sum(truth.values())

    def run():
        # Storm-style: app-managed state, one instance crashes.
        topology = StormLikeTopology("S1")

        def count_bolt(event, state, emit):
            retailer = match_retailer(
                json.loads(event.value)["venue"]["name"])
            if retailer:
                state[retailer] = state.get(retailer, 0) + 1

        topology.add_bolt("count", count_bolt, subscribes=["S1"],
                          parallelism=4)
        topology.process(events)
        storm_before = sum(sum(inst.state.values())
                           for inst in topology.instances("count"))
        topology.crash_instance("count", 0)
        topology.crash_instance("count", 1)
        storm_after = sum(sum(inst.state.values())
                          for inst in topology.instances("count"))

        # Muppet: a machine crashes; slates were flushed write-through,
        # so the failover worker refetches them from the kv-store.
        runtime = SimRuntime(
            build_retailer_app(), ClusterSpec.uniform(3, cores=4),
            SimConfig(flush_policy=FlushPolicy.write_through()),
            [from_trace("S1", list(events))],
            failures=[(5.0, "m001")])
        runtime.run(30.0)
        muppet_after = 0
        for retailer in truth:
            slate = runtime.slate("U1", retailer)
            if slate:
                muppet_after += slate["count"]
        return storm_before, storm_after, muppet_after

    storm_before, storm_after, muppet_after = benchmark.pedantic(
        run, rounds=1, iterations=1)
    report = experiment("E12b-state-on-failure")
    report.claim("S4/Storm leave state management to the application "
                 "(lost on restart); Muppet's slates persist in the "
                 "key-value store and survive worker failure")
    report.table(
        ["system", "counted before crash", "counted after crash",
         "state retained"],
        [["Storm-style (app-managed)", storm_before, storm_after,
          f"{100 * storm_after / max(1, storm_before):.0f}%"],
         ["Muppet (slates, write-through)", total_truth, muppet_after,
          f"{100 * muppet_after / total_truth:.0f}%"]])
    assert storm_after < storm_before          # Storm lost state
    assert muppet_after >= 0.98 * total_truth  # slates survived
    report.outcome(
        f"Storm retained {100 * storm_after / max(1, storm_before):.0f}% "
        "of its counts after two instance crashes; Muppet retained "
        f"{100 * muppet_after / total_truth:.0f}% through a machine "
        "failure (slates refetched from the store)")
