"""E5 — Key splitting for associative updates (Example 6, Section 5).

Paper: when "a lot of people are checking into Best Buy", the single
Best Buy updater becomes a hotspot; because counting is associative and
commutative, the map function can split the key into "Best Buy1" /
"Best Buy2" sub-keys counted by separate updaters whose partial counts a
merge updater sums. We sweep the split factor on a hot-retailer checkin
stream: totals must stay exact while the hot key's service spreads and
tail latency falls.
"""

from __future__ import annotations


from repro.apps import build_retailer_app, build_split_app
from repro.cluster import ClusterSpec
from repro.sim import ENGINE_MUPPET1, SimConfig, SimRuntime, from_trace
from repro.workloads import CheckinGenerator


def hot_stream(n=3000, seed=301):
    generator = CheckinGenerator(rate_per_s=6000, seed=seed,
                                 retail_fraction=0.9,
                                 hot_retailer="Best Buy", hot_share=0.9)
    return generator.take_with_truth(n)


def run_split(events, num_splits):
    """Muppet 1.0 (single-owner workers): where splitting matters most."""
    if num_splits == 0:
        app = build_retailer_app()
        merged_updater = "U1"
    else:
        app = build_split_app(hot_keys=["Best Buy"],
                              num_splits=num_splits, emit_every=20)
        merged_updater = "U2"
    config = SimConfig(engine=ENGINE_MUPPET1, queue_capacity=100_000,
                       latency_sinks={"U1"})
    runtime = SimRuntime(app, ClusterSpec.uniform(4, cores=2), config,
                         [from_trace("S1", list(events))])
    sim_report = runtime.run(60.0)
    merged = {k: v["count"]
              for k, v in runtime.slates_of(merged_updater).items()}
    return sim_report, merged


def test_e5_split_factor_sweep(benchmark, experiment):
    events, truth = hot_stream()

    def run():
        rows = []
        for num_splits in (0, 2, 4, 8):
            sim_report, merged = run_split(events, num_splits)
            label = "unsplit" if num_splits == 0 else f"{num_splits}-way"
            rows.append((label, num_splits, sim_report, merged))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = experiment("E5-key-splitting")
    report.claim("splitting the hot 'Best Buy' key across sub-key "
                 "updaters relieves the hotspot; merged totals are "
                 "unchanged (counting is associative and commutative)")
    table_rows = []
    for label, num_splits, sim_report, merged in rows:
        correct = all(merged.get(k) == v for k, v in truth.items())
        table_rows.append(
            [label,
             f"{sim_report.latency.p99 * 1e3:.2f}",
             sim_report.queue_peak_depth,
             merged.get("Best Buy", 0),
             "exact" if correct else "WRONG"])
    report.table(["split", "counter p99 (ms)", "peak queue",
                  "Best Buy total", "totals vs truth"], table_rows)

    unsplit = rows[0][2]
    best_split = rows[-1][2]
    # Shape: splitting cuts the hot updater's tail latency / queue depth.
    assert best_split.latency.p99 < unsplit.latency.p99
    assert best_split.queue_peak_depth < unsplit.queue_peak_depth
    # Invariant: every configuration merges to the exact ground truth.
    for label, num_splits, _, merged in rows:
        assert all(merged.get(k) == v for k, v in truth.items()), label
    report.outcome(
        f"p99 {unsplit.latency.p99 * 1e3:.1f} ms (unsplit) -> "
        f"{best_split.latency.p99 * 1e3:.1f} ms (8-way); Best Buy total "
        f"exact at {truth['Best Buy']} in every configuration")
