"""Slate codecs: JSON round-trips, compression wins, corruption errors."""

import pytest

from repro.errors import SlateError
from repro.slates.codec import (DEFAULT_CODEC, CompressedJsonCodec,
                                JsonCodec)


class TestJsonCodec:
    def test_roundtrip(self):
        codec = JsonCodec()
        data = {"count": 7, "tags": ["a", "b"], "nested": {"x": 1.5}}
        assert codec.decode(codec.encode(data)) == data

    def test_deterministic_encoding(self):
        codec = JsonCodec()
        assert codec.encode({"b": 1, "a": 2}) == codec.encode({"a": 2,
                                                               "b": 1})

    def test_unencodable_raises(self):
        with pytest.raises(SlateError, match="JSON"):
            JsonCodec().encode({"bad": object()})

    def test_corrupt_blob_raises(self):
        with pytest.raises(SlateError):
            JsonCodec().decode(b"\xff\xfe not json")

    def test_non_dict_payload_rejected(self):
        with pytest.raises(SlateError, match="expected dict"):
            JsonCodec().decode(b"[1, 2, 3]")


class TestCompressedJsonCodec:
    def test_roundtrip(self):
        codec = CompressedJsonCodec()
        data = {"count": 3, "text": "hello world" * 10}
        assert codec.decode(codec.encode(data)) == data

    def test_compression_shrinks_repetitive_slates(self):
        """The paper compresses slates before storing (Section 4.2)."""
        data = {"history": ["same-interest-tag"] * 200}
        plain = JsonCodec().encode(data)
        compressed = CompressedJsonCodec().encode(data)
        assert len(compressed) < len(plain) / 5

    def test_corrupt_compressed_blob_raises(self):
        with pytest.raises(SlateError, match="compressed"):
            CompressedJsonCodec().decode(b"not zlib data")

    def test_invalid_level_rejected(self):
        with pytest.raises(SlateError):
            CompressedJsonCodec(level=0)
        with pytest.raises(SlateError):
            CompressedJsonCodec(level=10)

    def test_level_property(self):
        assert CompressedJsonCodec().level == 6
        assert CompressedJsonCodec(level=1).level == 1

    def test_levels_agree_on_decode(self):
        """Any level decodes any other level's blobs (zlib self-frames),
        and higher levels never produce larger blobs on repetitive data."""
        data = {"history": ["same-interest-tag"] * 200}
        blobs = {lvl: CompressedJsonCodec(level=lvl).encode(data)
                 for lvl in (1, 6, 9)}
        for blob in blobs.values():
            assert CompressedJsonCodec().decode(blob) == data
        assert len(blobs[9]) <= len(blobs[6]) <= len(blobs[1])

    def test_default_codec_is_compressed(self):
        assert DEFAULT_CODEC.name == "json+zlib"
