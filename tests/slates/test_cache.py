"""Slate caches: LRU behaviour, eviction callbacks, fragmentation math."""

import pytest

from repro.core.slate import Slate, SlateKey
from repro.errors import ConfigurationError
from repro.slates.cache import SlateCache, fragmented_capacity


def slate(key: str, updater: str = "U1", **data) -> Slate:
    s = Slate(SlateKey(updater, key))
    for field, value in data.items():
        s[field] = value
    return s


class TestLRU:
    def test_put_get(self):
        cache = SlateCache(capacity=2)
        s = slate("a")
        cache.put(s)
        assert cache.get(s.slate_key) is s

    def test_miss_returns_none_and_counts(self):
        cache = SlateCache(capacity=2)
        assert cache.get(SlateKey("U1", "nope")) is None
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = SlateCache(capacity=2)
        a, b, c = slate("a"), slate("b"), slate("c")
        cache.put(a)
        cache.put(b)
        cache.get(a.slate_key)   # a is now most recent
        cache.put(c)             # evicts b
        assert b.slate_key not in cache
        assert a.slate_key in cache and c.slate_key in cache

    def test_capacity_enforced(self):
        cache = SlateCache(capacity=3)
        for i in range(10):
            cache.put(slate(f"k{i}"))
        assert len(cache) == 3
        assert cache.stats.evictions == 7

    def test_re_put_refreshes_not_duplicates(self):
        cache = SlateCache(capacity=2)
        s = slate("a")
        cache.put(s)
        cache.put(s)
        assert len(cache) == 1

    def test_peek_does_not_touch_lru_or_stats(self):
        cache = SlateCache(capacity=2)
        a, b = slate("a"), slate("b")
        cache.put(a)
        cache.put(b)
        cache.peek(a.slate_key)     # does not promote a
        cache.put(slate("c"))       # evicts a (still LRU)
        assert a.slate_key not in cache
        assert cache.stats.hits == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            SlateCache(capacity=0)

    def test_hit_rate(self):
        cache = SlateCache(capacity=2)
        s = slate("a")
        cache.put(s)
        cache.get(s.slate_key)
        cache.get(SlateKey("U1", "missing"))
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestEvictionCallback:
    def test_dirty_victims_reported(self):
        flushed = []
        cache = SlateCache(capacity=1, on_evict=flushed.append)
        dirty = slate("a", count=1)   # setting a field marks dirty
        cache.put(dirty)
        cache.put(slate("b"))
        assert flushed == [dirty]
        assert cache.stats.dirty_evictions == 1

    def test_clean_victims_also_reported_but_not_counted_dirty(self):
        seen = []
        cache = SlateCache(capacity=1, on_evict=seen.append)
        clean = slate("a")
        cache.put(clean)
        cache.put(slate("b"))
        assert seen == [clean]
        assert cache.stats.dirty_evictions == 0

    def test_remove_skips_callback(self):
        seen = []
        cache = SlateCache(capacity=2, on_evict=seen.append)
        s = slate("a", x=1)
        cache.put(s)
        assert cache.remove(s.slate_key) is s
        assert seen == []

    def test_clear_skips_callback(self):
        """Crash semantics: unflushed changes are simply lost (§4.3)."""
        seen = []
        cache = SlateCache(capacity=5, on_evict=seen.append)
        cache.put(slate("a", x=1))
        cache.clear()
        assert seen == [] and len(cache) == 0


class TestIntrospection:
    def test_resident_lru_first(self):
        cache = SlateCache(capacity=3)
        for name in ("a", "b", "c"):
            cache.put(slate(name))
        cache.get(SlateKey("U1", "a"))
        assert [k.key for k in cache.resident()] == ["b", "c", "a"]

    def test_dirty_slates_filter(self):
        cache = SlateCache(capacity=3)
        cache.put(slate("clean"))
        cache.put(slate("dirty", x=1))
        assert [s.slate_key.key for s in cache.dirty_slates()] == ["dirty"]

    def test_total_bytes(self):
        cache = SlateCache(capacity=3)
        cache.put(slate("a", blob="x" * 1000))
        assert cache.total_bytes() > 1000


class TestFragmentedCapacity:
    def test_papers_125_vs_100_example(self):
        """Section 4.5: 100-slate working set, 5 workers, worst worker
        gets 25 hot slates → 25 per worker → 125 total, not 100."""
        per_worker = fragmented_capacity(working_set=100, workers=5,
                                         observed_max_share=0.25)
        assert per_worker == 25
        assert per_worker * 5 == 125

    def test_even_split_needs_no_overhead(self):
        per_worker = fragmented_capacity(100, 5, observed_max_share=0.20)
        assert per_worker * 5 == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fragmented_capacity(100, 0, 0.2)
        with pytest.raises(ConfigurationError):
            fragmented_capacity(100, 5, 0.0)
