"""SlateManager: cache→store→init fetch path, flush policies, crash loss."""

import itertools

import pytest

from repro.core.operators import Updater
from repro.errors import (ConfigurationError, SlateTooLargeError,
                          StoreError)
from repro.kvstore.cluster import ReplicatedKVStore
from repro.slates.manager import FlushPolicy, RetryPolicy, SlateManager


class CountUpdater(Updater):
    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1


def make_env(cache_capacity=100, flush_policy=None, ttl=None,
             max_slate_bytes=None, store_nodes=2):
    counter = itertools.count()
    clock = lambda: float(next(counter))
    store = ReplicatedKVStore([f"n{i}" for i in range(store_nodes)],
                              replication_factor=min(2, store_nodes),
                              clock=clock)
    manager = SlateManager(
        store, cache_capacity=cache_capacity,
        flush_policy=flush_policy or FlushPolicy.write_through(),
        clock=clock, max_slate_bytes=max_slate_bytes)
    updater = CountUpdater(name="U1")
    if ttl is not None:
        updater.slate_ttl = ttl
    return manager, updater, clock


class TestFetchPath:
    def test_first_access_initializes(self):
        manager, updater, _ = make_env()
        slate = manager.get(updater, "k")
        assert slate["count"] == 0
        assert manager.stats.initialized == 1
        assert manager.stats.kv_read_misses == 1

    def test_second_access_hits_cache(self):
        manager, updater, _ = make_env()
        first = manager.get(updater, "k")
        assert manager.get(updater, "k") is first
        assert manager.cache.stats.hits == 1

    def test_evicted_slate_refetched_from_store(self):
        """Section 4.2's full loop: cache miss → store read → decompress."""
        manager, updater, clock = make_env(cache_capacity=1)
        slate = manager.get(updater, "hot")
        slate["count"] = 41
        slate.touch(clock())
        manager.note_update(slate)            # write-through persists
        manager.get(updater, "other")          # evicts "hot"
        refetched = manager.get(updater, "hot")
        assert refetched["count"] == 41
        assert refetched is not slate

    def test_separate_updaters_separate_slates(self):
        manager, updater, _ = make_env()
        other = CountUpdater(name="U2")
        a = manager.get(updater, "k")
        b = manager.get(other, "k")
        assert a is not b
        assert a.slate_key != b.slate_key


class TestFlushPolicies:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            FlushPolicy(kind="sometimes")
        with pytest.raises(ConfigurationError):
            FlushPolicy(kind="interval", interval_s=0)

    def test_every_zero_rejected_with_guidance(self):
        """FlushPolicy.every(0) is a classic misconfiguration — the
        error must name the alternatives."""
        with pytest.raises(ConfigurationError,
                           match="must be positive.*write_through"):
            FlushPolicy.every(0)
        with pytest.raises(ConfigurationError, match="must be positive"):
            FlushPolicy.every(-1.5)

    def test_write_through_persists_every_update(self):
        manager, updater, clock = make_env(
            flush_policy=FlushPolicy.write_through())
        slate = manager.get(updater, "k")
        for i in range(5):
            slate["count"] += 1
            slate.touch(clock())
            manager.note_update(slate)
        assert manager.stats.kv_writes == 5
        assert not slate.dirty

    def test_on_evict_writes_only_at_eviction(self):
        manager, updater, clock = make_env(
            cache_capacity=1, flush_policy=FlushPolicy.on_evict())
        slate = manager.get(updater, "a")
        slate["count"] = 3
        slate.touch(clock())
        manager.note_update(slate)
        assert manager.stats.kv_writes == 0  # still only dirty in cache
        manager.get(updater, "b")            # evicts "a" → flush
        assert manager.stats.kv_writes == 1

    def test_interval_policy_flushes_when_due(self):
        manager, updater, clock = make_env(
            flush_policy=FlushPolicy.every(5.0))
        slate = manager.get(updater, "k")
        slate["count"] = 1
        slate.touch(clock())
        manager.note_update(slate)
        assert manager.stats.kv_writes == 0
        # Clock advances 1.0 per call; run it past the interval.
        flushed = 0
        for _ in range(10):
            flushed += manager.flush_due()
        assert flushed == 1
        assert manager.stats.kv_writes == 1

    def test_flush_all_dirty(self):
        manager, updater, clock = make_env(
            flush_policy=FlushPolicy.on_evict())
        for key in ("a", "b", "c"):
            slate = manager.get(updater, key)
            slate["count"] = 1
            slate.touch(clock())
            manager.note_update(slate)
        assert manager.flush_all_dirty() == 3
        assert manager.stats.kv_writes == 3


class TestTTL:
    def test_expired_cached_slate_reinitializes(self):
        manager, updater, clock = make_env(ttl=2.0)
        slate = manager.get(updater, "k")
        slate["count"] = 9
        slate.touch(clock())
        for _ in range(10):   # let the clock pass the TTL
            clock()
        fresh = manager.get(updater, "k")
        assert fresh["count"] == 0
        assert manager.stats.ttl_resets >= 1


class TestCrash:
    def test_crash_loses_dirty_slates(self):
        """Section 4.3: unflushed slate changes are lost on failure."""
        manager, updater, clock = make_env(
            flush_policy=FlushPolicy.on_evict())
        slate = manager.get(updater, "k")
        slate["count"] = 5
        slate.touch(clock())
        manager.note_update(slate)
        lost = manager.crash()
        assert lost == 1
        fresh = manager.get(updater, "k")
        assert fresh["count"] == 0  # nothing reached the store

    def test_crash_preserves_flushed_state(self):
        manager, updater, clock = make_env(
            flush_policy=FlushPolicy.write_through())
        slate = manager.get(updater, "k")
        slate["count"] = 5
        slate.touch(clock())
        manager.note_update(slate)
        manager.crash()
        assert manager.get(updater, "k")["count"] == 5


class TestLimitsAndIO:
    def test_slate_size_cap_enforced(self):
        manager, updater, clock = make_env(max_slate_bytes=100)
        slate = manager.get(updater, "k")
        slate["blob"] = "x" * 1000
        slate.touch(clock())
        with pytest.raises(SlateTooLargeError):
            manager.note_update(slate)

    def test_pending_io_accumulates_and_drains(self):
        manager, updater, clock = make_env()
        slate = manager.get(updater, "k")
        slate["count"] = 1
        slate.touch(clock())
        manager.note_update(slate)
        assert manager.pending_io_s > 0
        assert manager.take_pending_io() > 0
        assert manager.take_pending_io() == 0.0

    def test_store_none_keeps_slates_volatile(self):
        manager = SlateManager(store=None, cache_capacity=1)
        updater = CountUpdater(name="U1")
        slate = manager.get(updater, "a")
        slate["count"] = 7
        manager.note_update(slate)
        manager.get(updater, "b")  # evicts "a"; nowhere to persist
        assert manager.get(updater, "a")["count"] == 0


class FlakyStore:
    """A store facade that fails its first ``fail_n`` calls."""

    def __init__(self, store, fail_n):
        self._store = store
        self.fail_n = fail_n
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.calls <= self.fail_n:
            raise StoreError("transient")

    def read(self, *args, **kwargs):
        self._maybe_fail()
        return self._store.read(*args, **kwargs)

    def write(self, *args, **kwargs):
        self._maybe_fail()
        return self._store.write(*args, **kwargs)


def make_flaky_env(fail_n, retry=None, flush_policy=None):
    manager, updater, clock = make_env(
        flush_policy=flush_policy or FlushPolicy.write_through())
    manager.store = FlakyStore(manager.store, fail_n)
    if retry is not None:
        manager.retry = retry
    return manager, updater, clock


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)

    def test_transient_error_retried_with_backoff(self):
        manager, updater, clock = make_flaky_env(fail_n=2)
        slate = manager.get(updater, "k")  # read: 2 failures, then ok
        assert slate["count"] == 0
        assert manager.stats.kv_retries == 2
        # Exponential backoff: 0.002 + 0.004, charged as virtual I/O.
        assert manager.stats.kv_backoff_s == pytest.approx(0.006)
        assert manager.pending_io_s >= 0.006
        assert manager.stats.fail_open_reads == 0

    def test_backoff_capped_at_max_delay(self):
        retry = RetryPolicy(max_attempts=6, base_delay_s=0.1,
                            multiplier=10.0, max_delay_s=0.2,
                            fail_open=True)
        manager, updater, clock = make_flaky_env(fail_n=5, retry=retry)
        manager.get(updater, "k")
        # Delays: 0.1, then capped at 0.2 for the remaining retries.
        assert manager.stats.kv_backoff_s == pytest.approx(
            0.1 + 0.2 + 0.2 + 0.2 + 0.2)

    def test_fail_open_read_degrades_to_miss(self):
        manager, updater, clock = make_flaky_env(fail_n=100)
        slate = manager.get(updater, "k")  # every attempt fails
        assert slate["count"] == 0  # initialized, not raised
        assert manager.stats.fail_open_reads == 1
        assert manager.stats.kv_retries == manager.retry.max_attempts - 1

    def test_fail_open_write_leaves_slate_dirty(self):
        manager, updater, clock = make_flaky_env(fail_n=0)
        slate = manager.get(updater, "k")
        manager.store.fail_n = 100
        slate["count"] = 1
        slate.touch(clock())
        manager.note_update(slate)  # write-through flush fails open
        assert manager.stats.fail_open_writes == 1
        assert slate.dirty  # kept for the next flush cycle
        manager.store.fail_n = manager.store.calls  # store heals
        assert manager.flush_all_dirty() == 1
        assert not slate.dirty
        assert manager.stats.kv_writes == 1

    def test_fail_closed_propagates(self):
        manager, updater, clock = make_flaky_env(
            fail_n=100, retry=RetryPolicy.none(fail_open=False))
        with pytest.raises(StoreError):
            manager.get(updater, "k")

    def test_revive_counts_rehydrated_fetches(self):
        manager, updater, clock = make_env(
            flush_policy=FlushPolicy.write_through())
        slate = manager.get(updater, "k")
        slate["count"] = 3
        slate.touch(clock())
        manager.note_update(slate)
        manager.crash()
        assert manager.stats.rehydrated == 0
        manager.revive()
        assert manager.get(updater, "k")["count"] == 3  # from the store
        assert manager.stats.rehydrated == 1


class TestWatermarkPersistence:
    """Dedup watermarks persist atomically with the slate fields."""

    def test_watermarks_round_trip_through_store(self):
        manager, updater, _ = make_env(
            cache_capacity=1, flush_policy=FlushPolicy.write_through())
        slate = manager.get(updater, "k1")
        slate["count"] = 5
        slate.advance_watermark("S1>M1", 41)
        manager.note_update(slate)
        # Evict by touching a second key (capacity 1), then refetch.
        other = manager.get(updater, "k2")
        other["count"] = 1
        manager.note_update(other)
        refetched = manager.get(updater, "k1")
        assert refetched is not slate
        assert refetched["count"] == 5
        assert refetched.watermark("S1>M1") == 41
        # The reserved field never leaks into the application view.
        assert refetched.as_dict() == {"count": 5}

    def test_refetched_slate_without_watermarks_has_none(self):
        manager, updater, _ = make_env(
            cache_capacity=1, flush_policy=FlushPolicy.write_through())
        slate = manager.get(updater, "k1")
        slate["count"] = 2
        manager.note_update(slate)
        other = manager.get(updater, "k2")
        other["count"] = 1
        manager.note_update(other)
        refetched = manager.get(updater, "k1")
        assert refetched.watermarks is None
        assert refetched.watermark("anything") == -1

    def test_unflushed_watermark_reverts_with_crash(self):
        """Atomicity both ways: losing unflushed state also loses the
        watermark advance, so the replayed event re-applies instead of
        being wrongly deduped."""
        manager, updater, _ = make_env(
            cache_capacity=10, flush_policy=FlushPolicy.every(100.0))
        slate = manager.get(updater, "k1")
        slate["count"] = 1
        slate.advance_watermark("S1", 7)
        manager.note_update(slate)
        manager.flush_all_dirty()          # durable: count=1, wm=7
        slate["count"] = 2
        slate.advance_watermark("S1", 8)   # dirty, never flushed
        manager.note_update(slate)
        manager.crash()
        manager.revive()
        refetched = manager.get(updater, "k1")
        assert refetched["count"] == 1
        assert refetched.watermark("S1") == 7   # 8 reverted with count=2
