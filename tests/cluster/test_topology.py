"""Cluster topology descriptions and the network cost model."""

import pytest

from repro.cluster.topology import ClusterSpec, MachineSpec, NetworkSpec
from repro.errors import ConfigurationError


class TestMachineSpec:
    def test_defaults(self):
        machine = MachineSpec("m0")
        assert machine.cores == 8
        assert machine.storage == "ssd"

    def test_invalid_cores(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("m0", cores=0)

    def test_invalid_memory(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("m0", memory_mb=0)

    def test_invalid_storage(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("m0", storage="tape")


class TestNetworkSpec:
    def test_same_machine_is_free(self):
        assert NetworkSpec().transfer_time(10_000, same_machine=True) == 0.0

    def test_cross_machine_pays_latency_plus_bandwidth(self):
        net = NetworkSpec(latency_s=0.001,
                          bandwidth_bytes_per_s=1_000_000.0)
        assert net.transfer_time(1_000, same_machine=False) == \
            pytest.approx(0.001 + 0.001)

    def test_bigger_events_cost_more(self):
        net = NetworkSpec()
        assert net.transfer_time(10**6, False) > net.transfer_time(10, False)


class TestClusterSpec:
    def test_uniform_builder(self):
        cluster = ClusterSpec.uniform(5, cores=4)
        assert len(cluster.machines) == 5
        assert cluster.total_cores() == 20
        assert cluster.names() == [f"m{i:03d}" for i in range(5)]

    def test_machine_lookup(self):
        cluster = ClusterSpec.uniform(3)
        assert cluster.machine("m001").name == "m001"
        with pytest.raises(ConfigurationError):
            cluster.machine("nope")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(machines=[])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(machines=[MachineSpec("a"), MachineSpec("a")])

    def test_heterogeneous_storage(self):
        cluster = ClusterSpec([MachineSpec("fast", storage="ssd"),
                               MachineSpec("slow", storage="hdd")])
        assert cluster.machine("slow").storage == "hdd"
