"""Consistent hash ring: stability, failover, replica selection."""

import pytest

from repro.cluster.hashring import HashRing, route_key, stable_hash64
from repro.errors import ConfigurationError, WorkerFailedError


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("abc") == stable_hash64("abc")

    def test_distinct_inputs_differ(self):
        assert stable_hash64("abc") != stable_hash64("abd")

    def test_64_bit_range(self):
        assert 0 <= stable_hash64("x") < 2 ** 64


class TestRouteKey:
    def test_combines_key_and_destination(self):
        """Section 4.1: the routing input is <event key, destination fn>."""
        assert route_key("k", "U1") != route_key("k", "U2")
        assert route_key("k1", "U1") != route_key("k2", "U1")

    def test_no_ambiguity_from_concatenation(self):
        assert route_key("ab", "c") != route_key("a", "bc")


class TestMembership:
    def test_lookup_returns_a_member(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.lookup("anything") in {"a", "b", "c"}

    def test_lookup_is_stable(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.lookup("k") == ring.lookup("k")

    def test_two_rings_same_members_agree(self):
        """All workers share the hash function (Section 4.1): independent
        ring instances route identically."""
        r1 = HashRing(["a", "b", "c", "d"])
        r2 = HashRing(["d", "c", "b", "a"])
        for i in range(100):
            assert r1.lookup(f"key{i}") == r2.lookup(f"key{i}")

    def test_add_is_idempotent(self):
        ring = HashRing(["a"])
        ring.add("a")
        assert len(ring) == 1

    def test_remove_member(self):
        ring = HashRing(["a", "b"])
        ring.remove("a")
        assert ring.members == {"b"}
        assert all(ring.lookup(f"k{i}") == "b" for i in range(10))

    def test_remove_unknown_is_noop(self):
        ring = HashRing(["a"])
        ring.remove("zzz")
        assert len(ring) == 1

    def test_invalid_replicas_rejected(self):
        with pytest.raises(ConfigurationError):
            HashRing(replicas=0)


class TestFailover:
    def test_excluded_member_skipped(self):
        """Section 4.3: after a failure broadcast, all events with the
        same key route to the next worker on the ring."""
        ring = HashRing(["a", "b", "c"])
        owner = ring.lookup("k")
        ring.exclude(owner)
        replacement = ring.lookup("k")
        assert replacement != owner
        assert ring.lookup("k") == replacement  # stable thereafter

    def test_unaffected_keys_keep_their_owner(self):
        ring = HashRing([f"m{i}" for i in range(8)])
        before = {f"key{i}": ring.lookup(f"key{i}") for i in range(200)}
        victim = ring.lookup("key0")
        ring.exclude(victim)
        moved = sum(1 for k, owner in before.items()
                    if owner != victim and ring.lookup(k) != owner)
        assert moved == 0  # only the victim's keys move

    def test_restore_returns_ownership(self):
        ring = HashRing(["a", "b", "c"])
        owner = ring.lookup("k")
        ring.exclude(owner)
        ring.restore(owner)
        assert ring.lookup("k") == owner

    def test_all_excluded_raises(self):
        ring = HashRing(["a"])
        ring.exclude("a")
        with pytest.raises(WorkerFailedError):
            ring.lookup("k")

    def test_live_members_view(self):
        ring = HashRing(["a", "b"])
        ring.exclude("a")
        assert ring.live_members == {"b"}
        assert ring.members == {"a", "b"}


class TestPreferenceList:
    def test_distinct_members(self):
        ring = HashRing(["a", "b", "c", "d"])
        replicas = ring.preference_list("row", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_first_entry_is_lookup_owner(self):
        ring = HashRing(["a", "b", "c"])
        assert ring.preference_list("row", 2)[0] == ring.lookup("row")

    def test_truncated_when_ring_small(self):
        ring = HashRing(["a", "b"])
        assert len(ring.preference_list("row", 5)) == 2

    def test_skips_excluded(self):
        ring = HashRing(["a", "b", "c"])
        victim = ring.preference_list("row", 1)[0]
        ring.exclude(victim)
        assert victim not in ring.preference_list("row", 2)


class TestLoadDistribution:
    def test_reasonably_balanced(self):
        """Virtual nodes keep the max/min owner load within ~3x for
        a thousand keys over 8 members."""
        ring = HashRing([f"m{i}" for i in range(8)], replicas=64)
        counts = ring.load_distribution(f"key{i}" for i in range(1000))
        assert sum(counts.values()) == 1000
        assert max(counts.values()) <= 3 * max(1, min(counts.values()))


class TestMemoization:
    """The lookup/preference memo is invisible except in its counters:
    a memoized ring must agree with a cold ring at every step of any
    membership churn sequence."""

    KEYS = [f"key{i}" for i in range(200)]

    def assert_equivalent(self, memo, cold):
        for key in self.KEYS:
            assert memo.lookup(key) == cold.lookup(key)
            assert (memo.preference_list(key, 3)
                    == cold.preference_list(key, 3))

    def test_agrees_across_join_fail_revive(self):
        members = [f"m{i}" for i in range(6)]
        memo = HashRing(members, memoize=True)
        cold = HashRing(members, memoize=False)
        self.assert_equivalent(memo, cold)
        for step in (lambda r: r.exclude("m2"),      # fail
                     lambda r: r.add("m6"),          # join
                     lambda r: r.restore("m2"),      # revive
                     lambda r: r.remove("m4")):      # leave
            step(memo)
            step(cold)
            self.assert_equivalent(memo, cold)

    def test_hits_accumulate_only_when_memoized(self):
        memo = HashRing(["a", "b", "c"], memoize=True)
        cold = HashRing(["a", "b", "c"], memoize=False)
        for ring in (memo, cold):
            for _ in range(2):
                for key in self.KEYS[:50]:
                    ring.lookup(key)
        assert memo.memo_hits == 50
        assert memo.memo_misses == 50
        assert cold.memo_hits == 0 and cold.memo_misses == 0

    def test_membership_change_invalidates(self):
        ring = HashRing(["a", "b", "c"], memoize=True)
        ring.lookup("row")
        ring.add("d")
        assert ring.memo_invalidations == 1
        ring.lookup("row")
        ring.exclude("a")
        assert ring.memo_invalidations == 2
        # No-op changes must not invalidate a warm memo.
        ring.lookup("row")
        ring.exclude("a")          # already excluded
        ring.restore("b")          # never excluded
        ring.add("d")              # already a member
        ring.remove("zz")          # never a member
        assert ring.memo_invalidations == 2

    def test_stale_memo_never_serves_excluded_member(self):
        ring = HashRing(["a", "b", "c"], memoize=True)
        owner = ring.lookup("row")
        ring.exclude(owner)
        assert ring.lookup("row") != owner
        assert owner not in ring.preference_list("row", 2)

    def test_preference_list_copies_are_independent(self):
        ring = HashRing(["a", "b", "c"], memoize=True)
        first = ring.preference_list("row", 2)
        first.append("corrupted")
        assert ring.preference_list("row", 2) != first
