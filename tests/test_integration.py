"""Cross-module integration: the same apps on every engine agree.

The paper's implicit contract — an application written once runs on
Muppet 1.0 and 2.0 unchanged — plus our own: all engines approximate the
reference executor's slate fixpoints (Section 3's well-defined semantics).
"""

import pytest

from repro.apps import (build_retailer_app, build_reputation_app,
                        build_split_app, build_top_urls_app)
from repro.apps.top_urls import LEADERBOARD_KEY
from repro.cluster import ClusterSpec
from repro.core import ReferenceExecutor
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.sim import (ENGINE_MUPPET1, ENGINE_MUPPET2, SimConfig,
                       SimRuntime, from_trace)
from repro.workloads import CheckinGenerator, TweetGenerator


@pytest.fixture(scope="module")
def checkins():
    return CheckinGenerator(rate_per_s=300, seed=71).take_with_truth(900)


class TestRetailerAcrossEngines:
    def test_reference(self, checkins):
        events, truth = checkins
        result = ReferenceExecutor(build_retailer_app()).run(list(events))
        assert {k: s["count"]
                for k, s in result.slates_of("U1").items()} == truth

    def test_local_threads(self, checkins):
        events, truth = checkins
        with LocalMuppet(build_retailer_app(),
                         LocalConfig(num_threads=4)) as runtime:
            runtime.ingest_many(list(events))
            assert runtime.drain()
            got = {k: v["count"]
                   for k, v in runtime.read_slates_of("U1").items()}
        assert got == truth

    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_simulated_cluster(self, checkins, engine):
        events, truth = checkins
        runtime = SimRuntime(build_retailer_app(),
                             ClusterSpec.uniform(4, cores=4),
                             SimConfig(engine=engine),
                             [from_trace("S1", list(events))])
        report = runtime.run(10.0)
        got = {k: v["count"] for k, v in runtime.slates_of("U1").items()}
        assert got == truth
        assert report.counters.lost_total() == 0


class TestTopUrlsAcrossEngines:
    """A single-hot-key app: the hardest case for distributed engines."""

    @pytest.fixture(scope="class")
    def url_events(self):
        return TweetGenerator(rate_per_s=300, seed=72,
                              url_prob=0.6).take(600)

    def test_local_leaderboard_counts_correct(self, url_events):
        reference = ReferenceExecutor(build_top_urls_app()).run(
            list(url_events))
        ref_board = dict(reference.slate("U2", LEADERBOARD_KEY)["top"])
        with LocalMuppet(build_top_urls_app(),
                         LocalConfig(num_threads=4)) as runtime:
            runtime.ingest_many(list(url_events))
            assert runtime.drain()
            board = dict(runtime.read_slate("U2", LEADERBOARD_KEY)["top"])
        # Counts per URL must agree exactly (counting is commutative; the
        # leaderboard tracks the max running count per URL).
        assert board == ref_board

    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_sim_leaderboard_counts_correct(self, url_events, engine):
        reference = ReferenceExecutor(build_top_urls_app()).run(
            list(url_events))
        ref_board = dict(reference.slate("U2", LEADERBOARD_KEY)["top"])
        runtime = SimRuntime(build_top_urls_app(),
                             ClusterSpec.uniform(3, cores=4),
                             SimConfig(engine=engine),
                             [from_trace("S1", list(url_events))])
        runtime.run(8.0)
        board = dict(runtime.slate("U2", LEADERBOARD_KEY)["top"])
        assert board == ref_board


class TestSplitAppAcrossEngines:
    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_example6_invariant_on_cluster(self, engine):
        generator = CheckinGenerator(seed=73, hot_retailer="Best Buy",
                                     hot_share=0.8, rate_per_s=300)
        events, truth = generator.take_with_truth(900)
        app = build_split_app(hot_keys=["Best Buy"], num_splits=4,
                              emit_every=5)
        runtime = SimRuntime(app, ClusterSpec.uniform(4, cores=4),
                             SimConfig(engine=engine),
                             [from_trace("S1", events)])
        runtime.run(10.0)
        merged = {k: v["count"] for k, v in runtime.slates_of("U2").items()}
        assert merged == truth


class TestReputationAcrossEngines:
    def test_total_score_mass_close_to_reference(self):
        """Reputation is order-sensitive (an endorsement carries the
        endorser's score *at emission time*), so engines only approximate
        the reference — exactly the caveat Section 3 ends on. The user
        populations and totals must still agree closely."""
        events = TweetGenerator(rate_per_s=200, seed=74).take(300)
        reference = ReferenceExecutor(build_reputation_app()).run(
            list(events))
        ref_slates = reference.slates_of("U1")
        ref_total = sum(s["score"] for s in ref_slates.values())
        with LocalMuppet(build_reputation_app(),
                         LocalConfig(num_threads=1)) as runtime:
            runtime.ingest_many(list(events))
            assert runtime.drain()
            local_slates = runtime.read_slates_of("U1")
            local_total = sum(v["score"] for v in local_slates.values())
        assert set(local_slates) == set(ref_slates)
        assert local_total == pytest.approx(ref_total, rel=0.01)
        # Activity counts (order-insensitive) agree exactly.
        assert {k: v["tweets"] for k, v in local_slates.items()} == \
            {k: s["tweets"] for k, s in ref_slates.items()}
