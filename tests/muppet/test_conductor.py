"""The Muppet 1.0 conductor/task-processor pair and its IPC protocol."""

import pytest

from repro.core import Event
from repro.errors import ConfigurationError
from repro.muppet.conductor import (Conductor, FramingError, IPCAccountant,
                                    TaskProcessor, decode_frames,
                                    encode_frame)


class TestFraming:
    def test_roundtrip_single_frame(self):
        message = {"event": {"key": "k", "value": "v"}}
        frames, rest = decode_frames(encode_frame(message))
        assert frames == [message]
        assert rest == b""

    def test_multiple_frames(self):
        buffer = encode_frame({"a": 1}) + encode_frame({"b": 2})
        frames, rest = decode_frames(buffer)
        assert frames == [{"a": 1}, {"b": 2}]
        assert rest == b""

    def test_partial_frame_kept_as_tail(self):
        full = encode_frame({"a": 1})
        frames, rest = decode_frames(full + full[:3])
        assert frames == [{"a": 1}]
        assert rest == full[:3]

    def test_corrupt_payload_raises(self):
        import struct

        bad = struct.pack(">I", 3) + b"\xff\xff\xff"
        with pytest.raises(FramingError):
            decode_frames(bad)


def counting_operator(event, slate):
    """A Figure 4-style counter as a task-processor callable; keeps any
    other slate fields (so the whole slate crosses the pipe back)."""
    new_slate = dict(slate or {})
    new_slate["count"] = new_slate.get("count", 0) + 1
    return [], new_slate


def forwarding_operator(event, slate):
    """A mapper: emit one output per input, no slate."""
    return [{"sid": "S2", "key": event["key"], "value": event["value"]}], \
        None


class TestWorkerPair:
    def test_update_roundtrip_modifies_slate(self):
        conductor = Conductor(TaskProcessor(counting_operator))
        outputs, slate = conductor.process_event(
            Event("S2", 1.0, "walmart", "{}"), slate={"count": 4})
        assert outputs == []
        assert slate == {"count": 5}

    def test_map_roundtrip_produces_outputs(self):
        conductor = Conductor(TaskProcessor(forwarding_operator))
        outputs, slate = conductor.process_event(
            Event("S1", 1.0, "k", "payload"))
        assert slate is None
        assert outputs == [{"sid": "S2", "key": "k", "value": "payload"}]

    def test_every_byte_is_counted(self):
        """The §4.5 waste is measurable: bytes cross twice per event."""
        conductor = Conductor(TaskProcessor(counting_operator))
        big_slate = {"count": 1, "pad": "x" * 1000}
        conductor.process_event(Event("S2", 1.0, "k", "{}"),
                                slate=big_slate)
        stats = conductor.stats
        assert stats.frames_to_task == 1
        assert stats.frames_to_conductor == 1
        assert stats.bytes_to_task > 1000     # slate went over the pipe
        assert stats.bytes_to_conductor > 1000  # and came back modified
        assert stats.total_bytes == (stats.bytes_to_task
                                     + stats.bytes_to_conductor)

    def test_bigger_slates_cost_more_ipc(self):
        small = Conductor(TaskProcessor(counting_operator))
        small.process_event(Event("S2", 1.0, "k", "{}"),
                            slate={"count": 1})
        big = Conductor(TaskProcessor(counting_operator))
        big.process_event(Event("S2", 1.0, "k", "{}"),
                          slate={"count": 1, "pad": "x" * 5000})
        assert big.stats.total_bytes > small.stats.total_bytes + 9000


class TestIPCAccountant:
    def test_cost_grows_with_bytes(self):
        accountant = IPCAccountant()
        assert accountant.cost(100, slate_bytes=10_000) > \
            accountant.cost(100, slate_bytes=10)

    def test_slate_counted_both_directions(self):
        accountant = IPCAccountant(fixed_s=0.0, per_byte_s=1e-9)
        with_slate = accountant.cost(0, slate_bytes=1000)
        with_output = accountant.cost(0, output_bytes=1000)
        assert with_slate == pytest.approx(2 * with_output
                                           - accountant.cost(0) + 48e-9
                                           + accountant.cost(0) - 48e-9,
                                           rel=0.05)

    def test_fixed_floor(self):
        accountant = IPCAccountant(fixed_s=1e-4, per_byte_s=0.0)
        assert accountant.cost(10_000) == pytest.approx(1e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IPCAccountant(fixed_s=-1.0)
