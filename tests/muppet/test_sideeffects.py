"""Side-effect support: slate log sinks and logger contention."""

import threading
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.muppet.sideeffects import (PerWorkerLogger, SharedLogger,
                                      SlateLogSink)


class TestSlateLogSink:
    def test_log_and_read_partition(self):
        sink = SlateLogSink()
        sink.log("U1", "walmart", {"count": 5}, ts=1.0)
        sink.log("U1", "target", {"count": 2}, ts=2.0)
        sink.log("U2", "walmart", {"score": 0.9}, ts=3.0)
        u1 = list(sink.read("U1"))
        assert len(u1) == 2
        assert u1[0] == {"ts": 1.0, "updater": "U1", "key": "walmart",
                         "data": {"count": 5}}
        assert len(list(sink.read("U2"))) == 1

    def test_partial_slate_data(self):
        """Users 'write less than the entire slate'."""
        sink = SlateLogSink()
        sink.log("U1", "k", {"count": 5})  # not the full slate dict
        record = next(iter(sink.read("U1")))
        assert record["data"] == {"count": 5}

    def test_persists_to_directory(self, tmp_path: Path):
        sink = SlateLogSink(tmp_path)
        for i in range(10):
            sink.log("U1", f"k{i}", {"n": i})
        paths = sink.flush()
        assert paths == [tmp_path / "U1.jsonl"]
        assert len(paths[0].read_text().splitlines()) == 10
        # Reading merges the persisted file with any new buffer content.
        sink.log("U1", "k10", {"n": 10})
        assert len(list(sink.read("U1"))) == 11

    def test_thread_safety(self):
        sink = SlateLogSink()

        def writer(tag):
            for i in range(500):
                sink.log("U1", f"{tag}-{i}", {"i": i})

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sink.records_written == 2000
        assert len(list(sink.read("U1"))) == 2000

    def test_empty_partition_reads_empty(self):
        assert list(SlateLogSink().read("ghost")) == []


class TestLoggerContention:
    def test_shared_logger_counts_lock_wait(self):
        logger = SharedLogger(write_cost_s=1e-4)

        def worker():
            for _ in range(50):
                logger.log("line")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert logger.stats.records == 200
        assert len(logger.lines()) == 200
        # With 4 threads serializing on one lock, someone waited.
        assert logger.stats.lock_wait_s > 0

    def test_per_worker_logger_no_shared_lock(self):
        logger = PerWorkerLogger(workers=4, write_cost_s=0.0)

        def worker(index):
            for i in range(100):
                logger.log(index, f"w{index}-{i}")

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert logger.stats.records == 400
        assert len(logger.lines()) == 400

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SharedLogger(write_cost_s=-1.0)
        with pytest.raises(ConfigurationError):
            PerWorkerLogger(workers=0)
