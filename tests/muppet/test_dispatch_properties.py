"""Property tests on the dispatchers and the hash ring (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.hashring import HashRing
from repro.muppet.dispatch import SingleChoiceDispatcher, TwoChoiceDispatcher

keys = st.text(alphabet="abcdefgh0123", min_size=1, max_size=6)
functions = st.sampled_from(["U1", "U2", "M1"])


class TestTwoChoiceProperties:
    @settings(max_examples=100)
    @given(keys, functions, st.integers(2, 32),
           st.lists(st.integers(0, 1000), min_size=32, max_size=32))
    def test_choice_is_always_a_candidate(self, key, function, threads,
                                          lengths):
        """Whatever the load, the choice is the primary or secondary."""
        dispatcher = TwoChoiceDispatcher(threads)
        primary, secondary = dispatcher.candidates(key, function)
        choice = dispatcher.choose(key, function, lengths[:threads],
                                   [None] * threads)
        assert choice in (primary, secondary)

    @settings(max_examples=50)
    @given(keys, functions, st.integers(1, 32))
    def test_candidates_deterministic_across_instances(self, key,
                                                       function, threads):
        """All machines compute the same candidate pair (shared hash)."""
        a = TwoChoiceDispatcher(threads).candidates(key, function)
        b = TwoChoiceDispatcher(threads).candidates(key, function)
        assert a == b

    @settings(max_examples=30)
    @given(st.lists(st.tuples(keys, functions), min_size=1, max_size=200),
           st.integers(2, 16))
    def test_per_key_destinations_bounded_by_two(self, items, threads):
        """For any workload, one (key, fn) never lands on > 2 threads."""
        import random

        dispatcher = TwoChoiceDispatcher(threads)
        rng = random.Random(0)
        destinations = {}
        for key, function in items:
            lengths = [rng.randrange(100) for _ in range(threads)]
            choice = dispatcher.choose(key, function, lengths,
                                       [None] * threads)
            destinations.setdefault((key, function), set()).add(choice)
        assert all(len(d) <= 2 for d in destinations.values())


class TestSingleChoiceProperties:
    @settings(max_examples=50)
    @given(keys, functions, st.integers(1, 32))
    def test_owner_independent_of_load(self, key, function, threads):
        dispatcher = SingleChoiceDispatcher(threads)
        owners = {
            dispatcher.choose(key, function, [load] * threads,
                              [None] * threads)
            for load in (0, 5, 10_000)
        }
        assert len(owners) == 1


class TestHashRingProperties:
    @settings(max_examples=50)
    @given(st.sets(st.text(alphabet="mn0123456789", min_size=1,
                           max_size=4), min_size=1, max_size=12),
           keys)
    def test_lookup_returns_live_member(self, members, key):
        ring = HashRing(members)
        assert ring.lookup(key) in members

    @settings(max_examples=50)
    @given(st.sets(st.text(alphabet="mn0123456789", min_size=1,
                           max_size=4), min_size=2, max_size=12),
           st.lists(keys, min_size=1, max_size=30))
    def test_exclusion_moves_only_victims_keys(self, members, lookup_keys):
        ring = HashRing(members)
        before = {key: ring.lookup(key) for key in lookup_keys}
        victim = ring.lookup(lookup_keys[0])
        ring.exclude(victim)
        for key, owner in before.items():
            after = ring.lookup(key)
            if owner == victim:
                assert after != victim
            else:
                assert after == owner

    @settings(max_examples=50)
    @given(st.sets(st.text(alphabet="mn0123456789", min_size=1,
                           max_size=4), min_size=1, max_size=12),
           keys, st.integers(1, 5))
    def test_preference_list_distinct_and_live(self, members, key, count):
        ring = HashRing(members)
        replicas = ring.preference_list(key, count)
        assert len(replicas) == len(set(replicas))
        assert len(replicas) == min(count, len(members))
        assert all(replica in members for replica in replicas)
