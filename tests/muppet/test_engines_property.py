"""Property test: the thread runtimes agree with the reference executor
on commutative workloads, for arbitrary inputs (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Event, ReferenceExecutor
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.muppet.local1 import Local1Config, LocalMuppet1
from tests.conftest import build_count_app

events_strategy = st.lists(
    st.builds(
        lambda ts, k: Event("S1", ts, f"k{k}", None),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(0, 6),
    ),
    min_size=0, max_size=40,
)


def reference_counts(events):
    result = ReferenceExecutor(build_count_app()).run(list(events))
    return {k: s["count"] for k, s in result.slates_of("U1").items()}


class TestEnginesMatchReference:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(events_strategy)
    def test_local_muppet2_matches(self, events):
        expected = reference_counts(events)
        with LocalMuppet(build_count_app(),
                         LocalConfig(num_threads=2,
                                     record_latency=False)) as runtime:
            runtime.ingest_many(list(events))
            assert runtime.drain()
            got = {k: v["count"]
                   for k, v in runtime.read_slates_of("U1").items()}
        assert got == expected

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(events_strategy)
    def test_local_muppet1_matches(self, events):
        expected = reference_counts(events)
        with LocalMuppet1(build_count_app(),
                          Local1Config(workers_per_function=2,
                                       record_latency=False)) as runtime:
            runtime.ingest_many(list(events))
            assert runtime.drain()
            got = {k: v["count"]
                   for k, v in runtime.read_slates_of("U1").items()}
        assert got == expected
