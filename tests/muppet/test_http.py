"""HTTP slate server: fetch URIs, freshness, status, bulk reads."""

import json
import urllib.error
import urllib.request

import pytest

from repro.muppet.http import SlateHTTPServer
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app, make_events


@pytest.fixture
def served_runtime():
    """A drained runtime with 10 events on key k0, behind HTTP."""
    app = build_count_app()
    config = LocalConfig(num_threads=2,
                         flush_policy=FlushPolicy.every(3600.0))
    with LocalMuppet(app, config) as runtime:
        runtime.ingest_many(make_events(10, keys=1))
        runtime.drain()
        with SlateHTTPServer(runtime) as server:
            yield runtime, f"http://127.0.0.1:{server.port}"


def fetch(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read())


class TestSlateFetch:
    def test_fetch_by_updater_and_key(self, served_runtime):
        """Section 4.4: the URI names the updater and the slate key."""
        _, base = served_runtime
        status, payload = fetch(f"{base}/slate/U1/k0")
        assert status == 200
        assert payload == {"updater": "U1", "key": "k0",
                           "slate": {"count": 10}}

    def test_fresh_cache_beats_stale_store(self, served_runtime):
        """The fetch must hit the cache, not the durable store."""
        runtime, base = served_runtime
        assert runtime.store.read("k0", "U1").value is None  # not flushed
        status, payload = fetch(f"{base}/slate/U1/k0")
        assert status == 200 and payload["slate"]["count"] == 10

    def test_missing_slate_404(self, served_runtime):
        _, base = served_runtime
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{base}/slate/U1/ghost")
        assert excinfo.value.code == 404

    def test_unknown_path_404(self, served_runtime):
        _, base = served_runtime
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{base}/nope")
        assert excinfo.value.code == 404

    def test_url_encoded_keys(self, served_runtime):
        runtime, base = served_runtime
        from repro.core import Event
        runtime.ingest(Event("S1", 99.0, "Best Buy"))
        runtime.drain()
        status, payload = fetch(f"{base}/slate/U1/Best%20Buy")
        assert status == 200 and payload["slate"]["count"] == 1


class TestBulkAndStatus:
    def test_slates_listing(self, served_runtime):
        _, base = served_runtime
        status, payload = fetch(f"{base}/slates/U1")
        assert status == 200
        assert payload["slates"]["k0"]["count"] == 10

    def test_bulk_reads_the_store_and_lags(self, served_runtime):
        """The store copy is stale until a flush — why §4.4 reads cache."""
        _, base = served_runtime
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(f"{base}/bulk/U1/k0")
        assert excinfo.value.code == 404  # nothing flushed yet

    def test_bulk_sees_flushed_value(self, served_runtime):
        runtime, base = served_runtime
        runtime.manager.flush_all_dirty()
        status, payload = fetch(f"{base}/bulk/U1/k0")
        assert status == 200
        assert payload["slate"]["count"] == 10
        assert payload["source"] == "store"

    def test_status_endpoint(self, served_runtime):
        _, base = served_runtime
        status, payload = fetch(f"{base}/status")
        assert status == 200
        assert payload["counters"]["processed"] == 20
        assert "largest_queue" in payload
