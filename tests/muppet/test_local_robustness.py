"""LocalMuppet robustness: failing operators, TTLs, slate-size caps."""

import time


from repro.core import Application, Event, Mapper, Updater
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.slates.manager import FlushPolicy
from tests.conftest import CountingUpdater, EchoMapper


class ExplodingMapper(Mapper):
    """Raises on every third event."""

    def __init__(self, config=None, name=""):
        super().__init__(config, name)
        self._n = 0

    def map(self, ctx, event):
        self._n += 1
        if self._n % 3 == 0:
            raise RuntimeError("boom")
        ctx.publish("S2", event.key, event.value)


class TestOperatorErrorContainment:
    def build(self):
        app = Application("explosive")
        app.add_stream("S1", external=True)
        app.add_stream("S2")
        app.add_mapper("M1", ExplodingMapper, subscribes=["S1"],
                       publishes=["S2"])
        app.add_updater("U1", CountingUpdater, subscribes=["S2"])
        return app.validate()

    def test_failing_operator_does_not_kill_workers(self):
        with LocalMuppet(self.build(),
                         LocalConfig(num_threads=2)) as runtime:
            for i in range(30):
                runtime.ingest(Event("S1", float(i), "k"))
            assert runtime.drain()
            assert runtime.operator_errors == 10
            assert isinstance(runtime.last_error, RuntimeError)
            # The surviving 20 events were processed normally.
            assert runtime.read_slate("U1", "k")["count"] == 20

    def test_engine_still_responsive_after_many_errors(self):
        with LocalMuppet(self.build(),
                         LocalConfig(num_threads=1)) as runtime:
            for i in range(99):
                runtime.ingest(Event("S1", float(i), "k"))
            assert runtime.drain(timeout=30.0)
            assert runtime.status()["running"]


class TestSlateTTLOnLocalRuntime:
    def test_ttl_reset_on_thread_runtime(self):
        app = Application("ttl")
        app.add_stream("S1", external=True)
        app.add_updater("U1", CountingUpdater, subscribes=["S1"],
                        config={"slate_ttl": 0.2})
        with LocalMuppet(app, LocalConfig(
                num_threads=1,
                flush_policy=FlushPolicy.write_through())) as runtime:
            runtime.ingest(Event("S1", 0.0, "k"))
            runtime.drain()
            assert runtime.read_slate("U1", "k")["count"] == 1
            time.sleep(0.4)  # wall-clock TTL lapse
            runtime.ingest(Event("S1", 1.0, "k"))
            runtime.drain()
            assert runtime.read_slate("U1", "k")["count"] == 1  # reset


class TestStoreSharing:
    def test_two_runtimes_share_a_store(self):
        """A restarted application refetches its slates from the shared
        kv-store — the §4.2 'resuming, restarting, or recovering' story
        on the real-thread runtime."""
        import itertools

        from repro.kvstore import ReplicatedKVStore

        counter = itertools.count()
        store = ReplicatedKVStore(["kv0"], replication_factor=1,
                                  clock=lambda: float(next(counter)))

        def build():
            app = Application("restartable")
            app.add_stream("S1", external=True)
            app.add_stream("S2")
            app.add_mapper("M1", EchoMapper, subscribes=["S1"],
                           publishes=["S2"])
            app.add_updater("U1", CountingUpdater, subscribes=["S2"])
            return app.validate()

        config = LocalConfig(num_threads=2,
                             flush_policy=FlushPolicy.write_through())
        with LocalMuppet(build(), config, store=store) as first:
            for i in range(10):
                first.ingest(Event("S1", float(i), "k"))
            first.drain()
        # New runtime instance, same store: state survives the restart.
        with LocalMuppet(build(), config, store=store) as second:
            assert second.read_slate("U1", "k")["count"] == 10
            for i in range(5):
                second.ingest(Event("S1", 100.0 + i, "k"))
            second.drain()
            assert second.read_slate("U1", "k")["count"] == 15
