"""Event replay journal (the Section 4.3 future-work extension)."""

import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.muppet.replay import ReplayJournal
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app


class TestJournal:
    def test_record_and_take(self):
        journal = ReplayJournal(horizon_s=10.0)
        journal.record("m1", "e1", now=0.0)
        journal.record("m2", "e2", now=1.0)
        journal.record("m1", "e3", now=2.0)
        assert journal.take_for("m1", now=3.0) == ["e1", "e3"]
        assert len(journal) == 1  # e2 remains

    def test_horizon_prunes_old_entries(self):
        journal = ReplayJournal(horizon_s=1.0)
        journal.record("m1", "old", now=0.0)
        journal.record("m1", "new", now=5.0)
        assert journal.take_for("m1", now=5.5) == ["new"]
        assert journal.stats.pruned == 1

    def test_max_entries_bounds_memory(self):
        journal = ReplayJournal(horizon_s=100.0, max_entries=5)
        for i in range(10):
            journal.record("m1", f"e{i}", now=float(i) * 0.01)
        assert len(journal) == 5
        assert journal.take_for("m1", now=1.0) == \
            [f"e{i}" for i in range(5, 10)]

    def test_take_is_destructive(self):
        journal = ReplayJournal(horizon_s=10.0)
        journal.record("m1", "e", now=0.0)
        journal.take_for("m1", now=0.1)
        assert journal.take_for("m1", now=0.2) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplayJournal(horizon_s=0.0)
        with pytest.raises(ConfigurationError):
            ReplayJournal(max_entries=0)


class TestReplayInSim:
    def run_failure(self, replay_horizon):
        source = constant_rate("S1", rate_per_s=2000, duration_s=2.0,
                               key_fn=lambda i: f"k{i % 64}")
        runtime = SimRuntime(
            build_count_app(), ClusterSpec.uniform(4, cores=4),
            SimConfig(replay_horizon_s=replay_horizon,
                      flush_policy=FlushPolicy.write_through()),
            [source], failures=[(1.0, "m001")])
        report = runtime.run(10.0)
        counted = sum(v["count"]
                      for v in runtime.slates_of("U1").values())
        return runtime, report, counted

    def test_replay_recovers_in_flight_events(self):
        """With write-through slates + replay, a machine failure costs
        (nearly) nothing: at-least-once within the horizon."""
        _, no_replay_report, counted_without = self.run_failure(None)
        runtime, replay_report, counted_with = self.run_failure(0.5)
        assert counted_with >= counted_without
        # Write-through means no dirty-slate loss; replay covers the
        # in-flight/queued events: the count reaches (at least) 4000.
        assert counted_with >= 4000
        assert runtime.counters_replayed > 0

    def test_replay_off_by_default(self):
        runtime, _, __ = self.run_failure(None)
        assert runtime.replay_journal is None

    def test_replayed_events_flow_through_rerouted_ring(self):
        """Replayed events cannot go back to the machine that died; they
        must re-enter through the *post-broadcast* ring and land on
        survivors. Completeness with the original owner still dead is
        the proof."""
        runtime, _, counted = self.run_failure(0.5)
        assert runtime.counters_replayed > 0
        assert "m001" not in runtime._machine_ring.live_members
        assert not runtime.machines["m001"].alive
        # Every key — including the dead machine's — reached full count
        # via the rerouted ring (write-through: no dirty-slate loss).
        assert counted >= 4000
        per_key = runtime.slates_of("U1")
        assert len(per_key) == 64

    def test_overcount_bounded_by_replayed_volume(self):
        """The journal is at-least-once: an event counted just before the
        crash may be counted again on replay. The over-count can never
        exceed what the journal actually replayed (the in-flight volume
        within the horizon)."""
        runtime, _, counted = self.run_failure(0.5)
        offered = 4000
        overcount = counted - offered
        assert 0 <= overcount <= runtime.counters_replayed
        # And the journal can't hold more than a horizon of the stream.
        assert runtime.counters_replayed <= 2000 * 0.5 + 1

    def test_journal_prunes_to_horizon_in_sim(self):
        """The sim's journal never retains more than one horizon of
        recorded sends — bounded memory is the feature's contract."""
        runtime, _, __ = self.run_failure(0.2)
        journal = runtime.replay_journal
        assert journal is not None
        assert journal.stats.pruned > 0
        # Whatever remains spans at most one horizon (pruned on record).
        if len(journal) > 1:
            sent_times = [sent_at for sent_at, _, __ in journal._entries]
            assert max(sent_times) - min(sent_times) <= 0.2 + 1e-9


class TestElasticMembership:
    def test_machine_joins_without_loss(self):
        """Section 5 'Changing the Number of Machines on the Fly',
        via the rebalance-barrier design."""
        source = constant_rate("S1", rate_per_s=2000, duration_s=2.0,
                               key_fn=lambda i: f"k{i % 64}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=4),
                             SimConfig(), [source])
        runtime.schedule_add_machine(1.0, "m_new", cores=4)
        report = runtime.run(10.0)
        assert "m_new" in runtime.machines
        counted = sum(v["count"]
                      for v in runtime.slates_of("U1").values())
        assert counted == 4000
        assert report.counters.lost_total() == 0
        # The new machine actually took over some keys.
        new_machine = runtime.machines["m_new"]
        accepted = sum(w.queue.stats.accepted
                       for w in new_machine.workers)
        assert accepted > 0

    def test_join_is_idempotent(self):
        source = constant_rate("S1", rate_per_s=500, duration_s=1.0,
                               key_fn=lambda i: f"k{i % 8}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=2),
                             SimConfig(), [source])
        runtime.schedule_add_machine(0.5, "m_new")
        runtime.schedule_add_machine(0.6, "m_new")
        runtime.run(5.0)
        assert sorted(runtime.machines) == ["m000", "m001", "m_new"]

    def test_muppet1_join(self):
        from repro.sim import ENGINE_MUPPET1

        source = constant_rate("S1", rate_per_s=1000, duration_s=1.0,
                               key_fn=lambda i: f"k{i % 32}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=4),
                             SimConfig(engine=ENGINE_MUPPET1), [source])
        runtime.schedule_add_machine(0.5, "m_new", cores=4)
        report = runtime.run(6.0)
        counted = sum(v["count"]
                      for v in runtime.slates_of("U1").values())
        assert counted == 1000
        assert report.counters.lost_total() == 0


class TestEpochPrunedJournal:
    """The effectively-once configuration: no time horizon, pruned only
    at checkpoint-epoch barriers via prune_before()."""

    def test_no_time_pruning_without_horizon(self):
        journal = ReplayJournal.epoch_pruned()
        journal.record("m1", "a", now=0.0)
        journal.record("m1", "b", now=1000.0)   # far past any horizon
        assert len(journal) == 2
        assert journal.stats.pruned == 0

    def test_prune_before_drops_only_older_entries(self):
        journal = ReplayJournal.epoch_pruned()
        for t in (0.0, 1.0, 2.0, 3.0):
            journal.record("m1", f"e{t}", now=t)
        dropped = journal.prune_before(2.0)
        assert dropped == 2
        assert journal.stats.pruned == 2
        assert journal.take_for("m1", now=3.0) == ["e2.0", "e3.0"]

    def test_prune_before_on_empty_is_zero(self):
        assert ReplayJournal.epoch_pruned().prune_before(10.0) == 0

    def test_max_entries_still_bounds_memory(self):
        journal = ReplayJournal.epoch_pruned(max_entries=3)
        for i in range(5):
            journal.record("m1", i, now=float(i))
        assert len(journal) == 3
        assert journal.stats.pruned == 2

    def test_deduped_counter_starts_at_zero(self):
        assert ReplayJournal.epoch_pruned().stats.deduped == 0

    def test_horizon_none_accepted_zero_rejected(self):
        assert ReplayJournal(horizon_s=None).horizon_s is None
        with pytest.raises(ConfigurationError):
            ReplayJournal(horizon_s=0.0)


class TestMigrationHolds:
    """The prune-too-early window: entries a live handoff still needs
    must survive checkpoint-epoch prunes that fire mid-migration."""

    def test_hold_blocks_prune_before(self):
        journal = ReplayJournal.epoch_pruned()
        for t in (0.0, 1.0, 2.0, 3.0):
            journal.record("m1", f"e{t}", now=t)
        journal.hold("migration-1", since_ts=1.0)
        # A checkpoint barrier completing at t=3 would normally drop
        # everything before it; the hold caps the cutoff at 1.0.
        assert journal.prune_before(3.0) == 1
        assert journal.take_for("m1", now=3.0) == ["e1.0", "e2.0", "e3.0"]

    def test_release_reopens_pruning(self):
        journal = ReplayJournal.epoch_pruned()
        for t in (0.0, 1.0, 2.0):
            journal.record("m1", f"e{t}", now=t)
        journal.hold("migration-1", since_ts=0.0)
        assert journal.prune_before(10.0) == 0
        journal.release("migration-1")
        assert journal.prune_before(10.0) == 3

    def test_hold_clamps_time_horizon_too(self):
        journal = ReplayJournal(horizon_s=1.0)
        journal.record("m1", "old", now=0.0)
        journal.hold("migration-1", since_ts=0.0)
        journal.record("m1", "new", now=5.0)
        assert journal.take_for("m1", now=5.5) == ["old", "new"]

    def test_rehold_keeps_earlier_timestamp(self):
        journal = ReplayJournal.epoch_pruned()
        journal.record("m1", "a", now=0.0)
        journal.hold("migration-1", since_ts=0.0)
        journal.hold("migration-1", since_ts=5.0)  # resume re-drives hold
        assert journal.prune_before(10.0) == 0

    def test_release_unknown_token_is_idempotent(self):
        ReplayJournal.epoch_pruned().release("never-held")

    def test_readdress_rewrites_and_counts(self):
        journal = ReplayJournal.epoch_pruned()
        journal.record("m1", "a", now=0.0)
        journal.record("m2", "b", now=1.0)
        changed = journal.readdress(
            lambda dest, payload: "m9" if dest == "m1" else None)
        assert changed == 1
        assert journal.stats.readdressed == 1
        assert journal.take_for("m9", now=2.0) == ["a"]
        assert journal.take_for("m2", now=2.0) == ["b"]
