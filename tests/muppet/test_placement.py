"""Placement exploration (Section 5): traffic matrices and heuristics."""

import pytest

from repro.errors import ConfigurationError
from repro.muppet.placement import (FlowRecord, TrafficMatrix,
                                    evaluate_placement, greedy_placement,
                                    hash_placement)

MACHINES = ["m0", "m1", "m2", "m3"]


def skewed_matrix() -> TrafficMatrix:
    """Checkins arrive at m0; popular retailers dominate the traffic."""
    flows = [
        FlowRecord("m0", "U1", "Walmart", events=500, bytes_sent=50_000),
        FlowRecord("m0", "U1", "Best Buy", events=300, bytes_sent=30_000),
        FlowRecord("m0", "U1", "Target", events=100, bytes_sent=10_000),
        FlowRecord("m1", "U1", "Walmart", events=50, bytes_sent=5_000),
        FlowRecord("m2", "U1", "JCPenney", events=20, bytes_sent=2_000),
    ]
    return TrafficMatrix.from_flows(flows)


class TestTrafficMatrix:
    def test_aggregation(self):
        matrix = skewed_matrix()
        assert matrix.bytes_into(("U1", "Walmart")) == 55_000
        assert matrix.producers_of(("U1", "Walmart")) == {"m0": 50_000,
                                                          "m1": 5_000}
        assert matrix.total_bytes() == 97_000

    def test_record_api(self):
        matrix = TrafficMatrix()
        matrix.record("m0", "U1", "k", 100)
        matrix.record("m0", "U1", "k", 100)
        assert matrix.bytes_into(("U1", "k")) == 200

    def test_slots_sorted(self):
        matrix = skewed_matrix()
        assert matrix.slots() == sorted(matrix.slots())


class TestHashPlacement:
    def test_covers_all_slots(self):
        matrix = skewed_matrix()
        placement = hash_placement(matrix, MACHINES)
        assert set(placement) == set(matrix.slots())
        assert all(m in MACHINES for m in placement.values())

    def test_content_oblivious(self):
        """Hash placement ignores where traffic comes from."""
        placement = hash_placement(skewed_matrix(), MACHINES)
        flipped = TrafficMatrix.from_flows([
            FlowRecord("m3", "U1", key, 1, 1)
            for _, key in skewed_matrix().slots()])
        assert hash_placement(flipped, MACHINES) == placement

    def test_needs_machines(self):
        with pytest.raises(ConfigurationError):
            hash_placement(skewed_matrix(), [])


class TestGreedyPlacement:
    def test_reduces_cross_traffic_vs_hash(self):
        """The point of the exploration: locality cuts network bytes."""
        matrix = skewed_matrix()
        hash_cost = evaluate_placement(matrix,
                                       hash_placement(matrix, MACHINES))
        greedy_cost = evaluate_placement(matrix,
                                         greedy_placement(matrix,
                                                          MACHINES))
        assert greedy_cost.cross_machine_bytes < \
            hash_cost.cross_machine_bytes
        assert greedy_cost.locality > hash_cost.locality

    def test_load_cap_prevents_all_on_one_machine(self):
        """The paper's caveat: putting every popular slate on the ingest
        machine would melt it; the cap spreads the heavy slots."""
        matrix = skewed_matrix()
        capped = greedy_placement(matrix, MACHINES,
                                  max_load_fraction=0.6)
        cost = evaluate_placement(matrix, capped)
        assert cost.max_machine_share <= 0.65  # cap + rounding slack

    def test_uncapped_goes_fully_local(self):
        matrix = skewed_matrix()
        placement = greedy_placement(matrix, MACHINES,
                                     max_load_fraction=1.0)
        cost = evaluate_placement(matrix, placement)
        # Walmart/Best Buy/Target all co-locate with their m0 producer.
        assert placement[("U1", "Walmart")] == "m0"
        assert cost.locality > 0.9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            greedy_placement(skewed_matrix(), MACHINES,
                             max_load_fraction=0.0)


class TestDriftCaveat:
    def test_stale_placement_can_lose_to_hash(self):
        """'Muppet cannot even know whether perturbations in retailer
        popularity are transient spikes ... or changing trends': a
        placement tuned to yesterday's traffic does worse than its own
        promise when popularity flips."""
        yesterday = skewed_matrix()
        tuned = greedy_placement(yesterday, MACHINES,
                                 max_load_fraction=1.0)
        today = TrafficMatrix.from_flows([
            FlowRecord("m3", "U1", "Walmart", 500, 50_000),
            FlowRecord("m3", "U1", "Best Buy", 300, 30_000),
            FlowRecord("m3", "U1", "Target", 100, 10_000),
            FlowRecord("m3", "U1", "JCPenney", 20, 2_000),
        ])
        stale_cost = evaluate_placement(today, tuned)
        fresh_cost = evaluate_placement(
            today, greedy_placement(today, MACHINES,
                                    max_load_fraction=1.0))
        assert stale_cost.cross_machine_bytes > \
            fresh_cost.cross_machine_bytes
        assert stale_cost.locality < 0.2  # yesterday's locality is gone
