"""HTTP slate server: method handling, concurrency, lifecycle."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.muppet.http import SlateHTTPServer
from repro.muppet.local import LocalConfig, LocalMuppet
from tests.conftest import build_count_app, make_events


@pytest.fixture
def server_and_url():
    with LocalMuppet(build_count_app(),
                     LocalConfig(num_threads=2)) as runtime:
        runtime.ingest_many(make_events(20, keys=2))
        runtime.drain()
        with SlateHTTPServer(runtime) as server:
            yield server, f"http://127.0.0.1:{server.port}"


class TestHTTPEdgeCases:
    def test_post_not_supported(self, server_and_url):
        _, base = server_and_url
        request = urllib.request.Request(f"{base}/slate/U1/k0",
                                         data=b"{}", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 501  # stdlib: unsupported method

    def test_concurrent_fetches(self, server_and_url):
        """The 2.0 design serves slate reads from a thread pool."""
        _, base = server_and_url
        results = []
        errors = []

        def fetch():
            try:
                with urllib.request.urlopen(f"{base}/slate/U1/k0",
                                            timeout=5) as response:
                    results.append(json.loads(response.read()))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 8
        assert all(r["slate"]["count"] == 10 for r in results)

    def test_trailing_slash_tolerated(self, server_and_url):
        _, base = server_and_url
        with urllib.request.urlopen(f"{base}/slate/U1/k0/",
                                    timeout=5) as response:
            assert response.status == 200

    def test_server_stop_is_idempotent(self):
        with LocalMuppet(build_count_app()) as runtime:
            server = SlateHTTPServer(runtime).start()
            server.stop()
            server.stop()  # no error

    def test_port_zero_binds_ephemeral(self):
        with LocalMuppet(build_count_app()) as runtime:
            with SlateHTTPServer(runtime, port=0) as server:
                assert server.port > 0
