"""Two-choice dispatch: the Section 4.5 queue-selection rules."""

import pytest

from repro.errors import ConfigurationError
from repro.muppet.dispatch import SingleChoiceDispatcher, TwoChoiceDispatcher


def idle(n):
    return [None] * n


class TestCandidates:
    def test_primary_secondary_distinct(self):
        dispatcher = TwoChoiceDispatcher(num_threads=8)
        for i in range(50):
            primary, secondary = dispatcher.candidates(f"k{i}", "U1")
            assert primary != secondary
            assert 0 <= primary < 8 and 0 <= secondary < 8

    def test_candidates_stable(self):
        dispatcher = TwoChoiceDispatcher(num_threads=8)
        assert dispatcher.candidates("k", "U1") == \
            dispatcher.candidates("k", "U1")

    def test_depend_on_function_too(self):
        """Hashing is by <event key, destination updater> (Section 4.5)."""
        dispatcher = TwoChoiceDispatcher(num_threads=64)
        pairs = {dispatcher.candidates("k", f"U{i}") for i in range(20)}
        assert len(pairs) > 1

    def test_single_thread_degenerate(self):
        dispatcher = TwoChoiceDispatcher(num_threads=1)
        assert dispatcher.candidates("k", "U") == (0, 0)
        assert dispatcher.choose("k", "U", [0], idle(1)) == 0


class TestChoiceRules:
    def test_default_goes_to_primary(self):
        dispatcher = TwoChoiceDispatcher(num_threads=4)
        primary, _ = dispatcher.candidates("k", "U")
        assert dispatcher.choose("k", "U", [0, 0, 0, 0], idle(4)) == primary

    def test_affinity_to_thread_processing_same_key(self):
        """'If the thread for either queue is already processing this
        event key for this update function, then the event is placed in
        the corresponding queue.'"""
        dispatcher = TwoChoiceDispatcher(num_threads=4)
        primary, secondary = dispatcher.candidates("k", "U")
        processing = idle(4)
        processing[secondary] = ("k", "U")
        lengths = [0, 0, 0, 0]
        assert dispatcher.choose("k", "U", lengths, processing) == secondary
        assert dispatcher.stats.affinity_hits == 1

    def test_primary_affinity_beats_secondary_shortness(self):
        dispatcher = TwoChoiceDispatcher(num_threads=4)
        primary, secondary = dispatcher.candidates("k", "U")
        processing = idle(4)
        processing[primary] = ("k", "U")
        lengths = [0] * 4
        lengths[primary] = 100  # long, but affinity wins
        assert dispatcher.choose("k", "U", lengths, processing) == primary

    def test_spill_to_significantly_shorter_secondary(self):
        dispatcher = TwoChoiceDispatcher(num_threads=4,
                                         significant_factor=2.0)
        primary, secondary = dispatcher.candidates("k", "U")
        lengths = [0] * 4
        lengths[primary] = 10
        lengths[secondary] = 1
        assert dispatcher.choose("k", "U", lengths, idle(4)) == secondary
        assert dispatcher.stats.spills == 1

    def test_mildly_shorter_secondary_not_chosen(self):
        dispatcher = TwoChoiceDispatcher(num_threads=4,
                                         significant_factor=2.0)
        primary, secondary = dispatcher.candidates("k", "U")
        lengths = [0] * 4
        lengths[primary] = 3
        lengths[secondary] = 2
        assert dispatcher.choose("k", "U", lengths, idle(4)) == primary

    def test_at_most_two_queues_locked_per_dispatch(self):
        """Section 4.5: 'an incoming event locks no more than two
        queues ... regardless of the number of threads'."""
        dispatcher = TwoChoiceDispatcher(num_threads=32)
        for i in range(100):
            dispatcher.choose(f"k{i}", "U", [0] * 32, idle(32))
        assert dispatcher.stats.queue_locks <= 2 * 100

    def test_events_never_scatter_past_two_threads(self):
        """Slate contention is bounded at two workers per key."""
        dispatcher = TwoChoiceDispatcher(num_threads=16)
        destinations = set()
        for trial in range(200):
            lengths = [trial % 7] * 16
            lengths[trial % 16] = trial  # vary load wildly
            destinations.add(
                dispatcher.choose("hotkey", "U", lengths, idle(16)))
        assert len(destinations) <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoChoiceDispatcher(num_threads=0)
        with pytest.raises(ConfigurationError):
            TwoChoiceDispatcher(num_threads=2, significant_factor=0.5)


class TestSingleChoice:
    def test_one_owner_per_key(self):
        """Muppet 1.0: 'only one worker can process events of the same
        key for a particular update function'."""
        dispatcher = SingleChoiceDispatcher(num_threads=8)
        choices = {dispatcher.choose("k", "U", [0] * 8, idle(8))
                   for _ in range(50)}
        assert len(choices) == 1

    def test_ignores_load(self):
        dispatcher = SingleChoiceDispatcher(num_threads=8)
        owner = dispatcher.choose("k", "U", [0] * 8, idle(8))
        lengths = [0] * 8
        lengths[owner] = 10_000  # overloaded, but still the only owner
        assert dispatcher.choose("k", "U", lengths, idle(8)) == owner

    def test_one_lock_per_dispatch(self):
        dispatcher = SingleChoiceDispatcher(num_threads=8)
        dispatcher.choose("k", "U", [0] * 8, idle(8))
        assert dispatcher.stats.queue_locks == 1


class TestMemoization:
    """The candidate memo caches pure hashes — identical routing with it
    on or off, and hits only ever skip digests, never change answers."""

    def test_two_choice_memo_matches_cold(self):
        memo = TwoChoiceDispatcher(num_threads=8, memoize=True)
        cold = TwoChoiceDispatcher(num_threads=8, memoize=False)
        for i in range(300):
            key = f"k{i % 100}"
            assert memo.candidates(key, "U1") == cold.candidates(key, "U1")

    def test_single_choice_memo_matches_cold(self):
        memo = SingleChoiceDispatcher(num_threads=8, memoize=True)
        cold = SingleChoiceDispatcher(num_threads=8, memoize=False)
        for i in range(300):
            key = f"k{i % 100}"
            assert (memo.choose(key, "U1", [0] * 8, idle(8))
                    == cold.choose(key, "U1", [0] * 8, idle(8)))

    def test_memo_counters(self):
        dispatcher = TwoChoiceDispatcher(num_threads=8, memoize=True)
        for _ in range(3):
            for i in range(50):
                dispatcher.candidates(f"k{i}", "U1")
        assert dispatcher.stats.memo_misses == 50
        assert dispatcher.stats.memo_hits == 100

    def test_unmemoized_counts_nothing(self):
        dispatcher = TwoChoiceDispatcher(num_threads=8, memoize=False)
        for _ in range(3):
            dispatcher.candidates("k", "U1")
        assert dispatcher.stats.memo_hits == 0
        assert dispatcher.stats.memo_misses == 0

    def test_memo_distinguishes_functions(self):
        dispatcher = TwoChoiceDispatcher(num_threads=8, memoize=True)
        pair_u1 = dispatcher.candidates("k", "U1")
        pair_u2 = dispatcher.candidates("k", "U2")
        cold = TwoChoiceDispatcher(num_threads=8, memoize=False)
        assert pair_u1 == cold.candidates("k", "U1")
        assert pair_u2 == cold.candidates("k", "U2")
