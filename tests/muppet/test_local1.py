"""LocalMuppet1: the real-thread Muppet 1.0 runtime."""

import pytest

from repro.core import Event
from repro.errors import EngineStoppedError
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.muppet.local1 import Local1Config, LocalMuppet1
from repro.workloads import CheckinGenerator
from repro.apps import build_retailer_app
from tests.conftest import build_count_app, build_two_stage_app, make_events


class TestBasicExecution:
    def test_counts_match_input(self):
        with LocalMuppet1(build_count_app(),
                          Local1Config(workers_per_function=2)) as runtime:
            runtime.ingest_many(make_events(100, keys=4))
            assert runtime.drain()
            for key in ("k0", "k1", "k2", "k3"):
                assert runtime.read_slate("U1", key)["count"] == 25

    def test_two_stage_pipeline(self):
        with LocalMuppet1(build_two_stage_app()) as runtime:
            runtime.ingest_many(make_events(40, keys=2))
            assert runtime.drain()
            assert runtime.read_slate("U2", "k0")["count"] == 20

    def test_retailer_app_matches_truth(self):
        events, truth = CheckinGenerator(seed=301).take_with_truth(600)
        with LocalMuppet1(build_retailer_app(),
                          Local1Config(workers_per_function=3)) as runtime:
            runtime.ingest_many(events)
            assert runtime.drain()
            got = {k: v["count"]
                   for k, v in runtime.read_slates_of("U1").items()}
        assert got == truth

    def test_agrees_with_muppet2_runtime(self):
        """The same app gives the same slates on the 1.0 and 2.0
        real-thread runtimes — the paper's apps ran on both unchanged."""
        events = make_events(200, keys=8)
        with LocalMuppet1(build_count_app()) as runtime1:
            runtime1.ingest_many(list(events))
            assert runtime1.drain()
            counts1 = {k: v["count"]
                       for k, v in runtime1.read_slates_of("U1").items()}
        with LocalMuppet(build_count_app(),
                         LocalConfig(num_threads=4)) as runtime2:
            runtime2.ingest_many(list(events))
            assert runtime2.drain()
            counts2 = {k: v["count"]
                       for k, v in runtime2.read_slates_of("U1").items()}
        assert counts1 == counts2


class TestArchitecture10:
    def test_single_owner_per_key(self):
        """All events of one key land on one worker's private cache."""
        with LocalMuppet1(build_count_app(),
                          Local1Config(workers_per_function=4)) as runtime:
            runtime.ingest_many(make_events(60, keys=1))
            assert runtime.drain()
            holders = [
                worker.wid for worker in runtime._workers.values()
                if worker.function == "U1"
                and len(worker.manager.cache)]
            assert len(holders) == 1

    def test_ipc_bytes_are_real(self):
        """Events and slates genuinely cross the conductor pipe."""
        with LocalMuppet1(build_count_app()) as runtime:
            runtime.ingest_many(make_events(50, keys=5))
            assert runtime.drain()
            stats = runtime.ipc_stats()
        # 50 map + 50 update round-trips.
        assert stats.frames_to_task == 100
        assert stats.frames_to_conductor == 100
        assert stats.total_bytes > 100 * 40  # real serialized frames

    def test_fragmented_caches_per_worker(self):
        config = Local1Config(workers_per_function=2,
                              cache_slates_total=8)
        with LocalMuppet1(build_count_app(), config) as runtime:
            updater_workers = [w for w in runtime._workers.values()
                               if w.function == "U1"]
            # 8 total slots / (2 functions x 2 workers) = 2 per worker.
            assert all(w.manager.cache.capacity == 2
                       for w in updater_workers)

    def test_restart_rejected(self):
        runtime = LocalMuppet1(build_count_app()).start()
        runtime.stop()
        with pytest.raises(EngineStoppedError):
            runtime.start()

    def test_latency_recorded(self):
        with LocalMuppet1(build_count_app()) as runtime:
            runtime.ingest_many(make_events(30))
            assert runtime.drain()
            assert runtime.latency.summary().count == 30


class TestTimersOn10Runtime:
    def test_windowed_app_produces_counts(self):
        """Timer callbacks round-trip through the conductor pipe too."""
        from repro.apps import build_hot_topics_app

        import json

        def tweet(topic, ts):
            return Event("S1", ts, "u1",
                         json.dumps({"user": "u1", "topics": [topic]}))

        app = build_hot_topics_app(window_s=60.0, with_sink=False)
        events = [tweet("sports", float(t)) for t in (0, 10, 20)]
        events.append(tweet("sports", 120.0))
        with LocalMuppet1(app) as runtime:
            runtime.ingest_many(events)
            assert runtime.drain()
            # U2 received the closed window's count: total_count == 3
            # for the first minute's key plus 1 for the second window.
            slates = runtime.read_slates_of("U2")
        assert slates["sports|0"]["total_count"] == 3
        assert slates["sports|2"]["total_count"] == 1
