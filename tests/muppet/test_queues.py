"""Bounded queues, overflow policies, and the source throttle."""

import pytest

from repro.errors import ConfigurationError
from repro.muppet.queues import BoundedQueue, OverflowPolicy, SourceThrottle


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = BoundedQueue(max_size=10)
        for i in range(3):
            queue.offer(i)
        assert [queue.poll() for _ in range(3)] == [0, 1, 2]

    def test_declines_when_full(self):
        """Section 4.3: a full queue declines the event."""
        queue = BoundedQueue(max_size=2)
        assert queue.offer(1) and queue.offer(2)
        assert not queue.offer(3)
        assert queue.stats.rejected == 1
        assert len(queue) == 2

    def test_poll_empty_returns_none(self):
        assert BoundedQueue().poll() is None

    def test_peek_does_not_remove(self):
        queue = BoundedQueue()
        queue.offer("x")
        assert queue.peek() == "x"
        assert len(queue) == 1

    def test_unbounded_mode(self):
        queue = BoundedQueue(max_size=None)
        for i in range(100_000):
            assert queue.offer(i)
        assert not queue.full

    def test_peak_depth_tracked(self):
        queue = BoundedQueue(max_size=10)
        for i in range(7):
            queue.offer(i)
        for _ in range(7):
            queue.poll()
        assert queue.stats.peak_depth == 7

    def test_drain_returns_and_clears(self):
        """Machine failure: 'all events in its queue are also lost'."""
        queue = BoundedQueue()
        for i in range(5):
            queue.offer(i)
        lost = queue.drain()
        assert lost == [0, 1, 2, 3, 4]
        assert len(queue) == 0

    def test_invalid_max_size(self):
        with pytest.raises(ConfigurationError):
            BoundedQueue(max_size=0)


class TestOverflowPolicy:
    def test_drop_policy(self):
        assert OverflowPolicy.drop().kind == "drop"

    def test_divert_requires_stream(self):
        policy = OverflowPolicy.divert("S_overflow")
        assert policy.overflow_sid == "S_overflow"
        with pytest.raises(ConfigurationError):
            OverflowPolicy(kind="divert")

    def test_throttle_policy(self):
        assert OverflowPolicy.throttle().kind == "throttle"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            OverflowPolicy(kind="explode")


class TestSourceThrottle:
    def test_pauses_at_high_watermark(self):
        throttle = SourceThrottle(high_watermark=0.9, low_watermark=0.5)
        assert not throttle.observe(0.5, now=0.0)
        assert throttle.observe(0.95, now=1.0)
        assert throttle.paused

    def test_hysteresis_resume_below_low_watermark(self):
        throttle = SourceThrottle(high_watermark=0.9, low_watermark=0.5)
        throttle.observe(0.95, now=0.0)
        assert throttle.observe(0.7, now=1.0)   # still paused in between
        assert not throttle.observe(0.4, now=2.0)

    def test_paused_time_accounted(self):
        throttle = SourceThrottle()
        throttle.observe(0.95, now=10.0)
        throttle.observe(0.1, now=13.5)
        assert throttle.paused_time_s == pytest.approx(3.5)
        assert throttle.pause_count == 1

    def test_finish_closes_open_interval(self):
        throttle = SourceThrottle()
        throttle.observe(0.95, now=0.0)
        throttle.finish(now=2.0)
        assert throttle.paused_time_s == pytest.approx(2.0)

    def test_watermark_validation(self):
        with pytest.raises(ConfigurationError):
            SourceThrottle(high_watermark=0.5, low_watermark=0.9)


class TestStrictPut:
    """put(): strict enqueue for callers with no overflow mechanism."""

    def test_put_enqueues_like_offer(self):
        from repro.errors import QueueOverflowError

        queue = BoundedQueue(max_size=2)
        queue.put("a")
        queue.put("b")
        assert len(queue) == 2
        with pytest.raises(QueueOverflowError, match="no overflow policy"):
            queue.put("c")
        # The decline is still accounted like an offer() decline.
        assert queue.stats.rejected == 1
        assert len(queue) == 2

    def test_put_unbounded_never_raises(self):
        queue = BoundedQueue(max_size=None)
        for i in range(10_000):
            queue.put(i)
        assert len(queue) == 10_000


class TestThrottleFinish:
    def test_finish_is_idempotent(self):
        throttle = SourceThrottle()
        throttle.observe(0.95, now=0.0)
        throttle.finish(now=2.0)
        throttle.finish(now=5.0)      # second close must not re-count
        assert throttle.paused_time_s == pytest.approx(2.0)

    def test_finish_without_open_interval_is_a_noop(self):
        throttle = SourceThrottle()
        throttle.finish(now=3.0)
        assert throttle.paused_time_s == 0.0
