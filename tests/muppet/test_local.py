"""LocalMuppet: the real-thread single-machine runtime."""

import threading

import pytest

from repro.core import Application, Event
from repro.errors import EngineStoppedError, WorkflowError
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.muppet.queues import OverflowPolicy
from repro.slates.manager import FlushPolicy
from tests.conftest import (CountingUpdater, EchoMapper, build_count_app,
                            make_events)


def run_app(app, events, config=None):
    with LocalMuppet(app, config or LocalConfig(num_threads=4)) as runtime:
        runtime.ingest_many(events)
        assert runtime.drain()
        return runtime, {
            key: slate
            for spec in app.updaters()
            for key, slate in runtime.read_slates_of(spec.name).items()
        }


class TestBasicExecution:
    def test_counts_match_input(self, count_app):
        runtime, _ = (None, None)
        with LocalMuppet(count_app) as runtime:
            runtime.ingest_many(make_events(100, keys=4))
            assert runtime.drain()
            for key in ("k0", "k1", "k2", "k3"):
                assert runtime.read_slate("U1", key)["count"] == 25

    def test_two_stage_pipeline(self, two_stage_app):
        with LocalMuppet(two_stage_app) as runtime:
            runtime.ingest_many(make_events(40, keys=2))
            assert runtime.drain()
            assert runtime.read_slate("U2", "k0")["count"] == 20
            assert runtime.read_slate("U1", "k1")["count"] == 20

    def test_single_thread_matches_multi_thread(self, ):
        events = make_events(200, keys=10)
        _, single = run_app(build_count_app(), events,
                            LocalConfig(num_threads=1))
        _, multi = run_app(build_count_app(), events,
                           LocalConfig(num_threads=8))
        assert single == multi

    def test_counters(self, count_app):
        with LocalMuppet(count_app) as runtime:
            runtime.ingest_many(make_events(10))
            runtime.drain()
            snap = runtime.counters.snapshot()
            assert snap["published"] == 20
            assert snap["processed"] == 20

    def test_latency_recorded(self, count_app):
        with LocalMuppet(count_app) as runtime:
            runtime.ingest_many(make_events(20))
            runtime.drain()
            summary = runtime.latency.summary()
            assert summary.count == 20
            assert summary.p99 < 5.0  # sanity: well under 2 s bound


class TestLifecycle:
    def test_ingest_before_start_rejected(self, count_app):
        runtime = LocalMuppet(count_app)
        with pytest.raises(EngineStoppedError):
            runtime.ingest(Event("S1", 0.0, "k"))

    def test_restart_rejected(self, count_app):
        runtime = LocalMuppet(count_app).start()
        runtime.stop()
        with pytest.raises(EngineStoppedError):
            runtime.start()

    def test_stop_flushes_dirty_slates(self, count_app):
        runtime = LocalMuppet(count_app, LocalConfig(
            flush_policy=FlushPolicy.every(3600.0))).start()
        runtime.ingest_many(make_events(10, keys=1))
        runtime.drain()
        store = runtime.store
        runtime.stop()
        result = store.read("k0", "U1")
        assert result.value is not None

    def test_ingest_to_internal_stream_rejected(self, count_app):
        with LocalMuppet(count_app) as runtime:
            with pytest.raises(WorkflowError, match="external"):
                runtime.ingest(Event("S2", 0.0, "k"))


class TestSlateReads:
    def test_read_slate_prefers_fresh_cache(self, count_app):
        """Section 4.4: reads come from the cache, not the stale store."""
        config = LocalConfig(flush_policy=FlushPolicy.every(3600.0))
        with LocalMuppet(count_app, config) as runtime:
            runtime.ingest_many(make_events(10, keys=1))
            runtime.drain()
            # Store has nothing yet (interval flush far away)...
            assert runtime.store.read("k0", "U1").value is None
            # ...but the HTTP-style read sees the live value.
            assert runtime.read_slate("U1", "k0")["count"] == 10

    def test_read_missing_slate_is_none(self, count_app):
        with LocalMuppet(count_app) as runtime:
            assert runtime.read_slate("U1", "ghost") is None

    def test_status_shape(self, count_app):
        with LocalMuppet(count_app, LocalConfig(num_threads=3)) as runtime:
            status = runtime.status()
            assert len(status["queues"]) == 3
            assert status["running"]
            assert "counters" in status


class TestOverflow:
    def test_drop_policy_loses_events_under_pressure(self, count_app):
        config = LocalConfig(num_threads=1, queue_capacity=5,
                             overflow=OverflowPolicy.drop())
        with LocalMuppet(count_app, config) as runtime:
            runtime.ingest_many(make_events(500, keys=1), block=False)
            runtime.drain()
            snap = runtime.counters.snapshot()
            counted = runtime.read_slate("U1", "k0")["count"]
            assert snap["dropped_overflow"] > 0
            assert counted + snap["dropped_overflow"] >= 500

    def test_throttle_policy_loses_nothing(self, count_app):
        """Source throttling trades latency for completeness (§5)."""
        config = LocalConfig(num_threads=1, queue_capacity=5,
                             overflow=OverflowPolicy.throttle())
        with LocalMuppet(count_app, config) as runtime:
            runtime.ingest_many(make_events(300, keys=1), block=True)
            runtime.drain()
            assert runtime.read_slate("U1", "k0")["count"] == 300
            assert runtime.counters.dropped_overflow == 0


class TestDivertOverflow:
    def test_diverted_events_reach_degraded_path(self):
        app = Application("degraded")
        app.add_stream("S1", external=True)
        app.add_stream("S2")
        app.add_stream("S_overflow", overflow=True)
        app.add_mapper("M1", EchoMapper, subscribes=["S1"],
                       publishes=["S2"])
        app.add_updater("U1", CountingUpdater, subscribes=["S2"])
        app.add_updater("U_cheap", CountingUpdater,
                        subscribes=["S_overflow"])
        config = LocalConfig(num_threads=1, queue_capacity=4,
                             overflow=OverflowPolicy.divert("S_overflow"))
        with LocalMuppet(app, config) as runtime:
            runtime.ingest_many(make_events(400, keys=1), block=False)
            runtime.drain()
            main = runtime.read_slate("U1", "k0")["count"]
            assert main > 0


class TestConcurrencySafety:
    def test_parallel_ingest_threads(self, count_app):
        with LocalMuppet(count_app, LocalConfig(num_threads=4)) as runtime:
            def feed(offset):
                for i in range(100):
                    runtime.ingest(Event("S1", float(offset * 100 + i),
                                         key=f"k{i % 3}"))

            threads = [threading.Thread(target=feed, args=(j,))
                       for j in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert runtime.drain()
            total = sum(runtime.read_slate("U1", f"k{i}")["count"]
                        for i in range(3))
            assert total == 400
