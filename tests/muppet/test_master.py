"""The failure master: reports, broadcasts, duplicate absorption."""

from repro.muppet.master import Master


class TestMaster:
    def test_first_report_broadcasts(self):
        master = Master()
        heard = []
        master.subscribe(heard.append)
        master.subscribe(heard.append)  # two workers listening
        assert master.report_failure("m3")
        assert heard == ["m3", "m3"]
        assert master.stats.broadcasts_sent == 1

    def test_duplicate_reports_absorbed(self):
        """Many workers notice the same dead machine; one broadcast."""
        master = Master()
        heard = []
        master.subscribe(heard.append)
        master.report_failure("m3")
        assert not master.report_failure("m3")
        assert not master.report_failure("m3")
        assert heard == ["m3"]
        assert master.stats.duplicate_reports == 2
        assert master.stats.reports_received == 3

    def test_failed_machines_set(self):
        master = Master()
        master.report_failure("a")
        master.report_failure("b")
        assert master.failed_machines() == {"a", "b"}

    def test_forget_restores(self):
        master = Master()
        master.report_failure("a")
        master.forget("a")
        assert master.failed_machines() == set()
        assert master.report_failure("a")  # news again

    def test_no_listeners_is_fine(self):
        assert Master().report_failure("m")
