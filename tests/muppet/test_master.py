"""The failure master: reports, broadcasts, duplicate absorption."""

from repro.muppet.master import Master


class TestMaster:
    def test_first_report_broadcasts(self):
        master = Master()
        heard = []
        master.subscribe(heard.append)
        master.subscribe(heard.append)  # two workers listening
        assert master.report_failure("m3")
        assert heard == ["m3", "m3"]
        assert master.stats.broadcasts_sent == 1

    def test_duplicate_reports_absorbed(self):
        """Many workers notice the same dead machine; one broadcast."""
        master = Master()
        heard = []
        master.subscribe(heard.append)
        master.report_failure("m3")
        assert not master.report_failure("m3")
        assert not master.report_failure("m3")
        assert heard == ["m3"]
        assert master.stats.duplicate_reports == 2
        assert master.stats.reports_received == 3

    def test_failed_machines_set(self):
        master = Master()
        master.report_failure("a")
        master.report_failure("b")
        assert master.failed_machines() == {"a", "b"}

    def test_forget_restores(self):
        master = Master()
        master.report_failure("a")
        master.forget("a")
        assert master.failed_machines() == set()
        assert master.report_failure("a")  # news again

    def test_no_listeners_is_fine(self):
        assert Master().report_failure("m")


class TestMasterRecovery:
    """The symmetric path: a revived machine reports back in."""

    def test_recovery_broadcasts_to_subscribers(self):
        master = Master()
        heard = []
        master.subscribe_recovery(heard.append)
        master.subscribe_recovery(heard.append)
        master.report_failure("m3")
        assert master.report_recovery("m3")
        assert heard == ["m3", "m3"]
        assert master.stats.recovery_reports == 1
        assert master.stats.recovery_broadcasts == 1
        assert master.failed_machines() == set()

    def test_recovery_of_unknown_machine_absorbed(self):
        """A recovery report for a machine never (or no longer) marked
        failed is a duplicate — counted, not broadcast."""
        master = Master()
        heard = []
        master.subscribe_recovery(heard.append)
        assert not master.report_recovery("m9")
        master.report_failure("m3")
        master.report_recovery("m3")
        assert not master.report_recovery("m3")  # second report: stale
        assert heard == ["m3"]
        assert master.stats.recovery_broadcasts == 1
        assert master.stats.duplicate_recovery_reports == 2

    def test_fail_recover_fail_cycles(self):
        """After recovery the machine is news again if it dies again."""
        master = Master()
        master.report_failure("m3")
        master.report_recovery("m3")
        assert master.report_failure("m3")
        assert master.stats.broadcasts_sent == 2

    def test_failure_listeners_not_called_on_recovery(self):
        master = Master()
        failures, recoveries = [], []
        master.subscribe(failures.append)
        master.subscribe_recovery(recoveries.append)
        master.report_failure("m3")
        master.report_recovery("m3")
        assert failures == ["m3"]
        assert recoveries == ["m3"]
