"""Workflow graphs: construction, introspection, validation rules."""

import pytest

from repro.core.application import Application
from repro.errors import WorkflowError
from tests.conftest import CountingUpdater, EchoMapper, ForwardingUpdater


def minimal_app() -> Application:
    app = Application("t")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", EchoMapper, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", CountingUpdater, subscribes=["S2"])
    return app


class TestConstruction:
    def test_valid_app_validates(self):
        assert minimal_app().validate() is not None

    def test_duplicate_operator_name_rejected(self):
        app = minimal_app()
        with pytest.raises(WorkflowError, match="duplicate"):
            app.add_mapper("M1", EchoMapper, subscribes=["S1"])

    def test_operator_must_subscribe_to_something(self):
        app = minimal_app()
        with pytest.raises(WorkflowError, match="subscribes to nothing"):
            app.add_mapper("M2", EchoMapper, subscribes=[])

    def test_prebuilt_instance_is_shared(self):
        app = Application("t")
        app.add_stream("S1", external=True)
        instance = CountingUpdater(name="U1")
        spec = app.add_updater("U1", instance, subscribes=["S1"])
        assert spec.instantiate() is spec.instantiate() is instance

    def test_class_factory_makes_fresh_instances(self):
        spec = minimal_app().operator("U1")
        assert spec.instantiate() is not spec.instantiate()

    def test_factory_kind_mismatch_detected(self):
        app = Application("t")
        app.add_stream("S1", external=True)
        app.add_mapper("M1", CountingUpdater, subscribes=["S1"])  # wrong kind
        with pytest.raises(WorkflowError, match="factory produced"):
            app.operator("M1").instantiate()

    def test_instances_receive_config_and_name(self):
        app = Application("t")
        app.add_stream("S1", external=True)
        app.add_updater("U9", CountingUpdater, subscribes=["S1"],
                        config={"slate_ttl": 5.0})
        instance = app.operator("U9").instantiate()
        assert instance.get_name() == "U9"
        assert instance.slate_ttl == 5.0


class TestIntrospection:
    def test_subscribers_and_publishers(self):
        app = minimal_app()
        assert [s.name for s in app.subscribers_of("S2")] == ["U1"]
        assert [s.name for s in app.publishers_of("S2")] == ["M1"]
        assert app.subscribers_of("S1")[0].name == "M1"

    def test_mappers_updaters_partition(self):
        app = minimal_app()
        assert [s.name for s in app.mappers()] == ["M1"]
        assert [s.name for s in app.updaters()] == ["U1"]

    def test_unknown_operator_raises(self):
        with pytest.raises(WorkflowError, match="unknown operator"):
            minimal_app().operator("nope")

    def test_to_networkx_structure(self):
        graph = minimal_app().to_networkx()
        assert graph.has_edge("stream:S1", "M1")
        assert graph.has_edge("M1", "stream:S2")
        assert graph.has_edge("stream:S2", "U1")

    def test_acyclic_app_has_no_cycle(self):
        assert not minimal_app().has_cycle()

    def test_cycle_allowed_and_detected(self):
        """Section 3: the workflow graph is 'directed ... allowing cycles'."""
        app = Application("loop")
        app.add_stream("S1", external=True)
        app.add_stream("S2")
        app.add_updater("U1", ForwardingUpdater, subscribes=["S1", "S2"],
                        publishes=["S2"], config={"output_sid": "S2"})
        app.validate()
        assert app.has_cycle()


class TestValidation:
    def test_no_operators_rejected(self):
        app = Application("t")
        app.add_stream("S1", external=True)
        with pytest.raises(WorkflowError, match="no operators"):
            app.validate()

    def test_no_external_stream_rejected(self):
        app = Application("t")
        app.add_stream("S2")
        app.add_updater("U1", CountingUpdater, subscribes=["S2"])
        with pytest.raises(WorkflowError, match="no external stream"):
            app.validate()

    def test_undeclared_stream_reference_rejected(self):
        app = Application("t")
        app.add_stream("S1", external=True)
        app.add_mapper("M1", EchoMapper, subscribes=["S1"],
                       publishes=["S9"])
        with pytest.raises(WorkflowError, match="undeclared"):
            app.validate()

    def test_publishing_into_external_stream_rejected(self):
        app = Application("t")
        app.add_stream("S1", external=True)
        app.add_mapper("M1", EchoMapper, subscribes=["S1"],
                       publishes=["S1"])
        with pytest.raises(WorkflowError, match="input-only"):
            app.validate()

    def test_orphan_internal_stream_rejected(self):
        app = Application("t")
        app.add_stream("S1", external=True)
        app.add_stream("S2")  # nobody publishes S2
        app.add_updater("U1", CountingUpdater, subscribes=["S2"])
        with pytest.raises(WorkflowError, match="no publisher"):
            app.validate()

    def test_mark_output_requires_known_stream(self):
        app = minimal_app()
        app.mark_output("S2")
        assert app.output_sids == ["S2"]
        with pytest.raises(WorkflowError):
            app.mark_output("S77")
