"""Reference executor: exact Section 3 semantics."""

import pytest

from repro.core import Application, Event, Mapper, ReferenceExecutor, Updater
from repro.errors import SimulationError, WorkflowError
from tests.conftest import (CountingUpdater, build_count_app,
                            build_two_stage_app, make_events)


class TestBasicExecution:
    def test_counts_per_key(self):
        result = ReferenceExecutor(build_count_app()).run(
            make_events(20, keys=4))
        for key in ("k0", "k1", "k2", "k3"):
            assert result.slate("U1", key)["count"] == 5

    def test_two_stage_pipeline(self):
        result = ReferenceExecutor(build_two_stage_app()).run(
            make_events(10, keys=2))
        assert result.slate("U2", "k0")["count"] == 5
        assert result.slate("U1", "k1")["count"] == 5

    def test_stream_logs_are_recorded(self):
        result = ReferenceExecutor(build_count_app()).run(make_events(3))
        assert len(result.events_on("S1")) == 3
        assert len(result.events_on("S2")) == 3
        assert result.events_on("S_unknown") == []

    def test_missing_slate_is_none(self):
        result = ReferenceExecutor(build_count_app()).run(make_events(1))
        assert result.slate("U1", "never-seen") is None

    def test_counters(self):
        result = ReferenceExecutor(build_count_app()).run(make_events(5))
        assert result.counters.published == 10  # 5 source + 5 mapped
        assert result.counters.processed == 10  # 5 map + 5 update calls


class TestOrderingSemantics:
    def test_events_processed_in_global_timestamp_order(self):
        """Out-of-order input must still be fed in timestamp order."""
        seen = []

        class Recorder(Updater):
            def update(self, ctx, event, slate):
                seen.append(event.key)

        app = Application("order")
        app.add_stream("S1", external=True)
        app.add_updater("U1", Recorder, subscribes=["S1"])
        events = [Event("S1", 3.0, "c"), Event("S1", 1.0, "a"),
                  Event("S1", 2.0, "b")]
        ReferenceExecutor(app).run(events)
        assert seen == ["a", "b", "c"]

    def test_two_stream_merge_order(self):
        """The paper's 21:23/21:25 example: lower ts first across streams."""
        seen = []

        class Recorder(Mapper):
            def map(self, ctx, event):
                seen.append((event.sid, event.key))

        app = Application("merge")
        app.add_stream("A", external=True)
        app.add_stream("B", external=True)
        app.add_mapper("M", Recorder, subscribes=["A", "B"])
        ReferenceExecutor(app).run([Event("B", 21 * 60 + 25.0, "f"),
                                    Event("A", 21 * 60 + 23.0, "e")])
        assert seen == [("A", "e"), ("B", "f")]

    def test_determinism_across_runs(self):
        events = make_events(50, keys=7)
        r1 = ReferenceExecutor(build_two_stage_app()).run(list(events))
        r2 = ReferenceExecutor(build_two_stage_app()).run(list(events))
        assert r1.slate_update_log == r2.slate_update_log
        assert {k: s.as_dict() for k, s in r1.slates.items()} == \
            {k: s.as_dict() for k, s in r2.slates.items()}

    def test_slate_update_log_records_every_update(self):
        result = ReferenceExecutor(build_count_app()).run(make_events(4))
        assert len(result.slate_update_log) == 4
        counts = [snap["count"] for _, snap in result.slate_update_log]
        assert all(c >= 1 for c in counts)


class TestCycles:
    def test_cyclic_workflow_terminates_when_bounded(self):
        class DecayLoop(Updater):
            """Re-publishes n-1 for each event with value n > 0."""

            def init_slate(self, key):
                return {"iterations": 0}

            def update(self, ctx, event, slate):
                slate["iterations"] += 1
                if event.value and event.value > 0:
                    ctx.publish("LOOP", event.key, event.value - 1)

        app = Application("loop")
        app.add_stream("S1", external=True)
        app.add_stream("LOOP")
        app.add_updater("U1", DecayLoop, subscribes=["S1", "LOOP"],
                        publishes=["LOOP"])
        result = ReferenceExecutor(app).run([Event("S1", 0.0, "k", 5)])
        assert result.slate("U1", "k")["iterations"] == 6  # 5,4,3,2,1,0

    def test_runaway_loop_hits_max_events(self):
        class Forever(Updater):
            def update(self, ctx, event, slate):
                ctx.publish("LOOP", event.key, None)

        app = Application("forever")
        app.add_stream("S1", external=True)
        app.add_stream("LOOP")
        app.add_updater("U1", Forever, subscribes=["S1", "LOOP"],
                        publishes=["LOOP"])
        with pytest.raises(SimulationError, match="max_events"):
            ReferenceExecutor(app, max_events=100).run(
                [Event("S1", 0.0, "k")])


class TestTimers:
    def test_timer_fires_in_order_and_updates_slate(self):
        class Windowed(Updater):
            def init_slate(self, key):
                return {"count": 0, "emitted": None}

            def update(self, ctx, event, slate):
                if slate["count"] == 0:
                    ctx.set_timer(event.ts + 60.0)
                slate["count"] += 1

            def on_timer(self, ctx, key, slate, payload=None):
                slate["emitted"] = slate["count"]
                ctx.publish("OUT", key, slate["count"])

        app = Application("windowed")
        app.add_stream("S1", external=True)
        app.add_stream("OUT")
        app.add_updater("U1", Windowed, subscribes=["S1"],
                        publishes=["OUT"])
        app.add_updater("U2", CountingUpdater, subscribes=["OUT"])
        events = [Event("S1", float(i), "k") for i in range(5)]       # in window
        events += [Event("S1", 100.0, "k")]                            # after
        result = ReferenceExecutor(app).run(events)
        # Timer set at ts=60 fires before the ts=100 event: 5 in window.
        assert result.slate("U1", "k")["emitted"] == 5
        assert len(result.events_on("OUT")) == 1

    def test_timer_receives_payload(self):
        captured = []

        class PayloadTimer(Updater):
            def update(self, ctx, event, slate):
                ctx.set_timer(event.ts + 1.0, payload={"tag": event.value})

            def on_timer(self, ctx, key, slate, payload=None):
                captured.append(payload)

        app = Application("payload")
        app.add_stream("S1", external=True)
        app.add_updater("U1", PayloadTimer, subscribes=["S1"])
        ReferenceExecutor(app).run([Event("S1", 0.0, "k", "hello")])
        assert captured == [{"tag": "hello"}]


class TestTTLInReference:
    def test_slate_reset_after_ttl(self):
        """Section 4.2: expired slates reset to freshly initialized."""
        app = Application("ttl")
        app.add_stream("S1", external=True)
        app.add_updater("U1", CountingUpdater, subscribes=["S1"],
                        config={"slate_ttl": 10.0})
        events = [Event("S1", 0.0, "k"), Event("S1", 5.0, "k"),
                  Event("S1", 100.0, "k")]  # 95 s gap > TTL
        result = ReferenceExecutor(app).run(events)
        assert result.slate("U1", "k")["count"] == 1  # reset at t=100


class TestInputValidation:
    def test_source_event_must_target_external_stream(self):
        with pytest.raises(WorkflowError, match="external"):
            ReferenceExecutor(build_count_app()).run(
                [Event("S2", 0.0, "k")])


class TestPendingLedger:
    """The strict pending-delivery bound (no overflow mechanism)."""

    def test_unbounded_by_default(self):
        executor = ReferenceExecutor(build_count_app())
        executor.run([Event("S1", float(i), f"k{i}") for i in range(50)])
        assert executor.pending_stats.rejected == 0
        assert executor.pending_stats.peak_depth > 0

    def test_max_pending_overflow_raises(self):
        from repro.errors import QueueOverflowError

        executor = ReferenceExecutor(build_count_app(), max_pending=10)
        events = [Event("S1", float(i), f"k{i}") for i in range(11)]
        with pytest.raises(QueueOverflowError):
            executor.run(events)

    def test_peak_depth_reflects_backlog(self):
        # All events share one timestamp-sorted heap: feeding N events
        # up front peaks the ledger at N before draining begins.
        executor = ReferenceExecutor(build_count_app())
        executor.run([Event("S1", float(i), "k") for i in range(7)])
        assert executor.pending_stats.peak_depth >= 7
