"""Byte-level (Appendix A) operator API and the Figures 3/4 port."""

import json

import pytest

from repro.apps.appendix_a import Counter, RetailerMapper, build_appendix_app
from repro.core import Event, ReferenceExecutor
from repro.core.binary import PerformerUtilities, slate_bytes
from repro.core.operators import Context
from repro.errors import SlateError
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.workloads import CheckinGenerator


class TestPerformerUtilities:
    def test_publish_round_trips_bytes(self):
        ctx = Context("M1", 0.0, ("S_2",), "k")
        submitter = PerformerUtilities(ctx)
        submitter.publish("S_2", b"Walmart", bytes(range(256)))
        assert len(ctx.emitted) == 1
        event = ctx.emitted[0]
        assert event.key == "Walmart"
        assert event.value.encode("latin-1") == bytes(range(256))

    def test_replace_slate_records_bytes(self):
        submitter = PerformerUtilities(Context("U1", 0.0, (), "k"))
        submitter.replaceSlate(b"42")
        assert submitter.replacement == b"42"

    def test_replace_slate_rejects_non_bytes(self):
        submitter = PerformerUtilities(Context("U1", 0.0, (), "k"))
        with pytest.raises(SlateError):
            submitter.replaceSlate("42")


def checkin(venue: str, user: str = "u1", ts: float = 0.0) -> Event:
    return Event("S1", ts, user,
                 json.dumps({"user": user, "venue": {"name": venue}}))


class TestFigure3Mapper:
    def run_mapper(self, venue):
        mapper = RetailerMapper(name="M1")
        ctx = Context("M1", 0.0, ("S_2",), "u1")
        mapper.map(ctx, checkin(venue))
        return ctx.emitted

    @pytest.mark.parametrize("venue,retailer", [
        ("Walmart", "Walmart"),
        ("wal mart supercenter", "Walmart"),
        ("Sam's Club", "Sam's Club"),
        ("sams club", "Sam's Club"),
    ])
    def test_figure3_patterns_match(self, venue, retailer):
        emitted = self.run_mapper(venue)
        assert [e.key for e in emitted] == [retailer]

    def test_event_forwarded_unchanged(self):
        """Figure 3 publishes the original event bytes."""
        emitted = self.run_mapper("Walmart")
        assert json.loads(emitted[0].value)["venue"]["name"] == "Walmart"

    def test_non_retail_silent(self):
        assert self.run_mapper("Blue Bottle Coffee") == []

    def test_get_name_java_alias(self):
        assert RetailerMapper(name="M7").getName() == "M7"


class TestFigure4Counter:
    def invoke(self, counter, slate_fields, key=b"Walmart"):
        from repro.core.slate import Slate, SlateKey

        ctx = Context("U1", 0.0, (), "Walmart")
        slate = Slate(SlateKey("U1", "Walmart"), slate_fields)
        counter.update(ctx, Event("S_2", 0.0, "Walmart", "{}"), slate)
        return slate

    def test_counts_from_none(self):
        counter = Counter(name="U1")
        slate = self.invoke(counter, {})
        assert slate_bytes(slate.as_dict()) == b"1"

    def test_increments_existing(self):
        counter = Counter(name="U1")
        slate = self.invoke(counter, {"__bytes__": "41"})
        assert slate_bytes(slate.as_dict()) == b"42"

    def test_corrupt_slate_resets_like_the_java(self):
        """Figure 4 catches NumberFormatException and restarts at 0."""
        counter = Counter(name="U1")
        slate = self.invoke(counter, {"__bytes__": "not-a-number"})
        assert slate_bytes(slate.as_dict()) == b"1"


class TestAppendixAppEndToEnd:
    def test_reference_run_counts_walmart_and_sams(self):
        events, truth = CheckinGenerator(seed=111).take_with_truth(1000)
        result = ReferenceExecutor(build_appendix_app()).run(events)
        # The appendix only recognizes Walmart and Sam's Club.
        for retailer in ("Walmart", "Sam's Club"):
            slate = result.slate("U1", retailer)
            assert slate is not None
            assert slate_bytes(slate.as_dict()) == \
                str(truth[retailer]).encode()
        assert result.slate("U1", "Best Buy") is None

    def test_binary_app_runs_on_thread_runtime(self):
        events, truth = CheckinGenerator(seed=112).take_with_truth(500)
        with LocalMuppet(build_appendix_app(),
                         LocalConfig(num_threads=4)) as runtime:
            runtime.ingest_many(events)
            assert runtime.drain()
            walmart = runtime.read_slate("U1", "Walmart")
        assert slate_bytes(walmart) == str(truth["Walmart"]).encode()

    def test_binary_slates_survive_store_roundtrip(self):
        """Byte slates persist through the JSON+zlib codec unharmed."""
        from repro.slates.manager import FlushPolicy

        events, truth = CheckinGenerator(seed=113).take_with_truth(300)
        config = LocalConfig(num_threads=2, cache_slates=1,
                             flush_policy=FlushPolicy.write_through())
        with LocalMuppet(build_appendix_app(), config) as runtime:
            runtime.ingest_many(events)
            assert runtime.drain()
            walmart = runtime.read_slate("U1", "Walmart")
        assert slate_bytes(walmart) == str(truth["Walmart"]).encode()
