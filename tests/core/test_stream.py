"""Streams: registry, stamping, external-stream protection, merging."""

import pytest

from repro.core.event import Event
from repro.core.stream import StreamRegistry, StreamSpec, merge_by_timestamp
from repro.errors import WorkflowError


class TestStreamRegistry:
    def test_declare_and_lookup(self):
        reg = StreamRegistry([StreamSpec("S1", external=True)])
        assert "S1" in reg
        assert reg.spec("S1").external

    def test_unknown_stream_raises(self):
        reg = StreamRegistry()
        with pytest.raises(WorkflowError, match="unknown stream"):
            reg.spec("nope")

    def test_redeclare_same_kind_is_idempotent(self):
        reg = StreamRegistry()
        reg.declare(StreamSpec("S1"))
        reg.declare(StreamSpec("S1"))
        assert reg.sids() == ["S1"]

    def test_redeclare_conflicting_kind_raises(self):
        reg = StreamRegistry([StreamSpec("S1", external=True)])
        with pytest.raises(WorkflowError, match="external and internal"):
            reg.declare(StreamSpec("S1", external=False))

    def test_sid_partition(self):
        reg = StreamRegistry([StreamSpec("A", external=True),
                              StreamSpec("B"), StreamSpec("C")])
        assert reg.external_sids() == ["A"]
        assert reg.internal_sids() == ["B", "C"]
        assert reg.sids() == ["A", "B", "C"]


class TestStamping:
    def test_sequence_numbers_increase_per_stream(self):
        reg = StreamRegistry([StreamSpec("S1"), StreamSpec("S2")])
        a = reg.stamp(Event("S1", 0.0, "k"))
        b = reg.stamp(Event("S1", 0.0, "k"))
        c = reg.stamp(Event("S2", 0.0, "k"))
        assert (a.seq, b.seq) == (0, 1)
        assert c.seq == 0  # independent counter per stream

    def test_stamp_preserves_other_fields(self):
        reg = StreamRegistry([StreamSpec("S1")])
        stamped = reg.stamp(Event("S1", 3.0, "k", "payload"))
        assert (stamped.sid, stamped.ts, stamped.key, stamped.value) == \
            ("S1", 3.0, "k", "payload")

    def test_operator_cannot_publish_into_external_stream(self):
        """Section 5's deadlock-freedom invariant for source throttling."""
        reg = StreamRegistry([StreamSpec("EXT", external=True)])
        with pytest.raises(WorkflowError, match="input-only"):
            reg.stamp(Event("EXT", 0.0, "k"), from_operator=True)

    def test_source_can_publish_into_external_stream(self):
        reg = StreamRegistry([StreamSpec("EXT", external=True)])
        assert reg.stamp(Event("EXT", 0.0, "k")).seq == 0

    def test_stamp_unknown_stream_raises(self):
        reg = StreamRegistry()
        with pytest.raises(WorkflowError):
            reg.stamp(Event("S1", 0.0, "k"))


class TestMergeByTimestamp:
    def test_merges_the_paper_example(self):
        """Section 3: e (21:23 on S1) is fed before f (21:25 on S2)."""
        s1 = [Event("S1", 21 * 60 + 23.0, "e")]
        s2 = [Event("S2", 21 * 60 + 25.0, "f")]
        merged = merge_by_timestamp(s2, s1)
        assert [e.key for e in merged] == ["e", "f"]

    def test_tie_break_by_sid_then_seq(self):
        s1 = [Event("S1", 1.0, "a", seq=1), Event("S1", 1.0, "b", seq=0)]
        s2 = [Event("S2", 1.0, "c", seq=0)]
        merged = merge_by_timestamp(s1, s2)
        assert [e.key for e in merged] == ["b", "a", "c"]

    def test_empty_inputs(self):
        assert merge_by_timestamp([], []) == []

    def test_merge_is_stable_total_order(self):
        events = [Event("S1", float(i % 3), f"k{i}", seq=i)
                  for i in range(10)]
        merged = merge_by_timestamp(events)
        assert merged == sorted(events, key=lambda e: e.order_key())
