"""Slates: mapping behaviour, dirty tracking, TTL, size caps."""

import pytest

from repro.core.slate import Slate, SlateKey, TTL_FOREVER
from repro.errors import SlateTooLargeError


def make_slate(**kwargs) -> Slate:
    return Slate(SlateKey("U1", "k1"), **kwargs)


class TestSlateKey:
    def test_identity_is_updater_and_key(self):
        assert SlateKey("U1", "k") == SlateKey("U1", "k")
        assert SlateKey("U1", "k") != SlateKey("U2", "k")

    def test_row_column_addressing(self):
        """Section 4.2: slate S(U,k) lives at row k, column U."""
        assert SlateKey("U1", "walmart").row_column() == ("walmart", "U1")

    def test_same_key_different_updaters_coexist(self):
        """Section 3: <U, k> determines the slate, not k alone."""
        slates = {SlateKey("U1", "k"): 1, SlateKey("U2", "k"): 2}
        assert len(slates) == 2


class TestMappingProtocol:
    def test_get_set_del(self):
        slate = make_slate(data={"a": 1})
        slate["b"] = 2
        assert slate["a"] == 1 and slate["b"] == 2
        del slate["a"]
        assert "a" not in slate and len(slate) == 1

    def test_get_with_default(self):
        slate = make_slate()
        assert slate.get("missing", 42) == 42

    def test_setdefault_inserts_once(self):
        slate = make_slate()
        assert slate.setdefault("x", 1) == 1
        assert slate.setdefault("x", 9) == 1

    def test_iteration_and_len(self):
        slate = make_slate(data={"a": 1, "b": 2})
        assert sorted(slate) == ["a", "b"]
        assert len(slate) == 2

    def test_as_dict_is_a_copy(self):
        slate = make_slate(data={"a": 1})
        snapshot = slate.as_dict()
        snapshot["a"] = 99
        assert slate["a"] == 1

    def test_replace_is_the_papers_replace_slate(self):
        slate = make_slate(data={"a": 1})
        slate.mark_clean()
        slate.replace({"count": 7})
        assert slate.as_dict() == {"count": 7}
        assert slate.dirty


class TestDirtyTracking:
    def test_fresh_slate_is_clean(self):
        assert not make_slate(data={"a": 1}).dirty

    def test_write_marks_dirty(self):
        slate = make_slate()
        slate["x"] = 1
        assert slate.dirty

    def test_setdefault_existing_does_not_dirty(self):
        slate = make_slate(data={"x": 1})
        slate.mark_clean()
        slate.setdefault("x", 2)
        assert not slate.dirty

    def test_touch_and_mark_clean_cycle(self):
        slate = make_slate()
        slate.touch(5.0)
        assert slate.dirty and slate.last_update_ts == 5.0
        slate.mark_clean()
        assert not slate.dirty


class TestTTL:
    def test_default_is_forever(self):
        slate = make_slate()
        assert slate.ttl is TTL_FOREVER
        assert not slate.expired(now=1e12)

    def test_expires_after_ttl_since_last_update(self):
        slate = make_slate(ttl=10.0, created_ts=0.0)
        assert not slate.expired(now=10.0)
        assert slate.expired(now=10.1)

    def test_update_refreshes_ttl(self):
        """Section 4.2: TTL counts since the last *write*."""
        slate = make_slate(ttl=10.0, created_ts=0.0)
        slate.touch(8.0)
        assert not slate.expired(now=15.0)
        assert slate.expired(now=18.1)


class TestSizing:
    def test_estimated_bytes_tracks_json_size(self):
        small = make_slate(data={"c": 1})
        big = make_slate(data={"c": "x" * 10_000})
        assert big.estimated_bytes() > small.estimated_bytes() + 9_000

    def test_unencodable_data_falls_back_to_repr(self):
        slate = make_slate(data={"obj": object()})
        assert slate.estimated_bytes() > 0

    def test_check_size_enforces_cap(self):
        """Section 5: keep slates to kilobytes, not megabytes."""
        slate = make_slate(data={"blob": "x" * 2_000})
        slate.check_size(max_slate_bytes=None)  # disabled: fine
        with pytest.raises(SlateTooLargeError, match="kilobytes"):
            slate.check_size(max_slate_bytes=1_000)

    def test_check_size_passes_under_cap(self):
        make_slate(data={"c": 1}).check_size(max_slate_bytes=1_000)


class TestDedupWatermarks:
    """Per-upstream watermarks ride inside the slate blob
    (effectively-once delivery)."""

    def test_absent_origin_is_minus_one(self):
        assert make_slate().watermark("S1") == -1

    def test_advance_is_monotone_max(self):
        slate = make_slate()
        slate.advance_watermark("S1", 5)
        slate.advance_watermark("S1", 3)   # late, lower: no regression
        slate.advance_watermark("S1", 9)
        assert slate.watermark("S1") == 9
        assert slate.watermarks == {"S1": 9}

    def test_advance_dirties_and_bumps_version(self):
        slate = make_slate()
        slate.dirty = False
        before = slate.version
        slate.advance_watermark("S1", 1)
        assert slate.dirty and slate.version > before
        # A non-advance is not a mutation.
        slate.dirty = False
        before = slate.version
        slate.advance_watermark("S1", 0)
        assert not slate.dirty and slate.version == before

    def test_blob_dict_embeds_watermarks_atomically(self):
        from repro.core.slate import WATERMARK_FIELD

        slate = make_slate(data={"count": 7})
        assert slate.blob_dict() == {"count": 7}     # knob off: unchanged
        slate.advance_watermark("S1", 12)
        blob = slate.blob_dict()
        assert blob["count"] == 7
        assert blob[WATERMARK_FIELD] == {"S1": 12}
        # as_dict (the application view) never shows the reserved field.
        assert slate.as_dict() == {"count": 7}

    def test_encoded_blob_round_trips_watermarks(self):
        from repro.core.slate import WATERMARK_FIELD
        from repro.slates.codec import DEFAULT_CODEC, split_watermarks

        slate = make_slate(data={"count": 3})
        slate.advance_watermark("S1>M1", 42)
        decoded = DEFAULT_CODEC.decode(slate.encoded_with(DEFAULT_CODEC))
        fields, watermarks = split_watermarks(decoded)
        assert fields == {"count": 3}
        assert watermarks == {"S1>M1": 42}
        assert WATERMARK_FIELD not in fields

    def test_no_watermarks_keeps_blob_bytes_identical(self):
        from repro.slates.codec import DEFAULT_CODEC

        plain = make_slate(data={"count": 3})
        tracked = make_slate(data={"count": 3})
        assert (plain.encoded_with(DEFAULT_CODEC)
                == tracked.encoded_with(DEFAULT_CODEC))

    def test_set_watermarks_does_not_dirty(self):
        slate = make_slate()
        slate.dirty = False
        slate.set_watermarks({"S1": 4})
        assert not slate.dirty
        assert slate.watermark("S1") == 4
        slate.set_watermarks(None)
        assert slate.watermark("S1") == -1
