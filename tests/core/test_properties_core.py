"""Property-based tests (hypothesis) on the core model's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Application, Event, ReferenceExecutor
from repro.core.event import order_key
from repro.core.slate import Slate, SlateKey
from repro.core.stream import StreamRegistry, StreamSpec, merge_by_timestamp
from tests.conftest import SummingUpdater, build_count_app

keys = st.text(alphabet="abcdef", min_size=1, max_size=3)
timestamps = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                       allow_infinity=False)


def events_strategy(sid="S1"):
    return st.lists(
        st.builds(lambda ts, k, v: Event(sid, ts, k, v),
                  timestamps, keys, st.integers(-100, 100)),
        min_size=0, max_size=60)


class TestOrderingProperties:
    @given(events_strategy())
    def test_merge_output_is_sorted(self, events):
        merged = merge_by_timestamp(events)
        assert merged == sorted(merged, key=order_key)

    @given(events_strategy(), events_strategy())
    def test_merge_preserves_multiset(self, a, b):
        merged = merge_by_timestamp(a, b)
        assert sorted(map(order_key, merged)) == \
            sorted(map(order_key, a + b))

    @given(events_strategy())
    def test_order_key_is_total(self, events):
        """No two stamped events of one registry compare equal."""
        registry = StreamRegistry([StreamSpec("S1", external=True)])
        stamped = [registry.stamp(e) for e in events]
        order_keys = [order_key(e) for e in stamped]
        assert len(set(order_keys)) == len(order_keys)


class TestReferenceProperties:
    @settings(max_examples=30, deadline=None)
    @given(events_strategy())
    def test_counts_match_key_frequencies(self, events):
        """Whatever the input, U1's slate counts equal key frequencies."""
        result = ReferenceExecutor(build_count_app()).run(events)
        frequencies = {}
        for event in events:
            frequencies[event.key] = frequencies.get(event.key, 0) + 1
        got = {k: s["count"] for k, s in result.slates_of("U1").items()}
        assert got == frequencies

    @settings(max_examples=30, deadline=None)
    @given(events_strategy())
    def test_input_order_does_not_matter_for_distinct_ts(self, events):
        """Section 3's well-definedness: with distinct timestamps the
        executor's internal sort makes presentation order irrelevant.
        (Equal-timestamp source events tie-break by publication sequence,
        which *is* presentation order — so we de-duplicate timestamps.)"""
        distinct = []
        seen_ts = set()
        for event in events:
            if event.ts not in seen_ts:
                seen_ts.add(event.ts)
                distinct.append(event)
        r1 = ReferenceExecutor(build_count_app()).run(list(distinct))
        r2 = ReferenceExecutor(build_count_app()).run(
            list(reversed(distinct)))
        assert r1.slate_update_log == r2.slate_update_log

    @settings(max_examples=30, deadline=None)
    @given(events_strategy())
    def test_sum_is_commutative_over_input(self, events):
        app = Application("sum")
        app.add_stream("S1", external=True)
        app.add_updater("U1", SummingUpdater, subscribes=["S1"])
        result = ReferenceExecutor(app).run(events)
        expected = {}
        for event in events:
            expected[event.key] = expected.get(event.key, 0) + event.value
        got = {k: s["total"] for k, s in result.slates_of("U1").items()}
        assert got == expected


class TestSlateProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=8),
                           st.integers(-1000, 1000), max_size=10))
    def test_replace_roundtrip(self, data):
        slate = Slate(SlateKey("U", "k"))
        slate.replace(data)
        assert slate.as_dict() == data

    @given(st.floats(min_value=0.001, max_value=1e5),
           st.floats(min_value=0.0, max_value=1e5),
           st.floats(min_value=0.0, max_value=1e5))
    def test_ttl_expiry_boundary(self, ttl, write_ts, delta):
        slate = Slate(SlateKey("U", "k"), ttl=ttl)
        slate.touch(write_ts)
        now = write_ts + delta
        elapsed = now - write_ts  # float rounding may differ from delta
        assert slate.expired(now) == (elapsed > ttl)
