"""Tumbling-window helper: open/arm/close lifecycle."""

import pytest

from repro.core import Application, Event, ReferenceExecutor, Updater
from repro.core.windows import TumblingWindow
from repro.errors import ConfigurationError


WINDOW = TumblingWindow("w", length_s=60.0)


class WindowedCounter(Updater):
    """Counts per window; emits (key, count) on window close."""

    def init_slate(self, key):
        return WINDOW.init({"count": 0})

    def update(self, ctx, event, slate):
        WINDOW.observe(ctx, event.ts, slate)
        slate["count"] += 1

    def on_timer(self, ctx, key, slate, payload=None):
        count = slate["count"]
        slate["count"] = 0
        WINDOW.close(slate)
        ctx.publish("OUT", key, count)


def build_app():
    app = Application("windowed")
    app.add_stream("S1", external=True)
    app.add_stream("OUT")
    app.add_updater("U1", WindowedCounter, subscribes=["S1"],
                    publishes=["OUT"])
    from tests.conftest import CountingUpdater

    app.add_updater("SINK", CountingUpdater, subscribes=["OUT"])
    return app.validate()


class TestLifecycle:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TumblingWindow("", 60.0)
        with pytest.raises(ConfigurationError):
            TumblingWindow("w", 0.0)

    def test_first_event_opens_window(self):
        from repro.core.operators import Context
        from repro.core.slate import Slate, SlateKey

        window = TumblingWindow("w", 60.0)
        slate = Slate(SlateKey("U", "k"), window.init({}))
        ctx = Context("U", 10.0, (), "k")
        assert window.observe(ctx, 10.0, slate)        # opened
        assert not window.observe(ctx, 11.0, slate)    # already open
        assert window.is_open(slate)
        assert window.start_ts(slate) == 10.0
        assert len(ctx.timers) == 1
        assert ctx.timers[0].at_ts == 70.0

    def test_close_resets(self):
        from repro.core.slate import Slate, SlateKey

        window = TumblingWindow("w", 60.0)
        slate = Slate(SlateKey("U", "k"), window.init({}))
        slate["__w_open__"] = True
        window.close(slate)
        assert not window.is_open(slate)
        assert window.start_ts(slate) == -1.0


class TestEndToEnd:
    def test_consecutive_windows_emit_correct_counts(self):
        events = [Event("S1", float(t), "k") for t in (0, 10, 20)]
        events += [Event("S1", float(t), "k") for t in (100, 110)]
        events += [Event("S1", 300.0, "k")]
        result = ReferenceExecutor(build_app()).run(events)
        emitted = [e.value for e in result.events_on("OUT")]
        # Window 1 opens at t=0, closes at 60 with 3 events; window 2
        # opens at 100, closes at 160 with 2; window 3 opens at 300.
        assert emitted == [3, 2, 1]

    def test_independent_keys_independent_windows(self):
        events = [Event("S1", 0.0, "a"), Event("S1", 50.0, "b"),
                  Event("S1", 55.0, "a")]
        result = ReferenceExecutor(build_app()).run(events)
        emitted = {(e.key, e.value) for e in result.events_on("OUT")}
        assert emitted == {("a", 2), ("b", 1)}

    def test_two_windows_in_one_slate(self):
        fast = TumblingWindow("fast", 10.0)
        slow = TumblingWindow("slow", 100.0)
        fields = slow.init(fast.init({}))
        assert set(fields) == {"__fast_open__", "__fast_start__",
                               "__slow_open__", "__slow_start__"}
