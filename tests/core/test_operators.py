"""Operator API: Context publication rules, timers, construction contract."""

import pytest

from repro.core.operators import (MIN_TS_INCREMENT, Context, Mapper,
                                  TimerRequest, Updater)
from repro.errors import TimestampError, WorkflowError


class TestContextPublish:
    def make_ctx(self, outputs=("S2",), ts=10.0, key="k"):
        return Context("M1", ts, tuple(outputs), key)

    def test_publish_collects_events(self):
        ctx = self.make_ctx()
        ctx.publish("S2", "a", 1)
        ctx.publish("S2", "b", 2)
        assert [(e.key, e.value) for e in ctx.emitted] == [("a", 1),
                                                           ("b", 2)]

    def test_default_timestamp_advances(self):
        """Section 3: output ts strictly greater than input ts."""
        ctx = self.make_ctx(ts=10.0)
        event = ctx.publish("S2", "a")
        assert event.ts == pytest.approx(10.0 + MIN_TS_INCREMENT)

    def test_explicit_future_timestamp_accepted(self):
        ctx = self.make_ctx(ts=10.0)
        assert ctx.publish("S2", "a", ts=11.0).ts == 11.0

    def test_equal_timestamp_rejected(self):
        ctx = self.make_ctx(ts=10.0)
        with pytest.raises(TimestampError, match="strictly greater"):
            ctx.publish("S2", "a", ts=10.0)

    def test_past_timestamp_rejected(self):
        ctx = self.make_ctx(ts=10.0)
        with pytest.raises(TimestampError):
            ctx.publish("S2", "a", ts=9.0)

    def test_undeclared_output_stream_rejected(self):
        ctx = self.make_ctx(outputs=("S2",))
        with pytest.raises(WorkflowError, match="not declared"):
            ctx.publish("S3", "a")

    def test_now_mirrors_input_ts(self):
        assert self.make_ctx(ts=42.0).now == 42.0


class TestContextTimers:
    def test_set_timer_records_request_with_key(self):
        ctx = Context("U1", 10.0, (), "walmart")
        ctx.set_timer(70.0, payload={"w": 1})
        assert ctx.timers == [TimerRequest("U1", "walmart", 70.0,
                                           {"w": 1})]

    def test_timer_must_be_in_the_future(self):
        ctx = Context("U1", 10.0, (), "k")
        with pytest.raises(TimestampError):
            ctx.set_timer(10.0)


class _NamedMapper(Mapper):
    def map(self, ctx, event):
        pass


class _NamedUpdater(Updater):
    def update(self, ctx, event, slate):
        pass


class TestConstructionContract:
    """Appendix A: operators built from (config, name); names identify
    functions because one class may serve several functions."""

    def test_name_from_constructor(self):
        op = _NamedMapper({"x": 1}, "M7")
        assert op.get_name() == "M7"
        assert op.config == {"x": 1}

    def test_same_class_two_names(self):
        a = _NamedUpdater(name="U1")
        b = _NamedUpdater(name="U2")
        assert a.get_name() != b.get_name()

    def test_default_name_is_class_name(self):
        assert _NamedMapper().get_name() == "_NamedMapper"

    def test_config_is_copied(self):
        config = {"x": 1}
        op = _NamedMapper(config, "M")
        config["x"] = 2
        assert op.config["x"] == 1

    def test_updater_ttl_from_config(self):
        """Section 4.2: TTL is configurable per update function."""
        op = _NamedUpdater({"slate_ttl": 3600.0}, "U")
        assert op.slate_ttl == 3600.0

    def test_updater_ttl_default_forever(self):
        assert _NamedUpdater().slate_ttl is None

    def test_default_init_slate_is_empty(self):
        assert _NamedUpdater().init_slate("k") == {}

    def test_cost_factor_default(self):
        assert _NamedMapper().cost_factor == 1.0
