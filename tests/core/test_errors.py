"""The exception hierarchy: every library error is a ReproError."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (AnalysisError, ConfigurationError,
                          EngineStoppedError, QueueOverflowError,
                          QuorumError, ReproError, SimulationError,
                          SlateError, SlateTooLargeError, StoreError,
                          TimestampError, WorkerFailedError, WorkflowError)


def _all_error_classes():
    return [cls for _, cls in inspect.getmembers(errors_module,
                                                 inspect.isclass)
            if issubclass(cls, Exception)]


def test_every_exported_error_derives_from_repro_error():
    classes = _all_error_classes()
    assert len(classes) >= 13
    for cls in classes:
        assert issubclass(cls, ReproError), cls


def test_catching_repro_error_catches_subclasses():
    for cls in (ConfigurationError, AnalysisError, SimulationError,
                QueueOverflowError, EngineStoppedError, TimestampError,
                WorkerFailedError):
        with pytest.raises(ReproError):
            raise cls("boom")


def test_sub_hierarchies():
    # Configuration: workflow errors are a species of config error.
    assert issubclass(WorkflowError, ConfigurationError)
    # Slates: the size cap is a slate error.
    assert issubclass(SlateTooLargeError, SlateError)
    # Store: quorum failures are store failures.
    assert issubclass(QuorumError, StoreError)


def test_analysis_error_is_catchable_as_repro_error():
    with pytest.raises(ReproError, match="tool broke"):
        raise AnalysisError("tool broke")


def test_messages_round_trip():
    err = SlateTooLargeError("slate U1/k1 is 2048 bytes (cap 1024)")
    assert "cap 1024" in str(err)
    assert isinstance(err, SlateError)
    assert isinstance(err, ReproError)


def test_errors_do_not_catch_foreign_exceptions():
    with pytest.raises(ValueError):
        try:
            raise ValueError("not ours")
        except ReproError:  # pragma: no cover - must not catch
            pytest.fail("ReproError must not catch ValueError")
