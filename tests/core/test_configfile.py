"""Application config files: loading, validation, round-tripping."""

import json
from pathlib import Path

import pytest

from repro.core.configfile import (application_from_config,
                                   application_to_config,
                                   load_application,
                                   resolve_operator_class)
from repro.errors import ConfigurationError


def retailer_config() -> dict:
    return {
        "name": "retailer-counts",
        "streams": [{"sid": "S1", "external": True}, {"sid": "S2"}],
        "operators": [
            {"name": "M1", "kind": "map",
             "class": "repro.apps.retailer_count.RetailerMapper",
             "subscribes": ["S1"], "publishes": ["S2"]},
            {"name": "U1", "kind": "update",
             "class": "repro.apps.retailer_count.CheckinCounter",
             "subscribes": ["S2"],
             "config": {"slate_ttl": 86400.0}},
        ],
        "outputs": ["S2"],
    }


class TestResolveOperatorClass:
    def test_resolves_real_class(self):
        from repro.apps.retailer_count import RetailerMapper

        cls = resolve_operator_class(
            "repro.apps.retailer_count.RetailerMapper")
        assert cls is RetailerMapper

    def test_bad_module(self):
        with pytest.raises(ConfigurationError, match="cannot import"):
            resolve_operator_class("no.such.module.Thing")

    def test_bad_class(self):
        with pytest.raises(ConfigurationError, match="no class"):
            resolve_operator_class("repro.apps.retailer_count.Nope")

    def test_non_operator_class(self):
        with pytest.raises(ConfigurationError, match="not a Mapper"):
            resolve_operator_class("pathlib.Path")

    def test_bare_name_rejected(self):
        with pytest.raises(ConfigurationError, match="dotted"):
            resolve_operator_class("JustAName")


class TestApplicationFromConfig:
    def test_builds_and_validates(self):
        app = application_from_config(retailer_config())
        assert app.name == "retailer-counts"
        assert [s.name for s in app.mappers()] == ["M1"]
        assert app.operator("U1").config["slate_ttl"] == 86400.0
        assert app.output_sids == ["S2"]

    def test_operator_config_reaches_instances(self):
        app = application_from_config(retailer_config())
        instance = app.operator("U1").instantiate()
        assert instance.slate_ttl == 86400.0

    def test_missing_top_level_key(self):
        config = retailer_config()
        del config["streams"]
        with pytest.raises(ConfigurationError):
            application_from_config(config)

    def test_missing_operator_field(self):
        config = retailer_config()
        del config["operators"][0]["subscribes"]
        with pytest.raises(ConfigurationError, match="subscribes"):
            application_from_config(config)

    def test_kind_class_mismatch(self):
        config = retailer_config()
        config["operators"][0]["kind"] = "update"  # RetailerMapper is a map
        with pytest.raises(ConfigurationError, match="not a Updater"):
            application_from_config(config)

    def test_unknown_kind(self):
        config = retailer_config()
        config["operators"][0]["kind"] = "reduce"
        with pytest.raises(ConfigurationError, match="map.*update"):
            application_from_config(config)

    def test_workflow_validation_still_applies(self):
        config = retailer_config()
        config["operators"][0]["publishes"] = ["S_undeclared"]
        with pytest.raises(ConfigurationError):
            application_from_config(config)


class TestLoadApplication:
    def test_load_from_file(self, tmp_path: Path):
        path = tmp_path / "app.json"
        path.write_text(json.dumps(retailer_config()))
        app = load_application(path)
        assert app.name == "retailer-counts"

    def test_missing_file(self, tmp_path: Path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_application(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path: Path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_application(path)

    def test_non_object_json(self, tmp_path: Path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_application(path)

    def test_shipped_example_configs_load(self):
        repo = Path(__file__).resolve().parents[2]
        for name in ("retailer.json", "reputation.json"):
            app = load_application(repo / "examples" / "configs" / name)
            assert app.operators()


class TestRoundTrip:
    def test_to_config_and_back(self):
        app = application_from_config(retailer_config())
        exported = application_to_config(app)
        rebuilt = application_from_config(exported)
        assert application_to_config(rebuilt) == exported

    def test_instance_factories_not_exportable(self):
        from repro.core import Application
        from tests.conftest import CountingUpdater

        app = Application("t")
        app.add_stream("S1", external=True)
        app.add_updater("U1", CountingUpdater(name="U1"),
                        subscribes=["S1"])
        with pytest.raises(ConfigurationError, match="instance"):
            application_to_config(app)
