"""Events: immutability, ordering, sizing, counters."""

import dataclasses

import pytest

from repro.core.event import Event, EventCounter, order_key


class TestEvent:
    def test_fields(self):
        event = Event("S1", 1.5, "k", {"x": 1}, seq=3)
        assert event.sid == "S1"
        assert event.ts == 1.5
        assert event.key == "k"
        assert event.value == {"x": 1}
        assert event.seq == 3

    def test_immutable(self):
        event = Event("S1", 1.0, "k")
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.ts = 2.0

    def test_default_value_and_seq(self):
        event = Event("S1", 0.0, "k")
        assert event.value is None
        assert event.seq == 0

    def test_with_stream_readdresses(self):
        event = Event("S1", 1.0, "k", "v", seq=9)
        moved = event.with_stream("S2")
        assert moved.sid == "S2"
        assert moved.seq == 0
        assert moved.ts == 1.0 and moved.key == "k" and moved.value == "v"
        # original untouched
        assert event.sid == "S1" and event.seq == 9

    def test_equality_is_structural(self):
        assert Event("S1", 1.0, "k", "v") == Event("S1", 1.0, "k", "v")
        assert Event("S1", 1.0, "k", "v") != Event("S1", 1.0, "k", "w")


class TestOrdering:
    def test_order_by_timestamp_first(self):
        early = Event("S9", 1.0, "k")
        late = Event("S1", 2.0, "k")
        assert early.order_key() < late.order_key()

    def test_tie_broken_by_stream_id(self):
        a = Event("S1", 1.0, "k")
        b = Event("S2", 1.0, "k")
        assert a.order_key() < b.order_key()

    def test_tie_broken_by_sequence_last(self):
        first = Event("S1", 1.0, "k", seq=0)
        second = Event("S1", 1.0, "k", seq=1)
        assert first.order_key() < second.order_key()

    def test_module_level_order_key_matches(self):
        event = Event("S1", 1.0, "k")
        assert order_key(event) == event.order_key()

    def test_sorting_is_deterministic_total_order(self):
        events = [Event("S2", 1.0, "a", seq=1), Event("S1", 2.0, "b"),
                  Event("S1", 1.0, "c", seq=2), Event("S2", 1.0, "d")]
        ordered = sorted(events, key=order_key)
        assert [e.key for e in ordered] == ["c", "d", "a", "b"]


class TestSizeBytes:
    def test_bytes_payload(self):
        event = Event("S", 0.0, "k", b"12345")
        assert event.size_bytes() == 16 + 1 + 1 + 5

    def test_str_payload_utf8(self):
        event = Event("S", 0.0, "k", "héllo")  # é is 2 bytes in UTF-8
        assert event.size_bytes() == 16 + 1 + 1 + 6

    def test_none_payload(self):
        assert Event("S", 0.0, "k").size_bytes() == 18

    def test_other_payload_uses_repr(self):
        event = Event("S", 0.0, "k", [1, 2, 3])
        assert event.size_bytes() == 18 + len(repr([1, 2, 3]))


class TestEventCounter:
    def test_starts_at_zero(self):
        counter = EventCounter()
        assert counter.published == 0
        assert counter.lost_total() == 0

    def test_lost_total_sums_drops_and_failures(self):
        counter = EventCounter(dropped_overflow=3, lost_failure=4)
        assert counter.lost_total() == 7

    def test_diverted_not_counted_as_lost(self):
        counter = EventCounter(diverted_overflow_stream=5)
        assert counter.lost_total() == 0

    def test_snapshot_roundtrip(self):
        counter = EventCounter(published=2, processed=1, throttled=9)
        snap = counter.snapshot()
        assert snap["published"] == 2
        assert snap["processed"] == 1
        assert snap["throttled"] == 9
        assert set(snap) == {"published", "processed", "dropped_overflow",
                             "lost_failure", "diverted_overflow_stream",
                             "throttled", "thinned"}

    def test_thinned_not_counted_as_lost(self):
        counter = EventCounter(thinned=11)
        assert counter.lost_total() == 0


class TestProvenance:
    """Replay-stable identities for effectively-once delivery."""

    def test_source_provenance_is_sid_and_seq(self):
        event = Event(sid="S1", ts=1.0, key="k", seq=7)
        assert event.provenance() == ("S1", 7)

    def test_explicit_origin_wins(self):
        event = Event(sid="S2", ts=1.0, key="k",
                      seq=99).with_provenance("S1>M1", 12)
        assert event.provenance() == ("S1>M1", 12)

    def test_derive_origin_chains_and_strides(self):
        from repro.core.event import ORIGIN_SEQ_STRIDE, derive_origin

        parent = Event(sid="S1", ts=1.0, key="k", seq=3)
        origin, oseq = derive_origin(parent, "M1", ordinal=2)
        assert origin == "S1>M1"
        assert oseq == 3 * ORIGIN_SEQ_STRIDE + 2

    def test_derivation_is_replay_stable(self):
        """The same parent through the same operator yields the same
        identity — regardless of when the registry stamps the copy."""
        from repro.core.event import derive_origin

        parent = Event(sid="S1", ts=1.0, key="k", seq=3)
        replayed_copy = Event(sid="S1", ts=1.0, key="k", seq=3)
        assert (derive_origin(parent, "M1", 0)
                == derive_origin(replayed_copy, "M1", 0))

    def test_second_hop_identities_stay_distinct(self):
        from repro.core.event import derive_origin

        parent = Event(sid="S1", ts=1.0, key="k", seq=3)
        origin, oseq = derive_origin(parent, "M1", 0)
        child = Event(sid="S2", ts=1.1, key="k").with_provenance(origin, oseq)
        grand_origin, grand_oseq = derive_origin(child, "U1", 0)
        assert grand_origin == "S1>M1>U1"
        # Different ordinals of the same invocation never collide.
        assert derive_origin(child, "U1", 1)[1] == grand_oseq + 1
