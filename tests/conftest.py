"""Shared fixtures and helper applications for the test suite."""

from __future__ import annotations

import itertools
from typing import List

import pytest

from repro.core import Application, Event, Mapper, Updater


class EchoMapper(Mapper):
    """Forwards every event to the configured output stream unchanged."""

    def map(self, ctx, event):
        ctx.publish(self.config.get("output_sid", "S2"), event.key,
                    event.value)


class UppercaseMapper(Mapper):
    """Uppercases string payloads (a visibly transforming map)."""

    def map(self, ctx, event):
        value = event.value.upper() if isinstance(event.value, str) \
            else event.value
        ctx.publish(self.config.get("output_sid", "S2"), event.key, value)


class CountingUpdater(Updater):
    """The canonical counting updater: one ``count`` field per key."""

    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1


class SummingUpdater(Updater):
    """Sums numeric payloads per key (commutative + associative)."""

    def init_slate(self, key):
        return {"total": 0}

    def update(self, ctx, event, slate):
        slate["total"] += event.value or 0


class ForwardingUpdater(Updater):
    """Counts and forwards each event (for multi-stage workflows)."""

    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1
        ctx.publish(self.config.get("output_sid", "S3"), event.key,
                    slate["count"])


def build_count_app() -> Application:
    """S1 → M1(echo) → S2 → U1(count): the minimal end-to-end app."""
    app = Application("count")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_mapper("M1", EchoMapper, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", CountingUpdater, subscribes=["S2"])
    return app.validate()


def build_two_stage_app() -> Application:
    """S1 → M1 → S2 → U1(forward) → S3 → U2(count)."""
    app = Application("two-stage")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_stream("S3")
    app.add_mapper("M1", EchoMapper, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", ForwardingUpdater, subscribes=["S2"],
                    publishes=["S3"])
    app.add_updater("U2", CountingUpdater, subscribes=["S3"])
    return app.validate()


def make_events(count: int, sid: str = "S1", keys: int = 5,
                spacing: float = 0.01) -> List[Event]:
    """``count`` events on ``sid`` cycling over ``keys`` distinct keys."""
    return [Event(sid, ts=i * spacing, key=f"k{i % keys}", value=i)
            for i in range(count)]


@pytest.fixture
def count_app() -> Application:
    """A fresh minimal counting application."""
    return build_count_app()


@pytest.fixture
def two_stage_app() -> Application:
    """A fresh two-stage counting application."""
    return build_two_stage_app()


@pytest.fixture
def ticking_clock():
    """A callable clock advancing 1.0 s per call (deterministic)."""
    counter = itertools.count()

    def clock() -> float:
        return float(next(counter))

    return clock
