"""Trace files: JSONL round-trips and error reporting."""

from pathlib import Path

import pytest

from repro.core import Event
from repro.errors import ConfigurationError
from repro.workloads.traceio import read_events, write_events


class TestTraceIO:
    def test_roundtrip(self, tmp_path: Path):
        events = [Event("S1", 0.5, "k1", {"x": 1}, seq=3),
                  Event("S1", 1.5, "k2", "payload"),
                  Event("S1", 2.5, "k3", None)]
        path = tmp_path / "trace.jsonl"
        assert write_events(path, events) == 3
        assert list(read_events(path)) == events

    def test_generator_trace_roundtrip(self, tmp_path: Path):
        from repro.workloads import CheckinGenerator

        events = list(CheckinGenerator(seed=5).events(1.0))
        path = tmp_path / "checkins.jsonl"
        write_events(path, events)
        assert list(read_events(path)) == events

    def test_creates_parent_dirs(self, tmp_path: Path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        write_events(path, [Event("S1", 0.0, "k")])
        assert path.exists()

    def test_read_missing_file(self, tmp_path: Path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            list(read_events(tmp_path / "nope.jsonl"))

    def test_corrupt_line_reports_position(self, tmp_path: Path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"sid":"S1","ts":0,"key":"k"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="bad.jsonl:2"):
            list(read_events(path))

    def test_blank_lines_skipped(self, tmp_path: Path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"sid":"S1","ts":0,"key":"k"}\n\n\n')
        assert len(list(read_events(path))) == 1
