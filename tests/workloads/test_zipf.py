"""Zipf sampling: determinism, skew, probability bookkeeping."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workloads.zipf import ZipfSampler, zipf_key_fn


class TestZipfSampler:
    def test_seeded_determinism(self):
        a = ZipfSampler(100, 1.0, seed=5).sample_many(500)
        b = ZipfSampler(100, 1.0, seed=5).sample_many(500)
        assert a == b

    def test_different_seeds_differ(self):
        a = ZipfSampler(100, 1.0, seed=1).sample_many(100)
        b = ZipfSampler(100, 1.0, seed=2).sample_many(100)
        assert a != b

    def test_ranks_in_range(self):
        sampler = ZipfSampler(10, 1.5, seed=0)
        assert all(0 <= r < 10 for r in sampler.sample_many(1000))

    def test_rank_zero_is_most_popular(self):
        counts = Counter(ZipfSampler(50, 1.2, seed=3).sample_many(5000))
        assert counts[0] == max(counts.values())

    def test_higher_exponent_more_skewed(self):
        mild = Counter(ZipfSampler(100, 0.5, seed=0).sample_many(5000))
        harsh = Counter(ZipfSampler(100, 2.0, seed=0).sample_many(5000))
        assert harsh[0] > mild[0]

    def test_zero_exponent_is_roughly_uniform(self):
        counts = Counter(ZipfSampler(10, 0.0, seed=0).sample_many(10_000))
        assert min(counts.values()) > 700  # each ~1000 expected

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, 1.0)
        assert sum(sampler.probability(r) for r in range(20)) == \
            pytest.approx(1.0)

    def test_probability_monotone_decreasing(self):
        sampler = ZipfSampler(20, 1.0)
        probabilities = [sampler.probability(r) for r in range(20)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, exponent=-1.0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10).probability(10)


class TestZipfKeyFn:
    def test_produces_prefixed_keys(self):
        key_fn = zipf_key_fn("user", 100, seed=0)
        key = key_fn(0)
        assert key.startswith("user")
        assert 0 <= int(key[4:]) < 100

    def test_deterministic_sequence(self):
        a = [zipf_key_fn("u", 50, seed=9)(i) for i in range(100)]
        b = [zipf_key_fn("u", 50, seed=9)(i) for i in range(100)]
        assert a == b
