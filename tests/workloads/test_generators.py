"""Tweet and checkin generators: schema, determinism, knobs."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workloads.checkins import (CheckinGenerator, parse_checkin)
from repro.workloads.tweets import TopicBurst, TweetGenerator, parse_tweet
from repro.apps.retailer_count import match_retailer


class TestTweetGenerator:
    def test_schema(self):
        event = TweetGenerator(seed=1).take(1)[0]
        tweet = parse_tweet(event.value)
        assert tweet["user"] == event.key
        assert isinstance(tweet["topics"], list) and tweet["topics"]
        assert "text" in tweet and "id" in tweet

    def test_seeded_determinism(self):
        a = [e.value for e in TweetGenerator(seed=4).take(50)]
        b = [e.value for e in TweetGenerator(seed=4).take(50)]
        assert a == b

    def test_rate_spacing(self):
        events = TweetGenerator(rate_per_s=100, seed=0).take(10)
        assert events[1].ts - events[0].ts == pytest.approx(0.01)

    def test_retweets_and_replies_present(self):
        tweets = [parse_tweet(e.value)
                  for e in TweetGenerator(seed=2).take(500)]
        retweets = sum(1 for t in tweets if "retweet_of" in t)
        replies = sum(1 for t in tweets if "reply_to" in t)
        assert retweets > 30 and replies > 15

    def test_urls_present(self):
        tweets = [parse_tweet(e.value)
                  for e in TweetGenerator(seed=2).take(500)]
        with_urls = sum(1 for t in tweets if "urls" in t)
        assert with_urls > 50

    def test_burst_multiplies_topic_share(self):
        # "fashion" is the least popular topic (Zipf rank last), so a
        # burst visibly multiplies its share.
        burst = TopicBurst("fashion", start_s=0.0, end_s=10.0,
                           multiplier=10.0)
        quiet = TweetGenerator(rate_per_s=100, seed=5).take(1000)
        noisy = TweetGenerator(rate_per_s=100, seed=5,
                               bursts=[burst]).take(1000)

        def share(events):
            topics = Counter(parse_tweet(e.value)["topics"][0]
                             for e in events)
            return topics["fashion"] / len(events)

        assert share(noisy) > 3 * max(share(quiet), 0.01)

    def test_author_popularity_skewed(self):
        events = TweetGenerator(seed=6, num_users=1000).take(2000)
        authors = Counter(e.key for e in events)
        top = authors.most_common(1)[0][1]
        assert top > 2000 / 1000 * 10  # way above uniform share

    def test_events_duration_bounded(self):
        events = list(TweetGenerator(rate_per_s=50, seed=0).events(2.0))
        assert len(events) == 100
        assert all(e.ts < 2.0 for e in events)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TweetGenerator(rate_per_s=0)
        with pytest.raises(ConfigurationError):
            TweetGenerator(topics=[])


class TestCheckinGenerator:
    def test_schema(self):
        events, _ = CheckinGenerator(seed=1).take_with_truth(1)
        checkin = parse_checkin(events[0].value)
        assert checkin["user"] == events[0].key
        assert "name" in checkin["venue"]
        assert "lat" in checkin["venue"]

    def test_seeded_determinism(self):
        a, truth_a = CheckinGenerator(seed=3).take_with_truth(100)
        b, truth_b = CheckinGenerator(seed=3).take_with_truth(100)
        assert [e.value for e in a] == [e.value for e in b]
        assert truth_a == truth_b

    def test_truth_matches_pattern_matcher(self):
        """Ground truth must agree with the Figure 3 regexes — otherwise
        tests comparing app output to truth are meaningless."""
        events, truth = CheckinGenerator(seed=9).take_with_truth(1000)
        recounted = Counter()
        for event in events:
            venue = parse_checkin(event.value)["venue"]["name"]
            retailer = match_retailer(venue)
            if retailer:
                recounted[retailer] += 1
        assert dict(recounted) == truth

    def test_retail_fraction_respected(self):
        events, truth = CheckinGenerator(
            seed=2, retail_fraction=0.5).take_with_truth(2000)
        retail = sum(truth.values())
        assert 800 < retail < 1200

    def test_zero_retail_fraction(self):
        _, truth = CheckinGenerator(
            seed=2, retail_fraction=0.0).take_with_truth(500)
        assert truth == {}

    def test_hot_retailer_dominates(self):
        """The Example 6 hotspot knob."""
        _, truth = CheckinGenerator(
            seed=2, hot_retailer="Best Buy",
            hot_share=0.9).take_with_truth(2000)
        assert truth["Best Buy"] > 0.7 * sum(truth.values())

    def test_unknown_hot_retailer_rejected(self):
        with pytest.raises(ConfigurationError):
            CheckinGenerator(hot_retailer="Sears")
