"""Autoscaler policy: EWMA signals, hysteresis, cooldown, bounds."""

import pytest

from repro.elastic import Autoscaler, AutoscalerConfig, ScaleDecision
from repro.errors import ConfigurationError


def observe(scaler, now, queue, p99=None, dirty=0, live=4):
    return scaler.observe(now, worst_queue_fraction=queue, p99_s=p99,
                          dirty_backlog=dirty, live_machines=live)


class TestAutoscalerConfig:
    def test_defaults_valid(self):
        cfg = AutoscalerConfig()
        assert cfg.min_machines <= cfg.max_machines
        assert cfg.scale_down_queue < cfg.scale_up_queue

    @pytest.mark.parametrize("kwargs", [
        {"min_machines": 0},
        {"max_machines": 1, "min_machines": 2},
        {"check_period_s": 0.0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"scale_up_queue": 0.0},
        {"scale_up_queue": 1.5},
        {"scale_down_queue": -0.1},
        # No hysteresis band: down threshold at/above up threshold.
        {"scale_down_queue": 0.6, "scale_up_queue": 0.6},
        {"p99_budget_s": 0.0},
        {"dirty_backlog_high": 0},
        {"cooldown_s": -1.0},
        {"hold_s": -1.0},
        {"grow_step": 0},
        {"shrink_step": 0},
        {"cores": 0},
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoscalerConfig(**kwargs)


class TestAutoscalerPolicy:
    def cfg(self, **kwargs):
        kwargs.setdefault("ewma_alpha", 1.0)  # unsmoothed: direct signal
        kwargs.setdefault("cooldown_s", 1.0)
        kwargs.setdefault("hold_s", 1.0)
        return AutoscalerConfig(**kwargs)

    def test_grow_on_queue_pressure(self):
        scaler = Autoscaler(self.cfg())
        decision = observe(scaler, 0.0, queue=0.9)
        assert decision == ScaleDecision("grow", 1)
        assert scaler.counters.scale_ups == 1

    def test_grow_blocked_by_cooldown_then_allowed(self):
        scaler = Autoscaler(self.cfg())
        assert observe(scaler, 0.0, queue=0.9) is not None
        assert observe(scaler, 0.5, queue=0.9) is None
        assert scaler.counters.blocked_cooldown == 1
        assert observe(scaler, 1.5, queue=0.9) is not None

    def test_grow_blocked_at_max_machines(self):
        scaler = Autoscaler(self.cfg(max_machines=4))
        assert observe(scaler, 0.0, queue=0.9, live=4) is None
        assert scaler.counters.blocked_bounds == 1

    def test_grow_step_clipped_to_bound(self):
        scaler = Autoscaler(self.cfg(grow_step=4, max_machines=6))
        assert observe(scaler, 0.0, queue=0.9, live=4) \
            == ScaleDecision("grow", 2)

    def test_p99_over_budget_escalates(self):
        scaler = Autoscaler(self.cfg(p99_budget_s=0.1))
        assert observe(scaler, 0.0, queue=0.0, p99=0.5) \
            == ScaleDecision("grow", 1)

    def test_dirty_backlog_escalates(self):
        scaler = Autoscaler(self.cfg(dirty_backlog_high=100))
        assert observe(scaler, 0.0, queue=0.0, dirty=500) \
            == ScaleDecision("grow", 1)

    def test_shrink_requires_hold(self):
        scaler = Autoscaler(self.cfg(hold_s=1.0, cooldown_s=0.0))
        assert observe(scaler, 0.0, queue=0.0) is None   # calm starts
        assert observe(scaler, 0.5, queue=0.0) is None   # still holding
        assert observe(scaler, 1.5, queue=0.0) \
            == ScaleDecision("shrink", 1)
        assert scaler.counters.scale_downs == 1

    def test_band_sample_resets_calm_clock(self):
        scaler = Autoscaler(self.cfg(hold_s=1.0, cooldown_s=0.0))
        observe(scaler, 0.0, queue=0.0)
        observe(scaler, 0.5, queue=0.3)   # hysteresis band: not calm
        assert observe(scaler, 1.5, queue=0.0) is None  # clock restarted
        assert observe(scaler, 3.0, queue=0.0) \
            == ScaleDecision("shrink", 1)

    def test_shrink_blocked_at_min_machines(self):
        scaler = Autoscaler(self.cfg(min_machines=2, hold_s=0.0,
                                     cooldown_s=0.0))
        observe(scaler, 0.0, queue=0.0, live=2)
        assert observe(scaler, 1.0, queue=0.0, live=2) is None
        assert scaler.counters.blocked_bounds == 1

    def test_shrink_needs_p99_headroom(self):
        scaler = Autoscaler(self.cfg(p99_budget_s=0.1, hold_s=0.0,
                                     cooldown_s=0.0))
        observe(scaler, 0.0, queue=0.0, p99=0.08)
        # Under budget but above budget/2: not calm enough to shrink.
        assert observe(scaler, 1.0, queue=0.0, p99=0.08) is None
        observe(scaler, 2.0, queue=0.0, p99=0.01)
        assert observe(scaler, 3.0, queue=0.0, p99=0.01) \
            == ScaleDecision("shrink", 1)

    def test_ewma_smooths_a_spike(self):
        scaler = Autoscaler(AutoscalerConfig(ewma_alpha=0.2))
        # One spiky sample after a calm history does not trip the
        # threshold; sustained pressure does.
        observe(scaler, 0.0, queue=0.0)
        assert observe(scaler, 0.25, queue=0.9) is None
        for i in range(2, 12):
            decision = observe(scaler, 0.25 * i, queue=0.9)
            if decision is not None:
                assert decision.direction == "grow"
                break
        else:
            pytest.fail("sustained pressure never tripped the EWMA")

    def test_observation_counter(self):
        scaler = Autoscaler(self.cfg())
        for i in range(5):
            observe(scaler, float(i), queue=0.0)
        assert scaler.counters.observations == 5
