"""Crash-safe live slate migration: exactness, chaos matrix, ablation."""

import pytest

from repro.cluster import ClusterSpec
from repro.elastic import MIGRATION_PHASES, MigrationConfig
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app

RATE = 1200.0
DURATION = 2.0
EXPECTED = int(RATE * DURATION)


def migration_config(**kwargs):
    kwargs.setdefault("flush_policy", FlushPolicy.every(0.2))
    kwargs.setdefault("queue_capacity", 100_000)
    kwargs.setdefault("kill_kv_on_machine_failure", True)
    kwargs.setdefault("delivery_semantics", "effectively-once")
    kwargs.setdefault("migration", MigrationConfig())
    return SimConfig(**kwargs)


def run_migration(kind="retire", chaos=None, config=None, horizon=6.0):
    source = constant_rate("S1", rate_per_s=RATE, duration_s=DURATION,
                           key_fn=lambda i: f"k{i % 64}")
    runtime = SimRuntime(build_count_app(), ClusterSpec.uniform(4, cores=4),
                         config or migration_config(), [source],
                         failures=chaos or FaultSchedule(seed=7))
    if kind == "retire":
        runtime.schedule_remove_machine(1.0, "m001")
    else:
        runtime.schedule_add_machine(1.0, "e901")
    report = runtime.run(horizon)
    return runtime, report


def counted(runtime):
    return sum(v["count"] for v in runtime.slates_of("U1").values())


class TestKnobValidation:
    def test_migration_requires_muppet2(self):
        with pytest.raises(ConfigurationError, match="muppet2"):
            SimConfig(engine="muppet1", migration=MigrationConfig())

    def test_autoscale_requires_muppet2(self):
        from repro.elastic import AutoscalerConfig

        with pytest.raises(ConfigurationError, match="muppet2"):
            SimConfig(engine="muppet1", autoscale=AutoscalerConfig())

    @pytest.mark.parametrize("kwargs", [
        {"max_delta_rounds": 0},
        {"delta_threshold": -1},
        {"delta_round_s": 0.0},
        {"master_resume_s": 0.0},
    ])
    def test_invalid_migration_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MigrationConfig(**kwargs)

    def test_at_migration_rejects_unknown_phase(self):
        with pytest.raises(ConfigurationError, match="phase"):
            FaultSchedule().at_migration("warmup")

    def test_at_migration_rejects_unknown_target(self):
        with pytest.raises(ConfigurationError, match="target"):
            FaultSchedule().at_migration("cutover", target="bystander")

    def test_phase_rejected_on_other_fault_kinds(self):
        from repro.faults.schedule import FaultEvent

        with pytest.raises(ConfigurationError, match="migration_crash"):
            FaultEvent("crash", 1.0, machine="m001", phase="cutover")

    def test_triggers_excluded_from_point_events(self):
        schedule = (FaultSchedule()
                    .crash(1.0, "m001")
                    .at_migration("ack", target="receiver"))
        assert len(schedule.migration_triggers()) == 1
        assert all(e.kind == "crash" for e in schedule.point_events())


class TestFaultFreeMigration:
    def test_retire_is_exact_and_incremental(self):
        runtime, report = run_migration("retire")
        assert counted(runtime) == EXPECTED
        assert report.counters.lost_total() == 0
        mc = runtime._migration.counters
        assert mc.completed == 1 and mc.aborted == 0
        assert mc.snapshot_slates > 0 and mc.snapshot_bytes > 0
        assert mc.handoff_slates > 0
        assert mc.incremental_bytes > 0
        assert mc.journal_readdressed > 0
        assert runtime.machines["m001"].retired

    def test_join_is_exact_and_takes_traffic(self):
        runtime, report = run_migration("join")
        assert counted(runtime) == EXPECTED
        assert report.counters.lost_total() == 0
        assert runtime._migration.counters.completed == 1
        joined = runtime.machines["e901"]
        assert not joined.retired
        assert sum(w.queue.stats.accepted for w in joined.workers) > 0

    def test_full_rehydration_ablation_moves_more_bytes(self):
        incremental, _ = run_migration("retire")
        full, _ = run_migration(
            "retire",
            config=migration_config(
                migration=MigrationConfig(full_rehydration=True)))
        mc_inc = incremental._migration.counters
        mc_full = full._migration.counters
        assert mc_full.completed == 1
        assert mc_full.full_barrier_slates > 0
        # The tentpole claim: the incremental handoff moves strictly
        # fewer bytes than a full flush-barrier rehydration.
        assert mc_inc.incremental_bytes < mc_full.full_barrier_bytes
        assert counted(full) == EXPECTED

    def test_read_through_sees_slates_dropped_after_traffic(self):
        # Full rehydration drops the donor's copies and relies on lazy
        # kv reads at the receiver. Migrate *after* the source dries up
        # and the moved keys are never touched again: they live only in
        # the store, invisible to a cache-only scan but not lost.
        source = constant_rate("S1", rate_per_s=RATE, duration_s=DURATION,
                               key_fn=lambda i: f"k{i % 64}")
        runtime = SimRuntime(
            build_count_app(), ClusterSpec.uniform(4, cores=4),
            migration_config(
                migration=MigrationConfig(full_rehydration=True)),
            [source])
        runtime.schedule_remove_machine(3.0, "m001")
        runtime.run(6.0)
        assert runtime._migration.counters.completed == 1
        resident = sum(v["count"]
                       for v in runtime.slates_of("U1").values())
        through = sum(
            v["count"]
            for v in runtime.slates_of("U1", read_through=True).values())
        assert resident < EXPECTED
        assert through == EXPECTED

    def test_scale_requests_queue_behind_active_migration(self):
        source = constant_rate("S1", rate_per_s=RATE, duration_s=DURATION,
                               key_fn=lambda i: f"k{i % 64}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(4, cores=4),
                             migration_config(), [source])
        runtime.schedule_add_machine(1.0, "e901")
        runtime.schedule_remove_machine(1.001, "m001")
        runtime.run(6.0)
        mc = runtime._migration.counters
        assert mc.completed == 2
        assert counted(runtime) == EXPECTED
        assert runtime.machines["m001"].retired
        assert not runtime.machines["e901"].retired


class TestChaosMatrix:
    """Seeded crash of each participant at every phase: the run must
    abort-or-complete with zero lost and zero duplicated updates."""

    @pytest.mark.parametrize("phase", MIGRATION_PHASES)
    @pytest.mark.parametrize("target", ["donor", "receiver", "master"])
    def test_retire_crash_is_exact(self, phase, target):
        chaos = FaultSchedule(seed=7).at_migration(phase, target=target)
        runtime, _ = run_migration("retire", chaos=chaos)
        assert counted(runtime) == EXPECTED
        mc = runtime._migration.counters
        assert mc.started == 1
        assert mc.completed + mc.aborted == 1
        if target == "master":
            # The coordinator pauses and re-drives from the ledger.
            assert mc.resumed >= 1 and mc.completed == 1

    @pytest.mark.parametrize("phase", MIGRATION_PHASES)
    @pytest.mark.parametrize("target", ["donor", "receiver", "master"])
    def test_join_crash_is_exact(self, phase, target):
        chaos = FaultSchedule(seed=7).at_migration(phase, target=target)
        runtime, _ = run_migration("join", chaos=chaos)
        assert counted(runtime) == EXPECTED

    def test_post_cutover_donor_crash_keeps_receiver_state(self):
        # Donor dies at release: cutover already happened, so the
        # migration completes and the donor's loss heals via replay.
        chaos = FaultSchedule(seed=7).at_migration("release",
                                                   target="donor")
        runtime, _ = run_migration("retire", chaos=chaos)
        assert runtime._migration.counters.completed == 1
        assert counted(runtime) == EXPECTED


class TestDeterminism:
    def chaos(self):
        return FaultSchedule(seed=7).at_migration("cutover",
                                                  target="master")

    def test_three_runs_byte_identical(self):
        reports = []
        slates = []
        for _ in range(3):
            runtime, report = run_migration("retire", chaos=self.chaos())
            reports.append(report.counter_report())
            slates.append(runtime.slates_of("U1"))
        assert reports[0] == reports[1] == reports[2]
        assert slates[0] == slates[1] == slates[2]

    def test_batched_run_stays_exact(self):
        config = migration_config(batch_max_events=16,
                                  batch_linger_s=0.005)
        runtime, _ = run_migration("retire", chaos=self.chaos(),
                                   config=config)
        assert counted(runtime) == EXPECTED


class TestReplayPinRegression:
    """A crash replay burst must not be overtaken by fresh same-key
    events spilling to the second two-choice worker: the fresh event
    would advance the slate watermark past a still-queued replay whose
    effect died with the crash, and dedup would wrongly skip it."""

    def test_unrecovered_crash_two_hop_is_exact(self):
        source = constant_rate("S1", rate_per_s=2000.0, duration_s=3.0,
                               key_fn=lambda i: f"k{i % 64}")
        chaos = FaultSchedule(seed=42).crash(1.05, "m001")
        config = SimConfig(flush_policy=FlushPolicy.every(0.2),
                           queue_capacity=100_000,
                           kill_kv_on_machine_failure=True,
                           delivery_semantics="effectively-once")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(4, cores=4),
                             config, [source], failures=chaos)
        runtime.run(8.0)
        assert counted(runtime) == 6000

    def test_pins_drain_to_empty(self):
        chaos = FaultSchedule(seed=7).at_migration("ack", target="donor")
        runtime, _ = run_migration("retire", chaos=chaos)
        for machine in runtime.machines.values():
            assert machine.replay_pins == {}
