"""User/venue profile slates (the Section 5 production state)."""

import json

import pytest

from repro.apps.profiles import (build_profiles_app,
                                 estimate_unique_visitors, peak_hour)
from repro.core import Event, ReferenceExecutor
from repro.workloads import CheckinGenerator
from repro.workloads.checkins import parse_checkin


def checkin(user, venue, ts):
    return Event("S1", ts, user,
                 json.dumps({"user": user, "venue": {"name": venue}}))


class TestUserProfiles:
    def test_counts_and_timestamps(self):
        events = [checkin("alice", "Cafe", 10.0),
                  checkin("alice", "Park", 20.0),
                  checkin("bob", "Cafe", 15.0)]
        result = ReferenceExecutor(build_profiles_app()).run(events)
        alice = result.slate("U_user", "alice")
        assert alice["checkins"] == 2
        # Mapper-emitted events advance the timestamp by epsilon (§3's
        # output-ts rule), hence approx.
        assert alice["first_seen_ts"] == pytest.approx(10.0, abs=1e-3)
        assert alice["last_seen_ts"] == pytest.approx(20.0, abs=1e-3)
        assert alice["interests"] == ["Cafe", "Park"]

    def test_interests_bounded_and_recency_ordered(self):
        events = [checkin("u", f"venue{i}", float(i)) for i in range(30)]
        events.append(checkin("u", "venue0", 99.0))  # revisit
        result = ReferenceExecutor(build_profiles_app()).run(events)
        interests = result.slate("U_user", "u")["interests"]
        assert len(interests) == 16  # bounded (keep slates small, §5)
        assert interests[-1] == "venue0"  # most recent last

    def test_user_ttl_configurable(self):
        app = build_profiles_app(user_ttl=3600.0)
        user = app.operator("U_user").instantiate()
        venue = app.operator("U_venue").instantiate()
        assert user.slate_ttl == 3600.0
        assert venue.slate_ttl is None


class TestVenueProfiles:
    def test_checkin_count(self):
        events = [checkin(f"u{i}", "Cafe", float(i)) for i in range(20)]
        result = ReferenceExecutor(build_profiles_app()).run(events)
        assert result.slate("U_venue", "Cafe")["checkins"] == 20

    def test_unique_visitor_sketch_accuracy(self):
        """±35% on 1,000 distinct users — plenty for profile slates."""
        events = [checkin(f"user{i}", "Stadium", float(i) * 0.01)
                  for i in range(1000)]
        # Repeat visits must not inflate the estimate.
        events += [checkin(f"user{i % 50}", "Stadium", 100.0 + i)
                   for i in range(500)]
        result = ReferenceExecutor(build_profiles_app()).run(events)
        slate = result.slate("U_venue", "Stadium").as_dict()
        estimate = estimate_unique_visitors(slate)
        assert 650 <= estimate <= 1350

    def test_sketch_slate_stays_small(self):
        events = [checkin(f"user{i}", "Mall", float(i) * 0.01)
                  for i in range(2000)]
        result = ReferenceExecutor(build_profiles_app()).run(events)
        slate = result.slate("U_venue", "Mall")
        assert slate.estimated_bytes() < 2000  # KBs, never MBs

    def test_peak_hour(self):
        base_day = 0.0
        events = [checkin(f"u{i}", "Bar", base_day + 22 * 3600 + i)
                  for i in range(10)]                      # 22:00 rush
        events += [checkin(f"v{i}", "Bar", base_day + 9 * 3600 + i)
                   for i in range(3)]                      # quiet morning
        result = ReferenceExecutor(build_profiles_app()).run(events)
        assert peak_hour(result.slate("U_venue", "Bar").as_dict()) == 22


class TestDualProfilePopulations:
    def test_slate_populations_match_distincts(self):
        """The §5 claim shape: user slates ≈ distinct users, venue
        slates ≈ distinct venues, from one stream."""
        generator = CheckinGenerator(rate_per_s=500, seed=211)
        events, _ = generator.take_with_truth(2000)
        users = {e.key for e in events}
        venues = {parse_checkin(e.value)["venue"]["name"] for e in events}
        result = ReferenceExecutor(build_profiles_app()).run(events)
        assert set(result.slates_of("U_user")) == users
        assert set(result.slates_of("U_venue")) == venues
        # Venue population is much smaller than user population — the
        # paper's 30M-vs-4M asymmetry.
        assert len(venues) < len(users)

    def test_total_checkins_conserved_across_both_views(self):
        generator = CheckinGenerator(rate_per_s=500, seed=212)
        events, _ = generator.take_with_truth(1000)
        result = ReferenceExecutor(build_profiles_app()).run(events)
        by_user = sum(s["checkins"]
                      for s in result.slates_of("U_user").values())
        by_venue = sum(s["checkins"]
                       for s in result.slates_of("U_venue").values())
        assert by_user == by_venue == 1000
