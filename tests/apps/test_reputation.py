"""User reputation (Example 3): endorsement flows through the self-loop."""

import json

import pytest

from repro.apps.reputation import (ACTIVITY_BOOST, INITIAL_SCORE,
                                   RETWEET_WEIGHT, build_reputation_app)
from repro.core import Event, ReferenceExecutor
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.workloads import TweetGenerator


def tweet(user, ts, retweet_of=None, reply_to=None):
    record = {"user": user, "text": "hi"}
    if retweet_of:
        record["retweet_of"] = retweet_of
    if reply_to:
        record["reply_to"] = reply_to
    return Event("S1", ts, user, json.dumps(record))


class TestScoring:
    def test_plain_tweet_boosts_author(self):
        result = ReferenceExecutor(build_reputation_app()).run(
            [tweet("alice", 0.0)])
        slate = result.slate("U1", "alice")
        assert slate["score"] == pytest.approx(INITIAL_SCORE
                                               + ACTIVITY_BOOST)
        assert slate["tweets"] == 1

    def test_retweet_transfers_weighted_score(self):
        """'if a user A retweets ... user B, then the score of B may
        change, depending on the score of A'."""
        result = ReferenceExecutor(build_reputation_app()).run(
            [tweet("alice", 0.0, retweet_of="bob")])
        alice = result.slate("U1", "alice")
        bob = result.slate("U1", "bob")
        expected_alice = INITIAL_SCORE + ACTIVITY_BOOST
        assert alice["score"] == pytest.approx(expected_alice)
        assert bob["score"] == pytest.approx(
            INITIAL_SCORE + RETWEET_WEIGHT * expected_alice)
        assert bob["endorsements_received"] == 1

    def test_reply_weighs_less_than_retweet(self):
        replied = ReferenceExecutor(build_reputation_app()).run(
            [tweet("a", 0.0, reply_to="b")]).slate("U1", "b")["score"]
        retweeted = ReferenceExecutor(build_reputation_app()).run(
            [tweet("a", 0.0, retweet_of="b")]).slate("U1", "b")["score"]
        assert replied < retweeted

    def test_high_scorer_endorsement_worth_more(self):
        """B's gain depends on A's *current* score."""
        app = build_reputation_app()
        events = [tweet("star", float(i)) for i in range(50)]  # builds score
        events.append(tweet("star", 100.0, retweet_of="lucky"))
        events.append(tweet("nobody", 101.0, retweet_of="unlucky"))
        result = ReferenceExecutor(app).run(events)
        lucky = result.slate("U1", "lucky")["score"]
        unlucky = result.slate("U1", "unlucky")["score"]
        assert lucky > unlucky

    def test_self_retweet_ignored(self):
        result = ReferenceExecutor(build_reputation_app()).run(
            [tweet("alice", 0.0, retweet_of="alice")])
        slate = result.slate("U1", "alice")
        assert slate["endorsements_received"] == 0


class TestWorkflowShape:
    def test_graph_has_self_loop(self):
        """U1 publishes into a stream it subscribes to (cycle, §3)."""
        app = build_reputation_app()
        assert app.has_cycle()

    def test_runs_on_local_runtime(self):
        events = TweetGenerator(rate_per_s=100, seed=31).take(300)
        with LocalMuppet(build_reputation_app(),
                         LocalConfig(num_threads=4)) as runtime:
            runtime.ingest_many(events)
            assert runtime.drain()
            slates = runtime.read_slates_of("U1")
        assert len(slates) > 10
        assert all(s["score"] >= INITIAL_SCORE for s in slates.values())

    def test_deterministic_on_reference(self):
        events = TweetGenerator(rate_per_s=100, seed=32).take(200)
        r1 = ReferenceExecutor(build_reputation_app()).run(list(events))
        r2 = ReferenceExecutor(build_reputation_app()).run(list(events))
        scores1 = {k: s["score"] for k, s in r1.slates_of("U1").items()}
        scores2 = {k: s["score"] for k, s in r2.slates_of("U1").items()}
        assert scores1 == scores2
