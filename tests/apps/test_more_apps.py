"""Top-ten URLs, HTTP counters, and key splitting (Sections 2, 5, Ex 6)."""

import json
from collections import Counter

import pytest

from repro.apps.http_counters import (build_http_counters_app,
                                      generate_request_events)
from repro.apps.key_splitting import base_key, build_split_app, split_key
from repro.apps.retailer_count import build_retailer_app
from repro.apps.top_urls import LEADERBOARD_KEY, build_top_urls_app
from repro.core import Event, ReferenceExecutor
from repro.workloads import CheckinGenerator, TweetGenerator
from repro.workloads.tweets import parse_tweet


class TestTopUrls:
    def tweets_with_urls(self, n=1500, seed=41):
        return TweetGenerator(rate_per_s=200, seed=seed, url_prob=0.5) \
            .take(n)

    def test_leaderboard_matches_true_top(self):
        events = self.tweets_with_urls()
        truth = Counter()
        for event in events:
            for url in parse_tweet(event.value).get("urls", []):
                truth[url] += 1
        result = ReferenceExecutor(build_top_urls_app(top_n=10)).run(events)
        board = result.slate("U2", LEADERBOARD_KEY)["top"]
        top_urls = [url for url, _ in board]
        true_top = [url for url, _ in truth.most_common(10)]
        # Counts must match exactly for every listed URL.
        assert all(truth[url] == count for url, count in board)
        # The winner is unambiguous.
        assert top_urls[0] == true_top[0]
        assert len(board) == 10

    def test_publish_every_reduces_leaderboard_traffic(self):
        events = self.tweets_with_urls(800)
        chatty = ReferenceExecutor(
            build_top_urls_app(publish_every=1)).run(list(events))
        damped = ReferenceExecutor(
            build_top_urls_app(publish_every=5)).run(list(events))
        assert len(damped.events_on("S3")) < len(chatty.events_on("S3"))

    def test_all_leaderboard_updates_hit_one_key(self):
        """The deliberate hotspot: every S3 event has key 'top'."""
        events = self.tweets_with_urls(300)
        result = ReferenceExecutor(build_top_urls_app()).run(events)
        assert all(e.key == LEADERBOARD_KEY
                   for e in result.events_on("S3"))


class TestHttpCounters:
    def test_counts_by_section(self):
        events = list(generate_request_events(rate_per_s=100,
                                              duration_s=5.0, seed=3))
        truth = Counter()
        for event in events:
            path = json.loads(event.value)["path"]
            truth[path.strip("/").split("/", 1)[0]] += 1
        result = ReferenceExecutor(build_http_counters_app()).run(events)
        got = {k: s["total"] for k, s in result.slates_of("U1").items()}
        assert got == dict(truth)

    def test_per_minute_buckets_roll_over(self):
        events = [Event("S1", ts, f"r{i}",
                        json.dumps({"path": "/home/x"}))
                  for i, ts in enumerate([0.0, 1.0, 61.0, 62.0, 63.0])]
        result = ReferenceExecutor(build_http_counters_app()).run(events)
        slate = result.slate("U1", "home")
        assert slate["total"] == 5
        assert slate["last_minute_count"] == 2   # minute 0 had 2
        assert slate["minute_count"] == 3        # minute 1 has 3


class TestKeySplitting:
    def test_key_helpers(self):
        assert split_key("Best Buy", 1) == "Best Buy#1"
        assert base_key("Best Buy#1") == "Best Buy"
        assert base_key("Best Buy") == "Best Buy"
        assert base_key("weird#name#2") == "weird#name"

    @pytest.mark.parametrize("num_splits", [1, 2, 4, 8])
    @pytest.mark.parametrize("emit_every", [1, 7])
    def test_merged_totals_equal_truth(self, num_splits, emit_every):
        """Example 6's invariant: splitting is invisible in the totals,
        for any split factor and emit cadence."""
        generator = CheckinGenerator(seed=51, hot_retailer="Best Buy",
                                     hot_share=0.8, rate_per_s=200)
        events, truth = generator.take_with_truth(1200)
        app = build_split_app(hot_keys=["Best Buy"],
                              num_splits=num_splits,
                              emit_every=emit_every)
        result = ReferenceExecutor(app, max_events=500_000).run(events)
        merged = {k: s["count"] for k, s in result.slates_of("U2").items()}
        assert merged == truth

    def test_hot_key_fans_out_across_subkeys(self):
        generator = CheckinGenerator(seed=52, hot_retailer="Best Buy",
                                     hot_share=0.9, rate_per_s=200)
        events, truth = generator.take_with_truth(1000)
        app = build_split_app(hot_keys=["Best Buy"], num_splits=4,
                              emit_every=5)
        result = ReferenceExecutor(app, max_events=500_000).run(events)
        subkeys = {k for k in result.slates_of("U1")
                   if k.startswith("Best Buy#")}
        assert subkeys == {f"Best Buy#{i}" for i in range(4)}
        # Round-robin: sub-counts are near-equal.
        counts = [result.slate("U1", k)["count"] for k in sorted(subkeys)]
        assert max(counts) - min(counts) <= 1

    def test_cold_keys_not_split(self):
        generator = CheckinGenerator(seed=53, rate_per_s=200)
        events, truth = generator.take_with_truth(500)
        app = build_split_app(hot_keys=["Best Buy"], num_splits=4)
        result = ReferenceExecutor(app, max_events=500_000).run(events)
        assert "Walmart" in result.slates_of("U1")
        assert "Walmart#0" not in result.slates_of("U1")

    def test_split_vs_unsplit_agree(self):
        generator = CheckinGenerator(seed=54, rate_per_s=200)
        events, truth = generator.take_with_truth(800)
        unsplit = ReferenceExecutor(build_retailer_app()).run(list(events))
        split = ReferenceExecutor(
            build_split_app(hot_keys=["Walmart"], num_splits=3,
                            emit_every=2),
            max_events=500_000).run(list(events))
        unsplit_counts = {k: s["count"]
                          for k, s in unsplit.slates_of("U1").items()}
        split_counts = {k: s["count"]
                        for k, s in split.slates_of("U2").items()}
        assert unsplit_counts == split_counts == truth
