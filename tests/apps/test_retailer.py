"""Retailer checkin counting (Examples 1/4, Figures 1(b), 3, 4)."""

import json

import pytest

from repro.apps.retailer_count import (RetailerMapper, build_retailer_app,
                                       match_retailer)
from repro.core import Event, ReferenceExecutor
from repro.muppet.local import LocalConfig, LocalMuppet
from repro.workloads import CheckinGenerator


class TestMatchRetailer:
    @pytest.mark.parametrize("venue,expected", [
        ("Walmart", "Walmart"),
        ("Wal-Mart Supercenter", "Walmart"),         # Figure 3: wal.*mart
        ("WALMART #3921", "Walmart"),
        ("walmart neighborhood market", "Walmart"),
        ("Sam's Club", "Sam's Club"),                 # Figure 3: sams club
        ("SAMS CLUB", "Sam's Club"),
        ("Best Buy", "Best Buy"),
        ("BEST BUY Store 482", "Best Buy"),
        ("JC Penney", "JCPenney"),
        ("jcpenney salon", "JCPenney"),
        ("SuperTarget", "Target"),
        ("Target Store T-1038", "Target"),
    ])
    def test_recognized_spellings(self, venue, expected):
        assert match_retailer(venue) == expected

    @pytest.mark.parametrize("venue", [
        "Blue Bottle Coffee", "Golden Gate Park", "Joe's Diner",
        "Targetedly Unrelated Gallery",  # 'target' not at word start+bound
    ])
    def test_non_retail_rejected(self, venue):
        assert match_retailer(venue) is None


class TestRetailerMapper:
    def run_mapper(self, value):
        from repro.core.operators import Context

        mapper = RetailerMapper(name="M1")
        ctx = Context("M1", 0.0, ("S2",), "user1")
        mapper.map(ctx, Event("S1", 0.0, "user1", value))
        return ctx.emitted

    def test_emits_retailer_keyed_event(self):
        value = json.dumps({"venue": {"name": "Best Buy"}})
        emitted = self.run_mapper(value)
        assert len(emitted) == 1
        assert emitted[0].key == "Best Buy"
        assert emitted[0].sid == "S2"
        assert emitted[0].value == value  # Figure 3 forwards the event

    def test_silent_on_non_retail(self):
        assert self.run_mapper(
            json.dumps({"venue": {"name": "City Hall"}})) == []

    def test_tolerates_malformed_json(self):
        assert self.run_mapper("{not json") == []

    def test_tolerates_missing_venue(self):
        assert self.run_mapper(json.dumps({"user": "x"})) == []

    def test_accepts_dict_payload(self):
        assert len(self.run_mapper({"venue": {"name": "Walmart"}})) == 1


class TestEndToEnd:
    def test_reference_counts_equal_truth(self):
        events, truth = CheckinGenerator(seed=21).take_with_truth(1500)
        result = ReferenceExecutor(build_retailer_app()).run(events)
        got = {k: s["count"] for k, s in result.slates_of("U1").items()}
        assert got == truth

    def test_local_runtime_counts_equal_truth(self):
        events, truth = CheckinGenerator(seed=22).take_with_truth(800)
        with LocalMuppet(build_retailer_app(),
                         LocalConfig(num_threads=4)) as runtime:
            runtime.ingest_many(events)
            assert runtime.drain()
            got = {k: v["count"]
                   for k, v in runtime.read_slates_of("U1").items()}
        assert got == truth

    def test_slate_ttl_configurable(self):
        app = build_retailer_app(slate_ttl=7.0)
        instance = app.operator("U1").instantiate()
        assert instance.slate_ttl == 7.0
