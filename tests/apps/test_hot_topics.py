"""Hot-topic detection (Examples 2/5, Figure 1(c))."""

import json

from repro.apps.hot_topics import (build_hot_topics_app, minute_of_day,
                                   split_key, topic_minute_key)
from repro.core import Event, ReferenceExecutor
from repro.workloads import TopicBurst, TweetGenerator


class TestKeying:
    def test_minute_of_day_paper_examples(self):
        """'if the timestamp is 00:14 then m = 14; if the timestamp is
        23:59 then m = 1439'."""
        assert minute_of_day(14 * 60.0) == 14
        assert minute_of_day(23 * 3600 + 59 * 60.0) == 1439

    def test_wraps_across_days(self):
        assert minute_of_day(86_400.0 + 60.0) == 1

    def test_key_roundtrip(self):
        key = topic_minute_key("earthquake", ts=14 * 60.0)
        assert key == "earthquake|14"
        assert split_key(key) == ("earthquake", 14)

    def test_topics_with_separator_still_split(self):
        key = topic_minute_key("a|b", ts=0.0)
        assert split_key(key) == ("a|b", 0)


def tweet(topic, ts, user="u1"):
    return Event("S1", ts, user,
                 json.dumps({"user": user, "topics": [topic],
                             "text": f"about {topic}"}))


class TestPipeline:
    def test_minute_counts_published(self):
        """U1 emits (v_m, count) to S3 after its window closes."""
        app = build_hot_topics_app(window_s=60.0, with_sink=False)
        events = [tweet("sports", ts) for ts in (0.0, 10.0, 20.0)]
        events.append(tweet("sports", 120.0))  # next window, fires timer
        result = ReferenceExecutor(app).run(events)
        s3 = result.events_on("S3")
        assert len(s3) >= 1
        assert s3[0].key == "sports|0"
        assert s3[0].value == 3

    def test_detector_uses_daily_average(self):
        """U2: hot when count / (total_count/days) > threshold."""
        app = build_hot_topics_app(window_s=60.0, threshold=3.0,
                                   with_sink=False)
        events = []
        # Day 0 and day 1: 2 mentions of 'music' in minute 0 (baseline).
        for day in range(2):
            base = day * 86_400.0
            events += [tweet("music", base + 1.0),
                       tweet("music", base + 2.0)]
        # Day 2: a 10-mention burst in minute 0 → ratio 5 > 3 → hot.
        base = 2 * 86_400.0
        events += [tweet("music", base + i * 0.1) for i in range(10)]
        # Day 3 trickle so day-2's window timer has a successor context.
        events.append(tweet("music", 3 * 86_400.0 + 1.0))
        result = ReferenceExecutor(app).run(events)
        s4 = result.events_on("S4")
        assert len(s4) == 1
        assert s4[0].key == "music|0"
        assert s4[0].value == 10

    def test_no_alert_without_burst(self):
        app = build_hot_topics_app(window_s=60.0, threshold=3.0,
                                   with_sink=False)
        events = []
        for day in range(4):
            base = day * 86_400.0
            events += [tweet("food", base + 1.0), tweet("food", base + 2.0)]
        result = ReferenceExecutor(app).run(events)
        assert result.events_on("S4") == []

    def test_sink_collects_alerts(self):
        app = build_hot_topics_app(window_s=60.0, threshold=2.0)
        events = [tweet("news", 1.0)]
        events += [tweet("news", 86_400.0 + i * 0.5) for i in range(8)]
        events.append(tweet("news", 2 * 86_400.0))
        result = ReferenceExecutor(app).run(events)
        sink = result.slate("SINK", "alerts")
        assert sink is not None
        assert ["news|0", 8] in sink["alerts"]


class TestWithGenerator:
    def test_burst_detected_in_synthetic_firehose(self):
        """End to end: a quiet baseline day, then a bursty day — the
        burst minute must surface as an S4 alert (the Section 1
        earthquake scenario)."""
        day1 = list(TweetGenerator(rate_per_s=30, seed=13)
                    .events(duration_s=240.0))
        # Burst the *least* popular topic: its count can actually jump by
        # the >3x the detector needs (the top topic already owns ~35% of
        # tweets, so no burst can triple it).
        burst = TopicBurst("fashion", start_s=86_400 + 120.0,
                           end_s=86_400 + 180.0, multiplier=30.0)
        day2 = list(TweetGenerator(rate_per_s=30, seed=14, bursts=[burst])
                    .events(duration_s=240.0, start_ts=86_400.0))
        result = ReferenceExecutor(
            build_hot_topics_app(window_s=60.0, threshold=3.0,
                                 with_sink=False),
            max_events=500_000).run(day1 + day2)
        alerts = [e.key for e in result.events_on("S4")]
        assert any(key.startswith("fashion|") for key in alerts)
        # The alert names the burst minutes (2 or 3 of the day).
        assert any(key in ("fashion|2", "fashion|3") for key in alerts)
        # And no alert fires for the steady top topic.
        assert not any(key.startswith("earthquake|") for key in alerts)
