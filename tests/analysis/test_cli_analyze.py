"""``python -m repro analyze lint|races|invariants`` end to end."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def bad_tree(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n\n\ndef tick():\n    return time.time()\n")
    return tmp_path


class TestAnalyzeLint:
    def test_findings_exit_1(self, bad_tree, capsys):
        assert main(["analyze", "lint", str(bad_tree)]) == 1
        captured = capsys.readouterr()
        assert "MUP001" in captured.out
        assert "1 findings" in captured.err

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("VALUE = 1\n")
        assert main(["analyze", "lint", str(tmp_path)]) == 0
        assert "0 findings" in capsys.readouterr().err

    def test_select_restricts_rules(self, bad_tree, capsys):
        assert main(["analyze", "lint", str(bad_tree),
                     "--select", "MUP002"]) == 0
        assert "1 rules" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["analyze", "lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("MUP001", "MUP008"):
            assert code in out

    def test_missing_target_exits_2(self, capsys):
        assert main(["analyze", "lint", "/nonexistent/nope.py"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_repo_src_is_clean(self, capsys):
        """The shipped tree passes its own lint — the CI contract."""
        from pathlib import Path

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        assert main(["analyze", "lint", str(src)]) == 0


class TestAnalyzeRaces:
    def test_smoke_run_exits_0(self, capsys):
        assert main(["analyze", "races", "--events", "200",
                     "--threads", "2", "--keys", "4"]) == 0
        out = capsys.readouterr().out
        assert "no data races, no lock-order cycles" in out


class TestAnalyzeInvariants:
    def _write(self, path, spans):
        path.write_text("\n".join(json.dumps(s) for s in spans) + "\n")

    def test_clean_trace_exits_0(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        self._write(trace, [
            {"ts": 0.0, "kind": "enqueue", "machine": "m0", "worker": 0,
             "fn": "U1", "key": "k0", "origin": "S1", "oseq": 1},
            {"ts": 0.1, "kind": "execute", "machine": "m0", "worker": 0,
             "op": "U1", "op_kind": "update", "key": "k0",
             "origin": "S1", "oseq": 1},
        ])
        assert main(["analyze", "invariants", "--trace", str(trace)]) == 0
        assert "0 violations" in capsys.readouterr().err

    def test_violating_trace_exits_1(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        self._write(trace, [
            {"ts": 0.0, "kind": "source", "origin": "S1", "oseq": 5},
            {"ts": 0.1, "kind": "source", "origin": "S1", "oseq": 4},
        ])
        assert main(["analyze", "invariants", "--trace", str(trace)]) == 1
        captured = capsys.readouterr()
        assert "[watermarks]" in captured.out
        assert "1 violations" in captured.err

    def test_checks_subset(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        self._write(trace, [
            {"ts": 0.0, "kind": "source", "origin": "S1", "oseq": 5},
            {"ts": 0.1, "kind": "source", "origin": "S1", "oseq": 4},
        ])
        assert main(["analyze", "invariants", "--trace", str(trace),
                     "--checks", "fifo,two_choice"]) == 0

    def test_missing_trace_exits_2(self, capsys):
        assert main(["analyze", "invariants",
                     "--trace", "/nonexistent.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_and_e6d_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", "invariants", "--trace", "x", "--e6d"])
