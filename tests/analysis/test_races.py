"""Lockset race detector: flags seeded races, passes the real engine."""

import threading
from types import SimpleNamespace

import pytest

from repro.analysis.races import (LockMonitor, TrackedLock,
                                  instrument_local_muppet, race_smoke_run)
from repro.errors import AnalysisError


def _run_threads(*targets):
    threads = [threading.Thread(target=t, name=f"racer-{i}")
               for i, t in enumerate(targets)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class TestLocksetAlgorithm:
    def test_flags_write_under_disjoint_locks(self):
        """Two threads writing one state under different locks: the
        candidate lockset empties — the textbook eraser race."""
        monitor = LockMonitor()
        lock_a = TrackedLock("a", monitor)
        lock_b = TrackedLock("b", monitor)

        def writer(lock):
            def run():
                for _ in range(3):
                    with lock:
                        monitor.record_access("shared.counter", "write")
            return run

        _run_threads(writer(lock_a), writer(lock_b))
        races = monitor.races()
        assert [r.state for r in races] == ["shared.counter"]
        race = races[0]
        assert len(race.threads) == 2
        # The report shows each side's held locks and a stack.
        formatted = race.format()
        assert "RACE on shared.counter" in formatted
        assert "[a]" in formatted and "[b]" in formatted

    def test_consistent_lock_is_race_free(self):
        monitor = LockMonitor()
        lock = TrackedLock("only", monitor)

        def writer():
            for _ in range(3):
                with lock:
                    monitor.record_access("shared.counter", "write")

        _run_threads(writer, writer)
        assert monitor.races() == []

    def test_read_only_sharing_is_not_a_race(self):
        """Unlocked reads from many threads never constitute a race."""
        monitor = LockMonitor()

        def reader():
            monitor.record_access("config.value", "read")

        _run_threads(reader, reader)
        assert monitor.races() == []

    def test_single_thread_is_not_a_race(self):
        monitor = LockMonitor()
        monitor.record_access("local.value", "write")
        monitor.record_access("local.value", "write")
        assert monitor.races() == []

    def test_stop_recording_freezes_the_log(self):
        monitor = LockMonitor()
        lock = TrackedLock("a", monitor)

        def locked_writer():
            with lock:
                monitor.record_access("shared", "write")

        _run_threads(locked_writer)
        monitor.stop_recording()

        # A post-teardown unlocked write would empty the lockset, but
        # recording is frozen.
        def bare_writer():
            monitor.record_access("shared", "write")

        _run_threads(bare_writer)
        assert monitor.races() == []


class TestLockOrderGraph:
    def test_detects_ab_ba_cycle(self):
        monitor = LockMonitor()
        lock_a = TrackedLock("a", monitor)
        lock_b = TrackedLock("b", monitor)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_a:
                pass
        cycles = monitor.ordering_cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a", "b"}

    def test_consistent_order_has_no_cycle(self):
        monitor = LockMonitor()
        lock_a = TrackedLock("a", monitor)
        lock_b = TrackedLock("b", monitor)
        for _ in range(2):
            with lock_a:
                with lock_b:
                    pass
        assert monitor.ordering_cycles() == []

    def test_slate_locks_share_one_graph_group(self):
        """Distinct per-key slate locks are one node in the order graph:
        k1->k2 and k2->k1 across *different* keys is not a cycle."""
        monitor = LockMonitor()
        k1 = TrackedLock("slate[U1/k1]", monitor, group="slate")
        k2 = TrackedLock("slate[U1/k2]", monitor, group="slate")
        with k1:
            with k2:
                pass
        with k2:
            with k1:
                pass
        assert monitor.ordering_cycles() == []

    def test_report_mentions_cycle(self):
        monitor = LockMonitor()
        lock_a = TrackedLock("a", monitor)
        lock_b = TrackedLock("b", monitor)
        with lock_a:
            with lock_b:
                monitor.record_access("s", "write")
        with lock_b:
            with lock_a:
                pass
        assert "LOCK-ORDER CYCLE" in monitor.report()


class TestInstrumentation:
    def test_refuses_running_engine(self):
        fake = SimpleNamespace(_running=True)
        with pytest.raises(AnalysisError, match="before runtime.start"):
            instrument_local_muppet(fake)

    def test_smoke_run_is_race_and_cycle_free(self):
        """The acceptance gate: LocalMuppet under churn shows no empty
        locksets and no lock-order cycles."""
        monitor = race_smoke_run(events=600, threads=4, keys=8)
        assert monitor.acquisitions > 0
        assert monitor.accesses > 0
        races = monitor.races()
        assert races == [], "\n".join(r.format() for r in races)
        assert monitor.ordering_cycles() == []
        assert "no data races, no lock-order cycles" in monitor.report()

    def test_smoke_run_observes_slate_and_counter_state(self):
        monitor = race_smoke_run(events=200, threads=2, keys=4)
        states = set(monitor._lockset)
        assert any(s.startswith("slate:U1/") for s in states)
        assert any(s.startswith("counters.") for s in states)
        assert "latency" in states
