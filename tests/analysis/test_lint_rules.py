"""Each MUP rule: true positive, clean pass, honored suppression.

The known-bad snippets live as ``.txt`` fixtures (so the repo's own
linters never parse them) and are linted under *virtual* paths — rule
scoping works off the ``repro/...``-relative path, not the filesystem.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import (SUPPRESSION_CODE, iter_rules, lint_paths,
                                 lint_source, normalize_relpath,
                                 parse_suppressions, rule_table)
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures"

#: Virtual path per rule: somewhere the rule's include scope covers.
_SCOPE = {
    "MUP001": "repro/sim/bad.py",
    "MUP002": "repro/workloads/bad.py",
    "MUP003": "repro/sim/bad.py",
    "MUP004": "repro/sim/bad.py",
    "MUP005": "repro/sim/bad.py",
    "MUP006": "repro/muppet/bad.py",
    "MUP007": "repro/sim/bad.py",
    "MUP008": "repro/muppet/local.py",
    "MUP009": "repro/sim/bad.py",
    "MUP010": "repro/elastic/bad.py",
}

#: Findings the bad fixture must produce (lower bound).
_MIN_FINDINGS = {
    "MUP001": 4,  # ctor default, time.time, time.sleep, datetime.now
    "MUP002": 2,  # unseeded Random(), random.uniform
    "MUP003": 3,  # .values(), .keys(), .items()
    "MUP004": 2,  # store.write, store.put_many
    "MUP005": 1,
    "MUP006": 3,  # two field writes + object.__setattr__
    "MUP007": 2,  # bare except, except: pass
    "MUP008": 2,  # slate-under-manager, latency-under-counter
    "MUP009": 4,  # two dict literals, dataclasses.replace, aliased replace
    "MUP010": 4,  # .values(), set(...), time.time, .items()
}

ALL_CODES = sorted(_SCOPE)


def _lint_fixture(code: str, variant: str):
    source = (FIXTURES / f"{code.lower()}_{variant}.txt").read_text()
    rules = [r for r in iter_rules() if r.code == code]
    assert rules, f"rule {code} not registered"
    return lint_source(source, _SCOPE[code], rules=rules)


@pytest.mark.parametrize("code", ALL_CODES)
def test_rule_fires_on_bad_fixture(code):
    findings = _lint_fixture(code, "bad")
    assert len(findings) >= _MIN_FINDINGS[code]
    assert all(f.code == code for f in findings)
    # Findings carry the virtual path and a real location.
    assert all(f.path == _SCOPE[code] for f in findings)
    assert all(f.line >= 1 and f.col >= 1 for f in findings)


@pytest.mark.parametrize("code", ALL_CODES)
def test_rule_quiet_on_clean_source(code):
    clean = "def noop() -> None:\n    return None\n"
    rules = [r for r in iter_rules() if r.code == code]
    assert lint_source(clean, _SCOPE[code], rules=rules) == []


@pytest.mark.parametrize("code", ALL_CODES)
def test_suppression_with_reason_is_honored(code):
    findings = _lint_fixture(code, "suppressed")
    assert findings == [], [f.format() for f in findings]


def test_bare_noqa_is_a_mup000_finding():
    source = "import time\n\nnow = time.time()  # noqa: MUP001\n"
    findings = lint_source(source, "repro/sim/bad.py")
    codes = {f.code for f in findings}
    # The suppression does not count *and* the rule still fires.
    assert SUPPRESSION_CODE in codes
    assert "MUP001" in codes


def test_suppression_covers_only_listed_codes():
    source = ("import time\n\n"
              "def flush_all(items):\n"
              "    now = time.time()  # noqa: MUP002 -- wrong code\n"
              "    return now\n")
    findings = lint_source(source, "repro/sim/bad.py")
    assert {f.code for f in findings} == {"MUP001"}


def test_comma_separated_suppression_codes():
    by_line, bad = parse_suppressions(
        ["x = 1  # noqa: MUP001, MUP003 -- both audited"])
    assert by_line == {1: ("MUP001", "MUP003")}
    assert bad == []


def test_rule_scoping_by_path():
    # MUP004 must not fire inside the slate manager (the flush path
    # itself) but must fire in engine code.
    source = "def flush(self):\n    self.store.write('k', b'v')\n"
    in_engine = lint_source(source, "repro/sim/runtime.py")
    in_manager = lint_source(source, "repro/slates/manager.py")
    assert any(f.code == "MUP004" for f in in_engine)
    assert not any(f.code == "MUP004" for f in in_manager)


def test_mup001_out_of_scope_for_workloads():
    # Workload generators are allowed wall-clock (not in MUP001 scope).
    source = "import time\n\nstamp = time.time()\n"
    findings = lint_source(source, "repro/workloads/tweets.py")
    assert not any(f.code == "MUP001" for f in findings)


def test_syntax_error_raises_analysis_error():
    with pytest.raises(AnalysisError, match="cannot parse"):
        lint_source("def broken(:\n", "repro/sim/bad.py")


def test_rule_table_lists_all_rules():
    table = rule_table()
    assert [row[0] for row in table] == ALL_CODES
    assert all(row[1] and row[2] for row in table)


def test_normalize_relpath_variants():
    assert normalize_relpath("src/repro/sim/runtime.py") == \
        "repro/sim/runtime.py"
    assert normalize_relpath("/abs/path/src/repro/core/event.py") == \
        "repro/core/event.py"
    assert normalize_relpath("repro/cli.py") == "repro/cli.py"


def test_lint_paths_on_missing_target():
    with pytest.raises(AnalysisError, match="does not exist"):
        lint_paths(["/nonexistent/dir/nope.py"])


def test_lint_paths_select_filters_rules(tmp_path):
    bad = tmp_path / "repro" / "sim"
    bad.mkdir(parents=True)
    (bad / "bad.py").write_text("import time\nnow = time.time()\n")
    report = lint_paths([str(bad)], select=["MUP002"])
    assert report.rules_run == 1
    assert report.findings == []
    report = lint_paths([str(bad)], select=["MUP001"])
    assert len(report.findings) == 1


def test_src_tree_is_lint_clean():
    """The repo's own contract: the final tree has zero findings."""
    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    report = lint_paths([str(src)])
    assert report.files_checked > 80
    assert report.findings == [], [f.format() for f in report.findings]
