"""Trace invariant checker: passes real traces, fails corrupted ones."""

import json

import pytest

from repro.analysis.invariants import InvariantChecker, check_trace
from repro.analysis.scenarios import e6d_chaos_trace
from repro.errors import AnalysisError


def _span(kind, ts=0.0, **fields):
    return {"ts": ts, "kind": kind, **fields}


def _enqueue(machine, worker, oseq, key="k0", fn="U1", origin="S1"):
    return _span("enqueue", machine=machine, worker=worker, fn=fn,
                 key=key, origin=origin, oseq=oseq)


def _execute(machine, worker, oseq, key="k0", op="U1", origin="S1",
             op_kind="update", timer=False):
    return _span("execute", machine=machine, worker=worker, op=op,
                 op_kind=op_kind, key=key, origin=origin, oseq=oseq,
                 timer=timer)


class TestFifo:
    def test_in_order_execution_passes(self):
        spans = [
            _enqueue("m0", 0, 1), _enqueue("m0", 0, 2),
            _execute("m0", 0, 1), _execute("m0", 0, 2),
        ]
        assert InvariantChecker(spans).check_fifo() == []

    def test_dropped_event_is_tolerated(self):
        # oseq=1 vanished (overflow drop); 2 executing is not an
        # inversion.
        spans = [
            _enqueue("m0", 0, 1), _enqueue("m0", 0, 2),
            _execute("m0", 0, 2),
        ]
        assert InvariantChecker(spans).check_fifo() == []

    def test_inversion_is_flagged(self):
        spans = [
            _enqueue("m0", 0, 1), _enqueue("m0", 0, 2),
            _execute("m0", 0, 2), _execute("m0", 0, 1),
        ]
        violations = InvariantChecker(spans).check_fifo()
        assert len(violations) == 1
        assert violations[0].invariant == "fifo"
        assert "without a pending enqueue" in violations[0].message

    def test_queues_are_independent(self):
        # The same provenance on two distinct worker queues does not
        # cross-contaminate.
        spans = [
            _enqueue("m0", 0, 1), _enqueue("m0", 1, 2),
            _execute("m0", 1, 2), _execute("m0", 0, 1),
        ]
        assert InvariantChecker(spans).check_fifo() == []


class TestWatermarks:
    def test_monotone_sources_pass(self):
        spans = [_span("source", origin="S1", oseq=i) for i in range(5)]
        assert InvariantChecker(spans).check_watermarks() == []

    def test_source_regression_is_flagged(self):
        spans = [
            _span("source", origin="S1", oseq=5),
            _span("source", origin="S1", oseq=4),
        ]
        violations = InvariantChecker(spans).check_watermarks()
        assert len(violations) == 1
        assert "strictly increasing" in violations[0].message

    def test_covered_skip_passes(self):
        # Original applied update, then the replayed copy is skipped.
        spans = [
            _execute("m0", 0, 7),                 # original: applied
            _execute("m0", 0, 7),                 # replay: about to skip
            _span("dedup", machine="m0", op="U1", key="k0", origin="S1",
                  oseq=7, decision="skip"),
        ]
        assert InvariantChecker(spans).check_watermarks() == []

    def test_uncovered_skip_is_flagged(self):
        # A skip with no applied update to justify it = lost data.
        spans = [
            _execute("m0", 0, 7),                 # the skipped delivery
            _span("dedup", machine="m0", op="U1", key="k0", origin="S1",
                  oseq=7, decision="skip"),
        ]
        violations = InvariantChecker(spans).check_watermarks()
        assert len(violations) == 1
        assert "no earlier applied update" in violations[0].message


class TestTwoChoice:
    def test_two_queues_pass(self):
        spans = [_enqueue("m0", w, i) for i, w in enumerate([0, 1, 0, 1])]
        assert InvariantChecker(spans).check_two_choice() == []

    def test_third_queue_is_flagged(self):
        spans = [_enqueue("m0", w, i) for i, w in enumerate([0, 1, 2])]
        violations = InvariantChecker(spans).check_two_choice()
        assert len(violations) == 1
        assert "two-choice" in violations[0].message

    def test_ring_change_resets_the_window(self):
        spans = [
            _enqueue("m0", 0, 1), _enqueue("m0", 1, 2),
            _span("ring_change", change="exclude", machine="m1"),
            _enqueue("m0", 2, 3), _enqueue("m0", 3, 4),
        ]
        assert InvariantChecker(spans).check_two_choice() == []

    def test_other_machines_are_independent(self):
        spans = [
            _enqueue("m0", 0, 1), _enqueue("m0", 1, 2),
            _enqueue("m1", 2, 3),
        ]
        assert InvariantChecker(spans).check_two_choice() == []


class TestRingOwnership:
    def _flush(self, machine, key="k0"):
        return _span("slate_flush", updater="U1", key=key, machine=machine)

    def test_single_owner_passes(self):
        spans = [self._flush("m0"), self._flush("m0")]
        assert InvariantChecker(spans).check_ring_ownership() == []

    def test_two_owners_in_one_epoch_flagged(self):
        spans = [self._flush("m0"), self._flush("m1")]
        violations = InvariantChecker(spans).check_ring_ownership()
        assert len(violations) == 1
        assert "orphaned cache copy" in violations[0].message

    def test_ownership_may_move_across_ring_changes(self):
        spans = [
            self._flush("m0"),
            _span("ring_change", change="exclude", machine="m0"),
            self._flush("m1"),
        ]
        assert InvariantChecker(spans).check_ring_ownership() == []

    def test_unattributed_flushes_are_ignored(self):
        # Spans without a machine field (older traces) cannot be
        # ownership-checked.
        spans = [
            _span("slate_flush", updater="U1", key="k0"),
            _span("slate_flush", updater="U1", key="k0"),
        ]
        assert InvariantChecker(spans).check_ring_ownership() == []


class TestCheckTrace:
    def test_malformed_span_raises(self):
        with pytest.raises(AnalysisError, match="malformed trace"):
            check_trace([{"kind": "execute"}])  # no ts
        with pytest.raises(AnalysisError, match="malformed trace"):
            check_trace(["not-a-span"])

    def test_unknown_check_name_raises(self):
        with pytest.raises(AnalysisError, match="unknown invariant"):
            check_trace([], checks=["nonsense"])

    def test_missing_jsonl_file_raises(self):
        with pytest.raises(AnalysisError, match="cannot read"):
            check_trace("/nonexistent/trace.jsonl")

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        spans = [_enqueue("m0", 0, 1), _execute("m0", 0, 1)]
        path.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
        assert check_trace(str(path)) == []

    def test_subset_of_checks(self):
        # An inversion is visible to fifo but not to two_choice.
        spans = [
            _enqueue("m0", 0, 1), _enqueue("m0", 0, 2),
            _execute("m0", 0, 2), _execute("m0", 0, 1),
        ]
        assert check_trace(spans, checks=["two_choice"]) == []
        assert len(check_trace(spans, checks=["fifo"])) == 1


class TestE6dChaosTrace:
    """The acceptance gate: the chaos scenario's real trace is clean,
    and a hand-corrupted copy of it is not."""

    @pytest.fixture(scope="class")
    def trace(self):
        return e6d_chaos_trace(rate_per_s=500.0, duration_s=1.5)

    def test_real_trace_has_no_violations(self, trace):
        violations = check_trace(trace)
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_trace_crosses_failure_and_recovery(self, trace):
        changes = [s for s in trace if s["kind"] == "ring_change"]
        assert [c["change"] for c in changes] == ["exclude", "restore"]
        assert any(s["kind"] == "dedup" and s.get("decision") == "skip"
                   for s in trace)

    def test_corrupted_ownership_is_caught(self, trace):
        corrupted = [dict(s) for s in trace]
        flushes = [s for s in corrupted
                   if s["kind"] == "slate_flush" and "machine" in s]
        assert flushes
        flushes[0]["machine"] = "m-intruder"
        violations = check_trace(corrupted, checks=["ring_ownership"])
        assert violations
        assert "m-intruder" in violations[0].message

    def test_corrupted_order_is_caught(self, trace):
        corrupted = [dict(s) for s in trace]
        executes = [i for i, s in enumerate(corrupted)
                    if s["kind"] == "execute"]
        # Swap two executes on the same queue: a FIFO inversion.
        by_queue = {}
        pair = None
        for i in executes:
            queue = (corrupted[i].get("machine"), corrupted[i].get("worker"))
            if queue in by_queue:
                pair = (by_queue[queue], i)
                break
            by_queue[queue] = i
        assert pair is not None
        a, b = pair
        corrupted[a], corrupted[b] = corrupted[b], corrupted[a]
        assert check_trace(corrupted, checks=["fifo"])

    def test_first_violation_carries_a_chain(self, trace):
        corrupted = [dict(s) for s in trace]
        sources = [s for s in corrupted if s["kind"] == "source"]
        # Replay the first source span at the end: an oseq regression
        # with full provenance, so the chain reconstructs.
        corrupted.append(dict(sources[0]))
        violations = check_trace(corrupted, checks=["watermarks"])
        assert violations
        assert violations[0].chain, "first violation should carry a chain"
        formatted = violations[0].format()
        assert "event chain" in formatted


def _handoff(updater="U1", key="k0", src="m0", receiver="m1", epoch=1,
             ts=1.0):
    return _span("handoff", ts=ts, updater=updater, key=key, src=src,
                 machine=receiver, epoch=epoch)


class TestMigrationInvariant:
    def test_single_receiver_passes(self):
        spans = [_span("ring_change"), _handoff(),
                 _handoff(key="k1")]
        assert InvariantChecker(spans).check_migration() == []

    def test_two_receivers_in_one_epoch_flagged(self):
        spans = [_span("ring_change"), _handoff(receiver="m1"),
                 _handoff(receiver="m2")]
        violations = InvariantChecker(spans).check_migration()
        assert len(violations) == 1
        assert "exactly one receiver" in violations[0].message

    def test_rehandoff_across_migration_epochs_passes(self):
        # m1 takes k0 in migration epoch 1, hands it on in epoch 2.
        spans = [_span("ring_change"), _handoff(receiver="m1", epoch=1),
                 _span("ring_change"),
                 _handoff(src="m1", receiver="m2", epoch=2)]
        assert InvariantChecker(spans).check_migration() == []

    def test_donor_execute_after_handoff_flagged(self):
        spans = [_span("ring_change"), _handoff(src="m0"),
                 _execute("m0", 0, 9)]
        violations = InvariantChecker(spans).check_migration()
        assert len(violations) == 1
        assert "after handing it off" in violations[0].message

    def test_donor_flush_after_handoff_flagged(self):
        spans = [_span("ring_change"), _handoff(src="m0"),
                 _span("slate_flush", ts=1.1, updater="U1", key="k0",
                       machine="m0")]
        assert len(InvariantChecker(spans).check_migration()) == 1

    def test_receiver_activity_after_handoff_passes(self):
        spans = [_span("ring_change"), _handoff(src="m0", receiver="m1"),
                 _execute("m1", 0, 9),
                 _span("slate_flush", ts=1.1, updater="U1", key="k0",
                       machine="m1")]
        assert InvariantChecker(spans).check_migration() == []

    def test_donor_regains_slate_after_next_ring_change(self):
        # The receiver later retires and hands the slate back; the
        # donor legitimately executes in the new ring epoch.
        spans = [_span("ring_change"), _handoff(src="m0", receiver="m1"),
                 _span("ring_change"),
                 _handoff(src="m1", receiver="m0", epoch=2),
                 _execute("m0", 0, 9)]
        assert InvariantChecker(spans).check_migration() == []


class TestE24MigrationTrace:
    """The live-handoff scenario's real trace is clean, and a
    hand-corrupted copy of it is not."""

    @pytest.fixture(scope="class")
    def trace(self):
        from repro.analysis.scenarios import e24_migration_trace

        return e24_migration_trace()

    def test_real_trace_has_no_violations(self, trace):
        violations = check_trace(
            trace, checks=["fifo", "watermarks", "two_choice",
                           "ring_ownership", "migration"])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_trace_records_the_handoff(self, trace):
        handoffs = [s for s in trace if s["kind"] == "handoff"]
        assert handoffs and all(s["src"] == "m001" for s in handoffs)
        phases = [s["phase"] for s in trace if s["kind"] == "migration"]
        assert phases[0] == "plan" and "cutover" in phases

    def test_corrupted_double_owner_is_caught(self, trace):
        corrupted = [dict(s) for s in trace]
        handoff = next(s for s in corrupted if s["kind"] == "handoff")
        forged = dict(handoff)
        forged["machine"] = "m-intruder"
        corrupted.append(forged)
        violations = check_trace(corrupted, checks=["migration"])
        assert violations
        assert "m-intruder" in violations[0].message
