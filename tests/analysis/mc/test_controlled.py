"""The controlled scheduler: labels, independence, FIFO links, replay."""

import pytest

from repro.analysis.mc import (McChooser, ReplayMismatch, independent,
                               replay_decisions)
from repro.analysis.mc.controlled import GLOBAL_FOOTPRINT
from repro.analysis.mc.models import MODELS

#: The crash-the-owner scenario both two-choice models race on.
_CRASH_INDEX = 2


def _crash_scenario(name):
    scenarios = MODELS[name].scenarios()
    scenario = scenarios[_CRASH_INDEX]
    assert "crash(m001" in scenario.label
    return scenario


def test_independence_is_machine_scoped():
    assert independent("m:m000", "m:m001")
    assert not independent("m:m000", "m:m000")
    assert not independent(GLOBAL_FOOTPRINT, "m:m000")
    assert not independent(GLOBAL_FOOTPRINT, GLOBAL_FOOTPRINT)


def test_default_run_records_semantic_labels():
    scenario = _crash_scenario("two_choice_dedup")
    runtime, chooser = replay_decisions(scenario, [], strict=False)
    assert chooser.records, "expected at least one decision point"
    for record in chooser.records:
        assert record.chosen in record.labels
        assert record.chosen in record.candidates
        for label in record.labels:
            kind = label.split(":", 1)[0]
            assert kind in ("deliver", "deliver-timer", "finish", "send",
                            "timer", "ctl"), label
        # Labels are replay keys: no duplicates inside one group.
        assert len(set(record.labels)) == len(record.labels)


def test_same_decisions_reproduce_the_same_run():
    scenario = _crash_scenario("two_choice_dedup_unpinned")
    _, first = replay_decisions(scenario, [], strict=False)
    trail = [record.chosen for record in first.records]
    runtime, second = replay_decisions(scenario, trail, strict=True)
    assert [r.chosen for r in second.records] == trail
    assert [list(r.labels) for r in second.records] \
        == [list(r.labels) for r in first.records]


def test_fifo_link_blocks_same_channel_reorder():
    """Two replayed deliveries from one origin to one machine model a
    TCP link: delivering oseq 1 while oseq 0 is still in flight is not
    a realizable schedule, and strict replay refuses to take it."""
    scenario = _crash_scenario("two_choice_dedup_unpinned")
    _, default = replay_decisions(scenario, [], strict=False)
    groups = [record for record in default.records
              if len([l for l in record.labels
                      if l.startswith("deliver:")]) >= 2]
    assert groups, "expected a multi-delivery decision group"
    # Find a group holding both oseq 0 and oseq 1 of one channel and
    # try to take the later one first.
    target = None
    for record in groups:
        delivers = sorted(l for l in record.labels
                          if l.startswith("deliver:"))
        by_prefix = {}
        for label in delivers:
            head, oseq = label.rsplit(":", 1)
            by_prefix.setdefault(head, []).append(int(oseq))
        for head, oseqs in by_prefix.items():
            if len(oseqs) >= 2:
                target = (record, f"{head}:{max(oseqs)}")
                break
        if target:
            break
    assert target is not None
    record, late_label = target
    prefix = [r.chosen for r in default.records[:default.records.index(record)]]
    assert late_label not in record.candidates
    with pytest.raises(ReplayMismatch):
        replay_decisions(scenario, prefix + [late_label], strict=False)


def test_strict_replay_rejects_unknown_labels():
    scenario = _crash_scenario("two_choice_dedup")
    with pytest.raises(ReplayMismatch):
        replay_decisions(scenario, ["deliver:nope:U1:S1:0"], strict=True)


def test_max_decisions_budget_prunes():
    from repro.analysis.mc import PruneRun

    scenario = _crash_scenario("two_choice_dedup")
    runtime = scenario.build()
    chooser = McChooser(runtime, max_decisions=0)
    runtime.sim.hook = chooser
    with pytest.raises(PruneRun):
        runtime.run(scenario.model.horizon_s)
