"""``analyze mc`` CLI: exit codes 0 (met expectations) / 1 / 2."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).parents[3]


def _mc(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", "mc", *args],
        cwd=ROOT, capture_output=True, text=True,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"})


def test_explore_clean_model_exits_zero():
    proc = _mc("explore", "--model", "two_choice_dedup")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean [exhausted]" in proc.stdout


def test_explore_known_bug_model_exits_zero_when_it_violates():
    proc = _mc("explore", "--model", "two_choice_dedup_unpinned",
               "--stop-first")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "violates as expected" in proc.stdout


def test_explore_unknown_model_exits_two():
    proc = _mc("explore", "--model", "no_such_protocol")
    assert proc.returncode == 2
    assert "unknown model" in proc.stderr


def test_replay_committed_artifact_exits_zero():
    artifact = ROOT / "counterexamples" / "epoch_lazy_detection-0.json"
    proc = _mc("replay", str(artifact))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "violations vs artifact: match" in proc.stdout


def test_replay_expect_clean_fails_on_a_violating_artifact():
    artifact = ROOT / "counterexamples" / "epoch_lazy_detection-0.json"
    proc = _mc("replay", str(artifact), "--expect-clean")
    assert proc.returncode == 1


def test_replay_missing_artifact_exits_two():
    proc = _mc("replay", "does-not-exist.json")
    assert proc.returncode == 2
