"""State fingerprints: semantic, schedule-stable, difference-sensitive."""

from repro.analysis.mc import replay_decisions, state_fingerprint
from repro.analysis.mc.models import MODELS


def _terminal_fingerprint(model_name, scenario_index, decisions=()):
    scenario = MODELS[model_name].scenarios()[scenario_index]
    runtime, _ = replay_decisions(scenario, list(decisions), strict=False)
    return state_fingerprint(runtime)


def test_identical_runs_fingerprint_identically():
    first = _terminal_fingerprint("two_choice_dedup", 0)
    second = _terminal_fingerprint("two_choice_dedup", 0)
    assert first == second
    assert len(first) == 64  # sha256 hex


def test_different_fault_schedules_fingerprint_differently():
    fault_free = _terminal_fingerprint("two_choice_dedup", 0)
    crashed = _terminal_fingerprint("two_choice_dedup", 2)
    assert fault_free != crashed


def test_lost_update_changes_the_fingerprint():
    """The pinned and unpinned models share workload, cluster, and
    fault schedule; when the unpinned run loses an update its terminal
    fingerprint must disagree with the pinned (exact) run's. This is
    what makes fingerprint pruning sound: states that differ in
    outcome never collapse."""
    from repro.analysis.mc import explore_model

    result = explore_model(MODELS["two_choice_dedup_unpinned"],
                           stop_on_violation=True)
    counterexample = result.counterexamples[0]
    trail = [chosen for _, chosen in counterexample.decisions]
    racing = _terminal_fingerprint("two_choice_dedup_unpinned",
                                   counterexample.scenario_index, trail)
    exact = _terminal_fingerprint("two_choice_dedup",
                                  counterexample.scenario_index)
    assert racing != exact
