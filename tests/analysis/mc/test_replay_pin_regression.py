"""Regression: the PR-8 replay pins close the two-choice reorder race.

The committed ``two_choice_dedup_unpinned-0.json`` artifact is the
minimized witness of the pre-fix residual: with pins neutered, the
recorded delivery order splits a replayed (key, fn) pair across
workers, the later oseq applies first, and the earlier one is
dedup-skipped — a lost update. These tests prove the fix: the *same*
delivery order against the real engine (pins active) stays exact, and
exhaustive exploration of the pinned model finds no schedule at all
that violates.
"""

from pathlib import Path

from repro.analysis.mc import (explore_model, load_artifact,
                               replay_decisions)
from repro.analysis.mc.models import MODELS

_ARTIFACT = (Path(__file__).parents[3] / "counterexamples"
             / "two_choice_dedup_unpinned-0.json")


def _counted(runtime):
    slates = runtime.slates_of("U1", read_through=True)
    return {key: value["count"] for key, value in slates.items()}


def test_unpinned_engine_loses_the_update_on_the_recorded_schedule():
    document = load_artifact(str(_ARTIFACT))
    model = MODELS["two_choice_dedup_unpinned"]
    scenario = model.scenarios()[document["scenario_index"]]
    trail = [step["chosen"] for step in document["decisions"]]
    runtime, _ = replay_decisions(scenario, trail, strict=True)
    reference = model.reference_slates()
    counted = _counted(runtime)
    assert counted["k0"] < reference["k0"], (
        "the known-residual artifact no longer reproduces; regenerate "
        "counterexamples/ via analyze mc explore --emit")


def test_replay_pins_close_the_recorded_schedule():
    """Feed the pinned engine the exact delivery order the artifact
    used to lose an update; the pins serialize the replayed pair onto
    one worker and every count lands exactly."""
    document = load_artifact(str(_ARTIFACT))
    model = MODELS["two_choice_dedup"]
    scenario = model.scenarios()[document["scenario_index"]]
    assert scenario.schedule.events() \
        and document["scenario"] in scenario.label
    deliveries = [step["chosen"] for step in document["decisions"]
                  if step["chosen"].startswith("deliver:")]
    assert len(deliveries) >= 2
    runtime, _ = replay_decisions(scenario, deliveries, strict=False)
    assert _counted(runtime) == model.reference_slates()


def test_pinned_model_has_no_violating_schedule_at_all():
    result = explore_model(MODELS["two_choice_dedup"])
    assert result.clean and result.stats.exhausted
