"""DFS exploration: exhaustion, DPOR soundness, known-bug models."""

from repro.analysis.mc import explore_model
from repro.analysis.mc.models import MODELS


def test_pinned_two_choice_model_exhausts_clean():
    result = explore_model(MODELS["two_choice_dedup"])
    assert result.clean
    assert result.stats.exhausted
    assert result.stats.schedules_run > 0
    assert result.stats.decision_points > 0
    # One scenario result per lattice point, fault-free included.
    assert len(result.scenarios) == 3


def test_unpinned_two_choice_model_finds_the_reorder_residual():
    """Satellite regression for the PR-8 replay-pin fix: with the pins
    neutered the checker must reach the replay-reorder lost update; the
    violation is an exactness miss on the hot key."""
    result = explore_model(MODELS["two_choice_dedup_unpinned"])
    assert not result.clean
    assert result.stats.exhausted
    assert MODELS["two_choice_dedup_unpinned"].expect_violations
    for counterexample in result.counterexamples:
        assert counterexample.violations
        for violation in counterexample.violations:
            assert violation.prop == "exactness"
        # Only the crash-the-owner lattice point can race.
        assert "crash(m001" in counterexample.scenario


def test_dpor_never_explores_more_than_naive():
    """Soundness + reduction: on the same model, reduced exploration
    must still find the exact same verdict with at most as many
    schedules as naive enumeration."""
    model = MODELS["two_choice_dedup_unpinned"]
    reduced = explore_model(model, dpor=True)
    naive = explore_model(model, dpor=False,
                          max_schedules_per_scenario=5_000)
    assert not reduced.clean and not naive.clean
    assert reduced.stats.schedules_run <= naive.stats.schedules_run
    # Both modes agree on which lattice points violate.
    assert ({c.scenario for c in reduced.counterexamples}
            == {c.scenario for c in naive.counterexamples})


def test_stop_on_violation_short_circuits():
    model = MODELS["two_choice_dedup_unpinned"]
    full = explore_model(model)
    first = explore_model(model, stop_on_violation=True)
    assert len(first.counterexamples) == 1
    assert first.stats.schedules_run <= full.stats.schedules_run


def test_schedule_budget_reports_bounded():
    result = explore_model(MODELS["two_choice_dedup"],
                           max_schedules_per_scenario=1)
    assert not result.stats.exhausted


def test_epoch_lazy_detection_is_a_known_bug():
    """The quiet-window residual: without the heartbeat sweep a crash
    with no subsequent traffic to the victim is never detected, the
    journal is never replayed, and the count comes up short."""
    model = MODELS["epoch_lazy_detection"]
    assert model.expect_violations
    result = explore_model(model, stop_on_violation=True)
    assert not result.clean
    violation = result.counterexamples[0].violations[0]
    assert violation.prop == "exactness"
