"""Counterexample artifacts: byte-stable rendering and strict replay.

The files under ``counterexamples/`` are part of the repo's contract:
CI replays them on every push, so these tests are the local version of
that gate — every committed artifact must re-execute label-for-label
and reproduce its recorded violations and terminal anchors.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.mc import load_artifact, render_artifact, replay_artifact
from repro.analysis.mc.artifact import (schedule_from_json, schedule_to_json,
                                        scenario_from_artifact)
from repro.errors import AnalysisError

ARTIFACTS = sorted(
    (Path(__file__).parents[3] / "counterexamples").glob("*.json"))


def test_artifacts_are_committed():
    names = [p.name for p in ARTIFACTS]
    assert "two_choice_dedup_unpinned-0.json" in names
    assert "epoch_lazy_detection-0.json" in names


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_committed_artifact_replays_exactly(path):
    document = load_artifact(str(path))
    outcome = replay_artifact(document)
    assert outcome.violations, "a counterexample must still violate"
    assert outcome.violations_match
    assert outcome.anchors_match is True


@pytest.mark.parametrize("path", ARTIFACTS, ids=lambda p: p.stem)
def test_committed_artifact_is_canonically_rendered(path):
    document = load_artifact(str(path))
    assert render_artifact(document) == path.read_text()


def test_schedule_round_trips():
    document = load_artifact(str(ARTIFACTS[0]))
    schedule = schedule_from_json(document["fault_schedule"])
    assert schedule_to_json(schedule) == document["fault_schedule"]


def test_scenario_from_artifact_rebuilds_the_lattice_point():
    document = load_artifact(str(ARTIFACTS[0]))
    scenario = scenario_from_artifact(document)
    assert document["scenario"] in scenario.label
    assert scenario.index == document["scenario_index"]
    assert scenario.model.name == document["model"]


def test_malformed_artifacts_are_config_errors(tmp_path):
    document = load_artifact(str(ARTIFACTS[0]))
    for missing in ("model", "decisions", "version"):
        broken = dict(document)
        del broken[missing]
        path = tmp_path / f"missing_{missing}.json"
        path.write_text(json.dumps(broken))
        with pytest.raises(AnalysisError):
            load_artifact(str(path))
    unknown = dict(document)
    unknown["model"] = "no_such_model"
    path = tmp_path / "unknown_model.json"
    path.write_text(json.dumps(unknown))
    with pytest.raises(AnalysisError):
        replay_artifact(load_artifact(str(path)))
