"""Counterexample minimization: shorter pins, same violation."""

from repro.analysis.mc import explore_model, minimize_counterexample
from repro.analysis.mc.models import MODELS


def _first_counterexample(model_name):
    model = MODELS[model_name]
    result = explore_model(model, stop_on_violation=True)
    assert result.counterexamples
    counterexample = result.counterexamples[0]
    scenario = model.scenarios()[counterexample.scenario_index]
    return scenario, counterexample


def test_minimized_counterexample_still_violates():
    scenario, counterexample = _first_counterexample(
        "two_choice_dedup_unpinned")
    minimized = minimize_counterexample(scenario, counterexample)
    assert minimized.violations
    assert minimized.pinned is not None
    assert minimized.pinned <= len(counterexample.decisions)
    # The same property still fails after shrinking.
    assert ({(v.prop, v.name) for v in minimized.violations}
            == {(v.prop, v.name) for v in counterexample.violations})


def test_minimization_is_idempotent():
    scenario, counterexample = _first_counterexample(
        "two_choice_dedup_unpinned")
    once = minimize_counterexample(scenario, counterexample)
    twice = minimize_counterexample(scenario, once)
    assert twice.pinned == once.pinned
    assert [c for _, c in twice.decisions] == [c for _, c in once.decisions]


def test_quiet_window_counterexample_minimizes_to_the_default_run():
    """The epoch_lazy_detection bug needs no adversarial scheduling at
    all — the default schedule loses the journal — so minimization must
    shrink the pinned prefix to zero."""
    scenario, counterexample = _first_counterexample("epoch_lazy_detection")
    minimized = minimize_counterexample(scenario, counterexample)
    assert minimized.pinned == 0
    assert minimized.violations
