"""The README's code blocks must actually run (doc drift guard)."""

import re
from pathlib import Path

README = Path(__file__).resolve().parents[1] / "README.md"


def python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeCode:
    def test_readme_has_python_blocks(self):
        assert len(python_blocks()) >= 2

    def test_quickstart_block_runs(self):
        blocks = python_blocks()
        namespace: dict = {}
        exec(compile(blocks[0], str(README), "exec"), namespace)  # noqa: S102
        # The block ends by printing the 'fast' slate; re-verify it.
        assert "LocalMuppet" in namespace
        assert "WordCounter" in namespace

    def test_simulator_block_runs(self):
        blocks = python_blocks()
        namespace: dict = {}
        # The second block depends on `app` from the first.
        exec(compile(blocks[0], str(README), "exec"), namespace)  # noqa: S102
        exec(compile(blocks[1], str(README), "exec"), namespace)  # noqa: S102
        report = namespace["report"]
        assert report.counters.processed > 0
        assert report.latency.p99 < 2.0
