"""The SchedulerHook seam: controlled scheduling over the DES heap.

The hook is the model checker's only entry point into the simulator, so
its contract is load-bearing: with no hook (or a hook that always picks
index 0) the loop must be byte-identical to the historical schedule,
and the hook must see exactly the co-enabled groups — same time, same
priority, nothing cancelled, nothing from a later instant.
"""

from typing import List, Tuple

from repro.sim.des import SchedulerHook, Simulator


def _run(hook) -> List[str]:
    """A fixed little schedule with ties at t=1.0 and a singleton later."""
    sim = Simulator()
    log: List[str] = []
    for name in ("a", "b", "c"):
        sim.schedule(1.0, lambda s, name=name: log.append(name))
    sim.schedule(1.0, lambda s: log.append("hi"), priority=-1)
    sim.schedule(2.0, lambda s: log.append("z"))
    sim.hook = hook
    sim.run_until(3.0)
    return log


def test_no_hook_and_choose_zero_agree():
    assert _run(None) == _run(SchedulerHook()) == ["hi", "a", "b", "c", "z"]


class _PickLast(SchedulerHook):
    def __init__(self):
        self.groups: List[List[Tuple]] = []

    def choose(self, sim, at, priority, entries):
        self.groups.append(list(entries))
        return len(entries) - 1


def test_hook_reorders_only_within_coenabled_group():
    hook = _PickLast()
    log = _run(hook)
    # Priority -1 still runs first; the t=1.0 tie is reversed; the
    # singleton at t=2.0 cannot be reordered past anything.
    assert log == ["hi", "c", "b", "a", "z"]
    # The hook only ever saw same-instant groups with > 1 entry... and
    # every group it saw was (time, priority)-uniform.
    for group in hook.groups:
        times = {(entry[0], entry[1]) for entry in group}
        assert len(times) == 1


class _CancelAware(SchedulerHook):
    def __init__(self):
        self.sizes: List[int] = []

    def choose(self, sim, at, priority, entries):
        self.sizes.append(len(entries))
        return 0


def test_cancelled_entries_never_reach_the_hook():
    sim = Simulator()
    log: List[str] = []
    sim.schedule(1.0, lambda s: log.append("keep"))
    handle = sim.schedule_cancellable(1.0, lambda s: log.append("dead"))
    sim.schedule(1.0, lambda s: log.append("keep2"))
    handle.cancel()
    hook = _CancelAware()
    sim.hook = hook
    sim.run_until(2.0)
    assert log == ["keep", "keep2"]
    assert all(size <= 2 for size in hook.sizes)


def test_hooked_run_matches_default_on_a_real_model():
    """Choose-0 under the hook reproduces the default engine run
    byte-for-byte on a full SimRuntime (counters and slates)."""
    from repro.analysis.mc.models import MODELS

    model = MODELS["two_choice_dedup"]
    schedule = model.lattice.schedules()[1]

    def run(hooked: bool):
        runtime = model.make_runtime(schedule)
        if hooked:
            runtime.sim.hook = SchedulerHook()
        runtime.run(model.horizon_s)
        return (runtime.counters.snapshot(),
                runtime.slates_of("U1", read_through=True))

    assert run(False) == run(True)
