"""Effectively-once delivery: exact recovery via dedup + epoch checkpoints.

The acceptance criteria of the third delivery mode:

* A machine crash + recover under ``delivery_semantics="effectively-once"``
  yields *exactly* the failure-free totals — at-most-once under-counts and
  at-least-once over-counts on the same schedule.
* Two seeded runs are byte-identical (counter report and final slates),
  with data-plane batching off and on.
* The checkpoint-epoch barrier keeps the un-horizoned journal bounded.
* The knob defaults off: plain configs build no journal and behave as
  before.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule
from repro.muppet.queues import OverflowPolicy, SourceThrottle
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app

RATE, DURATION, FLUSH, KEYS = 2000.0, 3.0, 0.2, 64

#: Exactness needs per-key FIFO application, so these tests run the
#: single-choice dispatcher. Two-choice lets two workers apply one key's
#: events out of order, which the watermark rule cannot distinguish from
#: duplication — the documented residual hazard of effectively-once on
#: Muppet 2.0's concurrent dispatch.
EXACT = dict(delivery_semantics="effectively-once", checkpoint_epoch_s=0.5,
             two_choice=False)


def crash_schedule():
    return FaultSchedule(seed=42).crash(1.05, "m001", recover_at=2.0)


def run_sim(schedule, horizon=6.0, **config_kwargs):
    config_kwargs.setdefault("flush_policy", FlushPolicy.every(FLUSH))
    config_kwargs.setdefault("queue_capacity", 100_000)
    config = SimConfig(**config_kwargs)
    source = constant_rate("S1", rate_per_s=RATE, duration_s=DURATION,
                           key_fn=lambda i: f"k{i % KEYS}")
    runtime = SimRuntime(build_count_app(), ClusterSpec.uniform(4, cores=4),
                         config, [source], failures=schedule)
    report = runtime.run(horizon)
    return runtime, report


def total_counted(runtime):
    return sum(v["count"] for v in runtime.slates_of("U1").values())


class TestConfigSurface:
    def test_default_is_at_most_once_with_no_journal(self):
        runtime, _ = run_sim(FaultSchedule(), horizon=0.1)
        assert runtime.config.delivery_semantics == "at-most-once"
        assert runtime.replay_journal is None

    def test_bare_horizon_upgrades_to_at_least_once(self):
        config = SimConfig(replay_horizon_s=0.5)
        assert config.delivery_semantics == "at-least-once"

    def test_at_least_once_defaults_its_horizon(self):
        config = SimConfig(delivery_semantics="at-least-once")
        assert config.replay_horizon_s == 0.25

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ConfigurationError, match="delivery_semantics"):
            SimConfig(delivery_semantics="exactly-once-honest")

    def test_effectively_once_rejects_time_horizon(self):
        with pytest.raises(ConfigurationError, match="checkpoint"):
            SimConfig(delivery_semantics="effectively-once",
                      replay_horizon_s=0.25)

    def test_nonpositive_epoch_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_epoch_s"):
            SimConfig(delivery_semantics="effectively-once",
                      checkpoint_epoch_s=0.0)

    def test_effectively_once_builds_epoch_pruned_journal(self):
        runtime, _ = run_sim(FaultSchedule(), horizon=0.1, **EXACT)
        assert runtime.replay_journal is not None
        assert runtime.replay_journal.horizon_s is None


class TestExactRecovery:
    """The headline: crash + recover, exact counts."""

    @pytest.fixture(scope="class")
    def outcomes(self):
        runtime_ff, _ = run_sim(FaultSchedule(), **EXACT)
        runtime_eo, report_eo = run_sim(crash_schedule(), **EXACT)
        runtime_amo, _ = run_sim(crash_schedule(), two_choice=False)
        runtime_alo, _ = run_sim(crash_schedule(), two_choice=False,
                                 delivery_semantics="at-least-once",
                                 replay_horizon_s=6.0)
        return (total_counted(runtime_ff), total_counted(runtime_eo),
                total_counted(runtime_amo), total_counted(runtime_alo),
                report_eo)

    def test_effectively_once_is_exact(self, outcomes):
        failure_free, effectively_once, _, __, ___ = outcomes
        assert effectively_once == failure_free

    def test_at_most_once_undercounts(self, outcomes):
        failure_free, _, at_most_once, __, ___ = outcomes
        assert at_most_once < failure_free

    def test_at_least_once_overcounts(self, outcomes):
        failure_free, _, __, at_least_once, ___ = outcomes
        assert at_least_once > failure_free

    def test_dedup_actually_fired(self, outcomes):
        *_, report = outcomes
        assert report.robustness.replay_deduped > 0
        assert report.replay.deduped == report.robustness.replay_deduped

    def test_lost_effects_were_reapplied(self, outcomes):
        *_, report = outcomes
        assert report.robustness.replay_reapplied > 0

    def test_exactness_survives_batching(self):
        runtime_ff, _ = run_sim(FaultSchedule(), batch_max_events=16,
                                batch_linger_s=0.002, **EXACT)
        runtime_eo, _ = run_sim(crash_schedule(), batch_max_events=16,
                                batch_linger_s=0.002, **EXACT)
        assert total_counted(runtime_eo) == total_counted(runtime_ff)

    def test_exactness_survives_two_crashes(self):
        schedule = (FaultSchedule(seed=7)
                    .crash(0.9, "m002", recover_at=1.8)
                    .crash(2.2, "m003", recover_at=3.1))
        runtime_ff, _ = run_sim(FaultSchedule(), **EXACT)
        runtime_eo, _ = run_sim(schedule, **EXACT)
        assert total_counted(runtime_eo) == total_counted(runtime_ff)

    def test_watermarks_never_leak_into_slate_views(self):
        runtime, _ = run_sim(crash_schedule(), **EXACT)
        for fields in runtime.slates_of("U1").values():
            assert set(fields) == {"count"}
        assert set(runtime.slate("U1", "k0")) == {"count"}


class TestDeterminism:
    """Two seeded runs must agree to the byte."""

    @pytest.mark.parametrize("batching", [
        {}, {"batch_max_events": 16, "batch_linger_s": 0.002},
    ], ids=["unbatched", "batched"])
    def test_seeded_crash_runs_are_byte_identical(self, batching):
        runtime_a, report_a = run_sim(crash_schedule(), **batching, **EXACT)
        runtime_b, report_b = run_sim(crash_schedule(), **batching, **EXACT)
        assert report_a.counter_report() == report_b.counter_report()
        assert runtime_a.slates_of("U1") == runtime_b.slates_of("U1")


class TestEpochCheckpoints:
    def test_epochs_run_and_prune_the_journal(self):
        runtime, report = run_sim(FaultSchedule(), **EXACT)
        # 6 s horizon at 0.5 s epochs: 12 barriers, master-coordinated.
        assert report.robustness.checkpoint_epochs == 12
        assert report.master_stats["checkpoint_epochs"] == 12
        assert report.robustness.epoch_pruned > 0
        # Bounded journal: far fewer entries resident than recorded.
        assert len(runtime.replay_journal) < report.replay.recorded / 4

    def test_counter_report_carries_replay_lines(self):
        _, report = run_sim(FaultSchedule(), horizon=0.1, **EXACT)
        lines = report.counter_report().splitlines()
        assert any(line.startswith("replay.recorded=") for line in lines)
        assert any(line.startswith("replay.deduped=") for line in lines)
        assert any(line.startswith("robustness.checkpoint_epochs=")
                   for line in lines)

    def test_replay_lines_all_zero_when_knob_off(self):
        _, report = run_sim(FaultSchedule(), horizon=0.1)
        lines = report.counter_report().splitlines()
        for name in ("recorded", "pruned", "replayed", "deduped"):
            assert f"replay.{name}=0" in lines


class TestThrottleFinishAtEndOfRun:
    def test_open_pause_interval_closed_by_run(self):
        """Regression: a run that ends while the sources are paused must
        still account the final open pause interval (and close it, so a
        later finish() cannot double-count)."""
        throttle = SourceThrottle(high_watermark=0.5, low_watermark=0.2)
        config_kwargs = dict(
            overflow=OverflowPolicy.throttle(), throttle=throttle,
            queue_capacity=16, threads_per_machine=1,
            flush_policy=FlushPolicy.every(FLUSH))
        config = SimConfig(**config_kwargs)
        source = constant_rate("S1", rate_per_s=20_000.0, duration_s=2.0,
                               key_fn=lambda i: f"k{i % 4}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=1),
                             config, [source], failures=FaultSchedule())
        report = runtime.run(0.5)   # end mid-storm, while paused
        assert throttle.paused
        assert throttle._paused_since is None          # interval closed
        assert report.throttle_paused_s > 0.0
        before = throttle.paused_time_s
        throttle.finish(now=99.0)                      # idempotent
        assert throttle.paused_time_s == before
