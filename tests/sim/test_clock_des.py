"""Virtual clock and the deterministic event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.des import Simulator


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_callable_protocol(self):
        clock = VirtualClock(5.0)
        assert clock() == 5.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_no_time_travel(self):
        clock = VirtualClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda s: order.append("c"))
        sim.schedule(1.0, lambda s: order.append("a"))
        sim.schedule(2.0, lambda s: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_priority_then_fifo(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda s: order.append("second"), priority=1)
        sim.schedule(1.0, lambda s: order.append("first"), priority=-1)
        sim.schedule(1.0, lambda s: order.append("third"), priority=1)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_follows_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda s: seen.append(s.now()))
        sim.run()
        assert seen == [2.5]

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        hits = []

        def recur(s):
            hits.append(s.now())
            if len(hits) < 5:
                s.schedule_in(1.0, recur)

        sim.schedule(0.0, recur)
        sim.run()
        assert hits == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, lambda s: ran.append(1))
        sim.schedule(5.0, lambda s: ran.append(5))
        sim.run_until(3.0)
        assert ran == [1]
        assert sim.now() == 3.0
        assert sim.pending() == 1

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule(5.0, lambda s: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda s: None)

    def test_max_steps_guard(self):
        sim = Simulator(max_steps=10)

        def forever(s):
            s.schedule_in(0.1, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError, match="max_steps"):
            sim.run()

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            order = []
            for i in range(20):
                sim.schedule((i * 7) % 5 * 1.0,
                             lambda s, i=i: order.append(i))
            sim.run()
            return order

        assert run_once() == run_once()


class TestCancellableTimers:
    """schedule_cancellable backs the batching linger: a cancelled timer
    must cost nothing — no callback, no clock advance, no step."""

    def test_cancelled_action_never_runs(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_cancellable(1.0, lambda s: fired.append(1))
        handle.cancel()
        sim.run_until(5.0)
        assert fired == []

    def test_cancelled_entry_is_free(self):
        sim = Simulator()
        sim.schedule_cancellable(1.0, lambda s: None).cancel()
        sim.schedule(2.0, lambda s: None)
        sim.run_until(5.0)
        assert sim.steps == 1      # only the live event counts

    def test_uncancelled_timer_fires_normally(self):
        sim = Simulator()
        fired = []
        sim.schedule_cancellable(1.0, lambda s: fired.append(s.now()))
        sim.run_until(5.0)
        assert fired == [1.0]

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        handle = sim.schedule_cancellable(1.0, lambda s: None)
        sim.run_until(5.0)
        steps = sim.steps
        handle.cancel()            # late cancel: no error, no effect
        sim.run_until(6.0)
        assert sim.steps == steps

    def test_mixes_with_plain_events_deterministically(self):
        order = []
        sim = Simulator()
        sim.schedule(1.0, lambda s: order.append("plain"))
        sim.schedule_cancellable(1.0, lambda s: order.append("keep"))
        drop = sim.schedule_cancellable(1.0, lambda s: order.append("drop"))
        drop.cancel()
        sim.run_until(2.0)
        assert order == ["plain", "keep"]
