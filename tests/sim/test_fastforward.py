"""Hybrid fast-forwarding: identity with the exact engine, determinism,
fallback boundaries, and fusion-eligibility fallbacks.

The contract under test (see :mod:`repro.sim.fastforward`): a fused
hybrid run performs the *same* state transitions in the *same* order as
the exact engine — ``counter_report()`` and final slates are identical,
not merely statistically close — and inline advancement never jumps
over a heap-scheduled fault, timer, or ring change. Ineligible
configurations must fall back to exact mode (recorded with a reason)
rather than silently approximate.
"""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.core import Application, Updater
from repro.faults import FaultSchedule
from repro.sim import (ENGINE_MUPPET1, SimConfig, SimRuntime, constant_rate,
                       create_runtime)
from repro.sim.fastforward import FastForwardRuntime
from repro.sim.sources import Source
from repro.shedding.controller import SheddingConfig
from tests.conftest import EchoMapper, build_count_app, make_events


def _chain_app() -> Application:
    """S1 -> M1 -> S2 -> M2 -> S3 -> U1: the E1 pipeline shape."""
    app = Application("ff-chain")
    app.add_stream("S1", external=True)
    app.add_stream("S2")
    app.add_stream("S3")
    app.add_mapper("M1", EchoMapper, subscribes=["S1"], publishes=["S2"],
                   config={"output_sid": "S2"})
    app.add_mapper("M2", EchoMapper, subscribes=["S2"], publishes=["S3"],
                   config={"output_sid": "S3"})
    app.add_updater("U1", CountSum, subscribes=["S3"])
    return app.validate()


class CountSum(Updater):
    """Count + sum per key: order-insensitive fields, but byte-compared."""

    def init_slate(self, key):
        return {"count": 0, "total": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1
        slate["total"] += event.value or 0


class Windowed(Updater):
    """Sets one timer per key on the first event (fallback-boundary probe)."""

    def init_slate(self, key):
        return {"count": 0, "fired": 0}

    def update(self, ctx, event, slate):
        if slate["count"] == 0:
            ctx.set_timer(event.ts + 0.5)
        slate["count"] += 1

    def on_timer(self, ctx, key, slate, payload=None):
        slate["fired"] += 1


def _fingerprint(runtime, report):
    """Everything the identity contract covers, as one comparable blob."""
    return (json.dumps(report.counter_report(), sort_keys=True, default=str),
            json.dumps(runtime.slates_of("U1"), sort_keys=True))


def _run(app, config, sources_fn, horizon, failures=(), machines=4):
    runtime = create_runtime(app, ClusterSpec.uniform(machines, cores=4),
                             config, sources_fn(), failures=failures)
    report = runtime.run(horizon)
    return runtime, report


def _e1_sources(n=4_000, spacing=0.0002, keys=64):
    return lambda: [Source("S1", iter(make_events(n, keys=keys,
                                                  spacing=spacing)))]


class TestIdentityWithExact:
    """Hybrid vs exact: byte-identical reports and slates, same config."""

    def test_e1_style_dense_pipeline(self):
        sources = _e1_sources()
        exact = _run(_chain_app(), SimConfig(), sources, 6.0)
        hybrid = _run(_chain_app(), SimConfig(fastforward=True), sources, 6.0)
        assert hybrid[0].ff.mode == "fused"
        assert _fingerprint(*exact) == _fingerprint(*hybrid)
        # Same DES trajectory, not just same endpoint.
        assert exact[1].steps == hybrid[1].steps

    def test_quiescent_gaps_are_inlined_not_approximated(self):
        # 50 ms spacing dwarfs per-event service time: almost every step
        # chains through the trampoline, and the totals still match.
        sources = _e1_sources(n=200, spacing=0.05, keys=8)
        exact = _run(_chain_app(), SimConfig(), sources, 12.0)
        hybrid = _run(_chain_app(), SimConfig(fastforward=True), sources,
                      12.0)
        assert hybrid[0].sim.inlined_steps > 0
        assert _fingerprint(*exact) == _fingerprint(*hybrid)

    def test_e6d_style_seeded_chaos(self):
        # Crash + revive one machine mid-run under a seeded schedule:
        # loss accounting, recovery, and rehydration all on the cold
        # paths the fused engine delegates to.
        def schedule():
            return FaultSchedule(seed=7).crash(0.55, "m001", recover_at=1.4)

        def sources():
            return [constant_rate("S1", rate_per_s=1500.0, duration_s=2.0,
                                  key_fn=lambda i: f"k{i % 32}")]

        cfg = dict(queue_capacity=100_000, kill_kv_on_machine_failure=True)
        exact = _run(build_count_app(), SimConfig(**cfg), sources, 4.0,
                     failures=schedule())
        hybrid = _run(build_count_app(), SimConfig(fastforward=True, **cfg),
                      sources, 4.0, failures=schedule())
        assert hybrid[0].ff.mode == "fused"
        assert exact[1].robustness.recoveries == 1
        assert (json.dumps(exact[1].counter_report(), sort_keys=True,
                           default=str)
                == json.dumps(hybrid[1].counter_report(), sort_keys=True,
                              default=str))
        assert exact[0].slates_of("U1") == hybrid[0].slates_of("U1")


class TestThreeRunDeterminism:
    def test_hybrid_reports_identical_across_runs(self):
        def one():
            runtime, report = _run(_chain_app(),
                                   SimConfig(fastforward=True),
                                   _e1_sources(n=2_000), 6.0)
            assert runtime.ff.mode == "fused"
            return _fingerprint(runtime, report)

        first, second, third = one(), one(), one()
        assert first == second == third


class TestFallbackBoundary:
    """Inline advancement must stop at every heap-scheduled cold event."""

    def test_scheduled_fault_in_a_quiescent_gap_still_fires(self):
        # One event burst, then nothing: the crash at t=2.0 sits inside
        # a long quiescent stretch the trampoline is fast-forwarding.
        def sources():
            return [Source("S1", iter(make_events(60, keys=6,
                                                  spacing=0.001)))]

        schedule = FaultSchedule(seed=3).crash(2.0, "m002", recover_at=3.0)
        runtime, report = _run(build_count_app(),
                               SimConfig(fastforward=True), sources, 5.0,
                               failures=schedule)
        assert runtime.ff.mode == "fused"
        assert report.robustness.recoveries == 1
        assert runtime.machines["m002"].alive

    def test_timers_fire_despite_inline_advancement(self):
        app = Application("ff-windowed")
        app.add_stream("S1", external=True)
        app.add_updater("U1", Windowed, subscribes=["S1"])
        app.validate()

        def sources():
            return [Source("S1", iter(make_events(40, keys=10,
                                                  spacing=0.05)))]

        exact = _run(app, SimConfig(), sources, 6.0)
        hybrid = _run(app, SimConfig(fastforward=True), sources, 6.0)
        fired = sum(v["fired"] for v in hybrid[0].slates_of("U1").values())
        assert fired == 10  # one timer per key, none skipped
        assert _fingerprint(*exact) == _fingerprint(*hybrid)

    def test_ring_change_broadcast_is_not_skipped(self):
        def sources():
            return [Source("S1", iter(make_events(60, keys=12,
                                                  spacing=0.001)))]

        def with_join(ff):
            runtime = create_runtime(
                build_count_app(), ClusterSpec.uniform(3, cores=4),
                SimConfig(fastforward=ff), sources())
            # t=1.5 lies in the post-burst quiescent stretch.
            runtime.schedule_add_machine(1.5, "m900", cores=4)
            report = runtime.run(4.0)
            return runtime, report

        exact = with_join(False)
        hybrid = with_join(True)
        assert hybrid[0].ff.mode == "fused"
        assert "m900" in hybrid[0].machines
        assert "m900" in hybrid[0]._machine_ring.live_members
        assert _fingerprint(*exact) == _fingerprint(*hybrid)


class TestFusionEligibility:
    """Blocked configurations fall back to exact mode, with a reason."""

    @pytest.mark.parametrize("cfg_kwargs, reason_part", [
        (dict(engine=ENGINE_MUPPET1), "muppet2"),
        (dict(trace=True), "tracing"),
        (dict(replay_horizon_s=1.0), "replay"),
        (dict(delivery_semantics="effectively-once"), "replay"),
        (dict(batch_max_events=64), "batching"),
        (dict(shedding=SheddingConfig()), "shedding"),
    ])
    def test_blocked_config_falls_back_to_exact(self, cfg_kwargs,
                                                reason_part):
        runtime = create_runtime(
            build_count_app(), ClusterSpec.uniform(3, cores=4),
            SimConfig(fastforward=True, **cfg_kwargs),
            [Source("S1", iter(make_events(50)))])
        assert isinstance(runtime, FastForwardRuntime)
        assert runtime.ff.mode == "exact"
        assert reason_part in runtime.ff.reason
        # Exact fallback still runs correctly end to end.
        runtime.run(3.0)
        total = sum(v["count"] for v in runtime.slates_of("U1").values())
        assert total == 50

    def test_fastforward_off_builds_plain_runtime(self):
        runtime = create_runtime(
            build_count_app(), ClusterSpec.uniform(3, cores=4),
            SimConfig(), [Source("S1", iter(make_events(10)))])
        assert type(runtime) is SimRuntime

    def test_ff_summary_shape(self):
        runtime, _ = _run(_chain_app(), SimConfig(fastforward=True),
                          _e1_sources(n=500), 4.0)
        summary = runtime.ff_summary()
        assert summary["mode"] == "fused"
        assert summary["reason"] is None
        assert summary["inlined_steps"] + summary["heap_steps"] > 0
