"""The master heartbeat sweep (SimConfig.heartbeat_s).

Failure detection is otherwise sender-side only: a machine that
crashes during a quiet window — no subsequent sends target it — is
never declared failed, its journal is never replayed, and dirty slate
state dies with its cache. The model checker found this as the
``epoch_lazy_detection`` counterexample; the opt-in heartbeat closes
it. Default stays ``None`` so every committed baseline is untouched.
"""

import pytest

from repro.analysis.mc.models import MODELS
from repro.analysis.mc.properties import check_terminal_state
from repro.errors import ConfigurationError
from repro.sim import SimConfig


def _terminal_violations(model_name, scenario_index=0):
    model = MODELS[model_name]
    scenario = model.scenarios()[scenario_index]
    runtime = scenario.build()
    runtime.run(model.horizon_s)
    return [v for v in check_terminal_state(
        model, runtime, model.reference_slates())
        if v.prop == "exactness"]


def test_quiet_window_crash_loses_updates_without_heartbeat():
    violations = _terminal_violations("epoch_lazy_detection")
    assert violations, (
        "expected the quiet-window lost update; did sender-side "
        "detection grow a liveness sweep?")


def test_heartbeat_sweep_closes_the_quiet_window():
    # Same crash placement, heartbeat on: the sweep declares the quiet
    # victim, the journal replays, and every count is exact. The crash
    # lattice points of the epoch model start at index 1 (0 is
    # fault-free).
    model = MODELS["epoch"]
    assert model.build_config().heartbeat_s is not None
    for index in range(len(model.scenarios())):
        assert _terminal_violations("epoch", index) == []


def test_heartbeat_config_is_validated():
    assert SimConfig().heartbeat_s is None
    SimConfig(heartbeat_s=0.5)  # valid
    with pytest.raises(ConfigurationError):
        SimConfig(heartbeat_s=0.0)
    with pytest.raises(ConfigurationError):
        SimConfig(heartbeat_s=-1.0)


def test_heartbeat_off_is_deterministic():
    """heartbeat_s=None keeps the historical schedule: two identical
    heartbeat-off runs replay byte-identically (counters and slates),
    so the opt-in flag cannot have perturbed committed baselines."""
    lazy = MODELS["epoch_lazy_detection"]
    assert lazy.build_config().heartbeat_s is None
    first = lazy.scenarios()[0].build()
    second = lazy.scenarios()[0].build()
    first.run(lazy.horizon_s)
    second.run(lazy.horizon_s)
    assert first.counters.snapshot() == second.counters.snapshot()
    assert first.slates_of("U1", read_through=True) \
        == second.slates_of("U1", read_through=True)
