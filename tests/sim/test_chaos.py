"""Chaos tests: the full failure-and-recovery path under fault injection.

These drive the acceptance criteria of the recovery subsystem:

* A machine killed mid-run and revived rejoins the ring, re-hydrates its
  slates lazily from the replicated kv-store, and hinted handoff drains
  to zero — with event loss bounded by the flush interval.
* Two runs of the same seeded :class:`FaultSchedule` produce
  byte-identical counter reports, probabilistic rules included.
* A transient kv-node outage produces nonzero retry/backoff counters and
  zero ``StoreError`` escapes into operator code.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.faults import FaultSchedule
from repro.kvstore.api import ConsistencyLevel
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy, RetryPolicy
from tests.conftest import build_count_app


RATE, DURATION, FLUSH, KEYS = 2000.0, 3.0, 0.2, 64


def run_chaos(schedule, horizon=6.0, **config_kwargs):
    config_kwargs.setdefault("flush_policy", FlushPolicy.every(FLUSH))
    config_kwargs.setdefault("queue_capacity", 100_000)
    config = SimConfig(**config_kwargs)
    source = constant_rate("S1", rate_per_s=RATE, duration_s=DURATION,
                           key_fn=lambda i: f"k{i % KEYS}")
    runtime = SimRuntime(build_count_app(), ClusterSpec.uniform(4, cores=4),
                         config, [source], failures=schedule)
    report = runtime.run(horizon)
    return runtime, report


def total_counted(runtime):
    return sum(v["count"] for v in runtime.slates_of("U1").values())


class TestCrashAndRecover:
    """The headline acceptance test: kill a machine mid-run, revive it."""

    @pytest.fixture(scope="class")
    def recovered(self):
        schedule = FaultSchedule(seed=42).crash(1.05, "m001",
                                                recover_at=2.0)
        runtime, report = run_chaos(schedule,
                                    kill_kv_on_machine_failure=True)
        baseline_runtime, baseline_report = run_chaos(
            FaultSchedule(), kill_kv_on_machine_failure=True)
        return runtime, report, baseline_runtime, baseline_report

    def test_machine_rejoins_the_ring(self, recovered):
        runtime, report, _, __ = recovered
        machine = runtime.machines["m001"]
        assert machine.alive
        assert "m001" in runtime._machine_ring.live_members
        assert report.robustness.recoveries == 1
        # Post-recovery, the ring actually routes keys to it again.
        owners = {runtime._machine_ring.lookup(f"k{i}")
                  for i in range(KEYS)}
        assert "m001" in owners

    def test_recovery_broadcast_mirrors_failure_broadcast(self, recovered):
        _, report, __, ___ = recovered
        assert report.master_stats["broadcasts_sent"] == 1
        assert report.master_stats["recovery_reports"] == 1
        assert report.master_stats["recovery_broadcasts"] == 1

    def test_slates_rehydrate_from_the_kv_store(self, recovered):
        runtime, report, _, __ = recovered
        assert report.robustness.rehydrated_slates > 0
        # The revived machine serves live slates again.
        machine = runtime.machines["m001"]
        managers = ([machine.central_mgr] if machine.central_mgr
                    else [w.mgr for w in machine.workers])
        assert sum(len(m.cache) for m in managers if m) > 0

    def test_hinted_handoff_drains_to_zero(self, recovered):
        runtime, report, _, __ = recovered
        assert report.robustness.hints_stored > 0
        assert report.robustness.hints_delivered == \
            report.robustness.hints_stored
        assert report.robustness.hints_pending == 0
        assert runtime.store.pending_hints() == 0

    def test_loss_bounded_by_flush_interval(self, recovered):
        runtime, report, baseline_runtime, _ = recovered
        counted = total_counted(runtime)
        baseline = total_counted(baseline_runtime)
        # Documented bound: unflushed updates accumulated over at most one
        # flush interval on the dead machine, plus events queued/in-flight
        # at the crash (counted as lost_failure), plus one per-key
        # in-progress update.
        bound = RATE * FLUSH + report.counters.lost_failure + KEYS
        assert counted <= baseline  # at-most-once: never over-counts
        assert counted >= baseline - bound

    def test_no_overcount_per_key(self, recovered):
        runtime, _, baseline_runtime, __ = recovered
        baseline = baseline_runtime.slates_of("U1")
        for key, slate in runtime.slates_of("U1").items():
            assert slate["count"] <= baseline[key]["count"]


class TestDeterminism:
    """Same seeded schedule, same workload → byte-identical reports."""

    def test_crash_recover_reports_identical(self):
        def one_run():
            schedule = FaultSchedule(seed=42).crash(1.05, "m001",
                                                    recover_at=2.0)
            _, report = run_chaos(schedule,
                                  kill_kv_on_machine_failure=True)
            return report.counter_report()

        assert one_run() == one_run()

    def test_probabilistic_rules_identical(self):
        """drop/delay/partition draw from the schedule's seeded RNG, so
        even coin flips and jitter replay identically."""
        def one_run():
            schedule = (FaultSchedule(seed=9)
                        .drop(0.5, until=1.5, probability=0.02)
                        .delay(1.0, until=2.0, extra_s=0.002,
                               jitter_s=0.003, machine="m002")
                        .partition(1.8, ["m003"], until=2.2))
            _, report = run_chaos(schedule)
            return report.counter_report()

        first = one_run()
        assert first == one_run()
        # The rules actually fired (the report is not vacuously equal).
        assert "dropped_injected=0\n" not in first
        assert "delayed_injected=0\n" not in first

    def test_different_seed_diverges(self):
        def one_run(seed):
            schedule = FaultSchedule(seed=seed).drop(0.5, until=2.5,
                                                     probability=0.05)
            _, report = run_chaos(schedule)
            return report.counter_report()

        assert one_run(1) != one_run(2)


class TestKvOutageRetry:
    """Transient kv outages are absorbed by retry/backoff/fail-open."""

    def test_retries_backoff_and_no_store_error_escapes(self):
        # Two of four replicas down at QUORUM: flushes fail transiently,
        # the manager retries with backoff, then fails open; no
        # StoreError ever reaches operator code (the run would raise).
        schedule = (FaultSchedule()
                    .kv_outage(1.0, "m001", until=1.8)
                    .kv_outage(1.0, "m002", until=1.8))
        runtime, report = run_chaos(schedule,
                                    consistency=ConsistencyLevel.QUORUM)
        rob = report.robustness
        assert rob.kv_retries > 0
        assert rob.kv_backoff_s > 0.0
        assert rob.fail_open_writes > 0
        # The outage ended: hints drained, stream completed undropped.
        assert rob.hints_pending == 0
        assert total_counted(runtime) == int(RATE * DURATION)

    def test_fail_open_write_leaves_slate_dirty_for_next_flush(self):
        schedule = (FaultSchedule()
                    .kv_outage(1.0, "m001", until=1.8)
                    .kv_outage(1.0, "m002", until=1.8))
        runtime, report = run_chaos(schedule,
                                    consistency=ConsistencyLevel.QUORUM)
        # After the outage, later flush cycles retried the dirty slates:
        # nothing is left dirty at shutdown (final flush succeeds).
        for machine in runtime.machines.values():
            managers = ([machine.central_mgr] if machine.central_mgr
                        else [w.mgr for w in machine.workers])
            for mgr in managers:
                if mgr is not None:
                    assert sum(1 for _ in mgr.cache.dirty_slates()) == 0

    def test_strict_retry_policy_propagates(self):
        """fail_open=False restores the old raise-through behaviour."""
        from repro.errors import StoreError

        schedule = (FaultSchedule()
                    .kv_outage(1.0, "m001", until=1.8)
                    .kv_outage(1.0, "m002", until=1.8))
        with pytest.raises(StoreError):
            run_chaos(schedule, consistency=ConsistencyLevel.QUORUM,
                      kv_retry=RetryPolicy.none(fail_open=False))


class TestGrayFailure:
    def test_slow_node_degrades_latency_and_is_counted(self):
        schedule = FaultSchedule().slow(0.5, "m001", until=2.5,
                                        cpu_factor=8.0)
        _, healthy = run_chaos(FaultSchedule())
        _, grayed = run_chaos(schedule)
        assert grayed.robustness.gray_slow_s > 0.0
        assert grayed.latency.p99 > healthy.latency.p99
        # Gray failure is the failure nobody detects: no broadcast.
        assert grayed.master_stats["broadcasts_sent"] == 0

    def test_partition_losses_counted_separately(self):
        schedule = FaultSchedule().partition(1.0, ["m001"], until=1.5)
        runtime, report = run_chaos(schedule)
        assert report.robustness.lost_partition > 0
        # Partition loss is injected loss, not detected machine failure.
        assert total_counted(runtime) < int(RATE * DURATION)


class TestLegacyKillListCompat:
    def test_plain_kill_list_still_works(self):
        runtime, report = run_chaos([(1.0, "m001")])
        assert report.master_stats["broadcasts_sent"] == 1
        assert report.counters.lost_failure > 0
        assert runtime.fault_schedule.kill_list() == [(1.0, "m001")]
