"""Simulated failures (Section 4.3) and overflow policies (Sections 4.3/5)."""

import pytest

from repro.cluster import ClusterSpec
from repro.muppet.queues import OverflowPolicy, SourceThrottle
from repro.sim import (ENGINE_MUPPET1, ENGINE_MUPPET2, SimConfig,
                       SimRuntime, constant_rate)
from repro.core import Application
from tests.conftest import CountingUpdater, EchoMapper, build_count_app


def source(n=400, keys=20, rate=400.0):
    return constant_rate("S1", rate_per_s=rate, duration_s=n / rate,
                         key_fn=lambda i: f"k{i % keys}")


class TestMachineFailure:
    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_failure_detected_and_rerouted(self, engine):
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(4, cores=4),
                             SimConfig(engine=engine), [source()],
                             failures=[(0.5, "m001")])
        report = runtime.run(3.0)
        # Failure is detected quickly (one send + two network hops).
        assert report.failure_detection_s is not None
        assert report.failure_detection_s < 0.1
        assert report.master_stats["broadcasts_sent"] == 1
        # Bounded loss; the rest of the stream flows on. Note the total
        # can fall short by more than lost_failure: updates processed on
        # the dead machine whose slates were not yet flushed are lost
        # too ("whatever changes ... not yet flushed ... are lost").
        assert 0 < report.counters.lost_failure < 200
        total = sum(v["count"]
                    for v in runtime.slates_of("U1").values())
        assert 300 <= total <= 400
        # Keys owned by surviving machines are complete: 400/20 = 20 per
        # key; at least half the keys must be fully counted.
        complete = sum(1 for v in runtime.slates_of("U1").values()
                       if v["count"] == 20)
        assert complete >= 10

    def test_no_failure_no_loss(self):
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(4, cores=4),
                             SimConfig(), [source()])
        report = runtime.run(3.0)
        assert report.counters.lost_failure == 0
        assert report.failure_detection_s is None

    def test_unflushed_slates_lost_on_failure(self):
        """Section 4.3: unflushed slate changes on the dead machine are
        lost; flushed state survives in the kv-store."""
        from repro.slates.manager import FlushPolicy

        cfg = SimConfig(flush_policy=FlushPolicy.every(1000.0))  # never
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(3, cores=4), cfg,
                             [source()], failures=[(0.6, "m001")])
        runtime.run(3.0)
        machine = runtime.machines["m001"]
        mgr = machine.central_mgr
        assert mgr is not None
        assert mgr.stats.lost_dirty_on_crash > 0

    def test_events_on_dead_machine_queue_are_lost(self):
        cfg = SimConfig()
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(3, cores=1), cfg,
                             [source(rate=2000.0, n=1000)],
                             failures=[(0.2, "m002")])
        report = runtime.run(4.0)
        assert report.counters.lost_failure > 0


class TestOverflowPolicies:
    def overloaded_config(self, **kwargs):
        """One slow machine, tiny queues → guaranteed overflow."""
        return SimConfig(queue_capacity=10, **kwargs)

    def overloaded_cluster(self):
        return ClusterSpec.uniform(1, cores=1)

    def hot_source(self):
        # Single key: everything lands on one worker.
        return constant_rate("S1", rate_per_s=20_000, duration_s=0.2,
                             key_fn=lambda i: "hot")

    def test_drop_policy_drops_and_counts(self):
        cfg = self.overloaded_config(overflow=OverflowPolicy.drop())
        runtime = SimRuntime(build_count_app(), self.overloaded_cluster(),
                             cfg, [self.hot_source()])
        report = runtime.run(5.0)
        assert report.counters.dropped_overflow > 0
        processed = runtime.slate("U1", "hot")["count"]
        assert processed < 4000

    def test_divert_policy_feeds_degraded_path(self):
        app = Application("degraded")
        app.add_stream("S1", external=True)
        app.add_stream("S2")
        app.add_stream("S_ovf", overflow=True)
        app.add_mapper("M1", EchoMapper, subscribes=["S1"],
                       publishes=["S2"])
        app.add_updater("U1", CountingUpdater, subscribes=["S2"])
        app.add_updater("U_cheap", CountingUpdater, subscribes=["S_ovf"])
        cfg = self.overloaded_config(
            overflow=OverflowPolicy.divert("S_ovf"))
        # Two threads: the hot key saturates one; the degraded path's
        # events can land on the other and actually get served.
        runtime = SimRuntime(app, ClusterSpec.uniform(1, cores=2), cfg,
                             [self.hot_source()])
        report = runtime.run(10.0)
        assert report.counters.diverted_overflow_stream > 0
        cheap = runtime.slate("U_cheap", "hot")
        assert cheap is not None and cheap["count"] > 0

    def test_throttle_policy_loses_nothing(self):
        """Source throttling: longer latency, complete processing (§5)."""
        cfg = self.overloaded_config(
            overflow=OverflowPolicy.throttle(),
            throttle=SourceThrottle(high_watermark=0.8,
                                    low_watermark=0.3))
        source_ = constant_rate("S1", rate_per_s=5_000, duration_s=0.2,
                                key_fn=lambda i: "hot")
        runtime = SimRuntime(build_count_app(), self.overloaded_cluster(),
                             cfg, [source_])
        report = runtime.run(20.0)
        assert report.counters.dropped_overflow == 0
        assert runtime.slate("U1", "hot")["count"] == 1000
        assert report.throttle_paused_s > 0  # sources actually paused
