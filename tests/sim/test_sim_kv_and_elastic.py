"""Sim engine + kv-store interactions: consistency, kv failures, joins."""

import pytest

from repro.cluster import ClusterSpec
from repro.kvstore.api import ConsistencyLevel
from repro.sim import (ENGINE_MUPPET1, ENGINE_MUPPET2, SimConfig,
                       SimRuntime, constant_rate)
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app


def run(config, machines=3, rate=1000.0, duration=1.0, failures=()):
    source = constant_rate("S1", rate_per_s=rate, duration_s=duration,
                           key_fn=lambda i: f"k{i % 32}")
    runtime = SimRuntime(build_count_app(),
                         ClusterSpec.uniform(machines, cores=4), config,
                         [source], failures=failures)
    report = runtime.run(duration + 10.0)
    counted = sum(v["count"] for v in runtime.slates_of("U1").values())
    return runtime, report, counted


class TestConsistencyInEngines:
    @pytest.mark.parametrize("level", [ConsistencyLevel.ONE,
                                       ConsistencyLevel.QUORUM,
                                       ConsistencyLevel.ALL])
    def test_all_levels_count_correctly(self, level):
        config = SimConfig(consistency=level,
                           flush_policy=FlushPolicy.write_through())
        _, report, counted = run(config)
        assert counted == 1000
        assert report.counters.lost_total() == 0

    def test_stronger_levels_cost_more_io(self):
        """ALL waits on the slowest of three replicas: more sync cost."""
        def kv_busy(level):
            config = SimConfig(consistency=level,
                               flush_policy=FlushPolicy.write_through())
            runtime, _, __ = run(config)
            return sum(node.device.stats.busy_time_s
                       for node in runtime.store.nodes.values())

        assert kv_busy(ConsistencyLevel.ALL) >= \
            kv_busy(ConsistencyLevel.ONE)


class TestKvNodeFailure:
    def test_co_located_kv_death_survivable_with_replication(self):
        """kill_kv_on_machine_failure: the dead machine takes its kv
        node with it; rf=3 keeps slates readable."""
        config = SimConfig(kill_kv_on_machine_failure=True,
                           kv_replication=3,
                           flush_policy=FlushPolicy.write_through())
        runtime, report, counted = run(config, machines=4,
                                       failures=[(0.5, "m001")])
        # The stream continues; most events are counted.
        assert counted >= 800
        # The kv node really went down.
        assert runtime.store.nodes["m001"].is_down


class TestElasticUnderLoad:
    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_join_during_heavy_load(self, engine):
        config = SimConfig(engine=engine, queue_capacity=200_000)
        source = constant_rate("S1", rate_per_s=8000, duration_s=1.0,
                               key_fn=lambda i: f"k{i % 128}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=2), config,
                             [source])
        runtime.schedule_add_machine(0.5, "m_boost", cores=8)
        report = runtime.run(30.0)
        counted = sum(v["count"]
                      for v in runtime.slates_of("U1").values())
        # The rebalance barrier protects all *flushed* state, but an
        # event already in flight across the ring change can apply its
        # update to the old owner's orphaned cache copy — the exact
        # dual-owner hazard §5 describes. The loss bound is the
        # in-flight window (a handful of events at most).
        assert 8000 - 5 <= counted <= 8000
        assert report.counters.lost_total() == 0

    def test_join_then_failure(self):
        """A machine joins, another dies: both transitions compose."""
        config = SimConfig(queue_capacity=100_000)
        source = constant_rate("S1", rate_per_s=2000, duration_s=2.0,
                               key_fn=lambda i: f"k{i % 64}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(3, cores=4), config,
                             [source], failures=[(1.5, "m001")])
        runtime.schedule_add_machine(0.8, "m_new", cores=4)
        report = runtime.run(10.0)
        assert "m_new" in runtime.machines
        assert not runtime.machines["m001"].alive
        counted = sum(v["count"]
                      for v in runtime.slates_of("U1").values())
        # Bounded loss from the failure only.
        assert counted >= 3000
        assert report.master_stats["broadcasts_sent"] == 1
