"""Data-plane batching: config validation, determinism, and counters.

Event coalescing is a *transport* optimization — it may change how many
envelopes cross the simulated network and how many DES steps the run
takes, but never what any updater computes. These tests pin that
contract: batching on versus off yields byte-identical final slates and
an identical counter report once the batching-specific lines are
stripped.
"""

import json

import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.sim import SimConfig, SimRuntime, constant_rate, from_trace
from tests.conftest import build_count_app, build_two_stage_app, make_events


def run_with(config, app=None, events=None, machines=4, horizon=30.0):
    source = from_trace("S1", iter(events or make_events(600, keys=20,
                                                         spacing=0.002)))
    runtime = SimRuntime(app or build_count_app(),
                         ClusterSpec.uniform(machines, cores=4),
                         config, [source])
    report = runtime.run(horizon)
    return runtime, report


def stable_lines(report):
    """counter_report minus the lines batching is allowed to change:
    step count, dispatch memo/queue counters, and dataplane.* itself."""
    return [line for line in report.counter_report().splitlines()
            if not line.startswith(("steps=", "dispatch.", "dataplane."))]


class TestConfigValidation:
    def test_negative_batch_max_events_rejected(self):
        with pytest.raises(ConfigurationError,
                           match="batch_max_events must be >= 0"):
            SimConfig(batch_max_events=-1)

    def test_negative_batch_linger_rejected(self):
        with pytest.raises(ConfigurationError,
                           match="batch_linger_s must be >= 0"):
            SimConfig(batch_linger_s=-0.001)

    def test_zero_disables_batching(self):
        cfg = SimConfig(batch_max_events=0, batch_linger_s=0.0)
        _, report = run_with(cfg)
        assert report.dataplane.batches_sent == 0
        assert report.dataplane.batched_events == 0


class TestBatchingDeterminism:
    @pytest.mark.parametrize("app_builder", [build_count_app,
                                             build_two_stage_app])
    def test_final_slates_byte_identical(self, app_builder):
        off = SimConfig(batch_max_events=0)
        on = SimConfig(batch_max_events=32, batch_linger_s=0.004)
        rt_off, _ = run_with(off, app=app_builder())
        rt_on, _ = run_with(on, app=app_builder())
        updater = "U2" if app_builder is build_two_stage_app else "U1"
        assert (json.dumps(rt_off.slates_of(updater), sort_keys=True)
                == json.dumps(rt_on.slates_of(updater), sort_keys=True))

    def test_counter_report_identical_modulo_batching(self):
        _, rep_off = run_with(SimConfig(batch_max_events=0))
        _, rep_on = run_with(SimConfig(batch_max_events=32,
                                       batch_linger_s=0.004))
        assert stable_lines(rep_off) == stable_lines(rep_on)

    def test_batching_run_is_reproducible(self):
        """Two identical batched runs are bit-identical end to end —
        including every dataplane counter."""
        cfg = dict(batch_max_events=16, batch_linger_s=0.002)
        _, rep_a = run_with(SimConfig(**cfg))
        _, rep_b = run_with(SimConfig(**cfg))
        assert rep_a.counter_report() == rep_b.counter_report()

    def test_memoized_routing_matches_unmemoized(self):
        """Routing memos are a cache, not a policy change: placements,
        slates, and every non-memo counter agree with the cold path."""
        memo = SimConfig(memoize_routing=True)
        cold = SimConfig(memoize_routing=False)
        rt_memo, rep_memo = run_with(memo)
        rt_cold, rep_cold = run_with(cold)
        assert (json.dumps(rt_memo.slates_of("U1"), sort_keys=True)
                == json.dumps(rt_cold.slates_of("U1"), sort_keys=True))
        assert stable_lines(rep_memo) == stable_lines(rep_cold)


class TestBatchingCounters:
    def test_counters_account_for_all_batched_events(self):
        _, report = run_with(SimConfig(batch_max_events=16,
                                       batch_linger_s=0.002))
        dp = report.dataplane
        assert dp.batches_sent > 0
        assert dp.batched_events >= dp.batches_sent
        assert dp.max_batch_events <= 16
        assert (dp.size_flushes + dp.linger_flushes + dp.forced_flushes
                == dp.batches_sent)

    def test_size_trigger_fires_under_load(self):
        """A tiny size cap with a long linger must flush by size."""
        _, report = run_with(SimConfig(batch_max_events=2,
                                       batch_linger_s=5.0))
        assert report.dataplane.size_flushes > 0

    def test_linger_trigger_fires_on_sparse_traffic(self):
        source = constant_rate("S1", rate_per_s=50.0, duration_s=1.0,
                               key_fn=lambda i: f"k{i % 5}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(4, cores=4),
                             SimConfig(batch_max_events=1000,
                                       batch_linger_s=0.003),
                             [source])
        report = runtime.run(30.0)
        assert report.dataplane.linger_flushes > 0
        assert report.dataplane.size_flushes == 0

    def test_latency_bounded_by_linger(self):
        """The linger adds at most its own duration per batched hop.

        The count app crosses two machine-to-machine links (S1→M1 and
        S2→U1), so worst case is two lingers; the 1 ms slack covers the
        envelope's larger bandwidth term.
        """
        linger = 0.01
        _, rep_off = run_with(SimConfig(batch_max_events=0))
        _, rep_on = run_with(SimConfig(batch_max_events=1000,
                                       batch_linger_s=linger))
        assert rep_on.latency.maximum <= (rep_off.latency.maximum
                                          + 2 * linger + 1e-3)


class TestBatchingUnderFaults:
    def test_kill_flushes_pending_batches(self):
        """Killing a machine force-flushes its pending envelopes so the
        recovery path sees every in-flight event (dead-letter or
        reroute), never a silent drop."""
        from repro.faults import FaultSchedule

        from repro.slates.manager import FlushPolicy

        events = make_events(800, keys=20, spacing=0.002)  # 500 ev/s
        rate, keys, flush = 500.0, 20, 0.05
        schedule = FaultSchedule(seed=7).crash(0.5, "m001",
                                               recover_at=0.9)
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(4, cores=4),
                             SimConfig(batch_max_events=64,
                                       batch_linger_s=0.05,
                                       flush_policy=FlushPolicy.every(
                                           flush)),
                             [from_trace("S1", iter(events))],
                             failures=schedule)
        report = runtime.run(30.0)
        dp = report.dataplane
        assert dp.forced_flushes > 0
        counted = sum(v["count"]
                      for v in runtime.slates_of("U1").values())
        lost = report.counters.lost_total()
        # At-most-once, and loss beyond the explicitly counted
        # lost_failure is bounded by one unflushed slate interval on the
        # dead machine plus a per-key in-progress update — the same
        # bound the chaos suite documents.
        assert counted + lost <= len(events)
        assert counted + lost >= len(events) - (rate * flush + keys)
