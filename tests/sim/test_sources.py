"""Arrival processes for the simulator."""

import pytest

from repro.core.event import Event
from repro.errors import ConfigurationError
from repro.sim.sources import (constant_rate, from_trace, poisson_rate,
                               spiky_rate)


class TestConstantRate:
    def test_count_and_spacing(self):
        source = constant_rate("S1", rate_per_s=10, duration_s=2.0,
                               key_fn=lambda i: f"k{i}")
        events = list(source.events)
        assert len(events) == 20
        assert events[1].ts - events[0].ts == pytest.approx(0.1)

    def test_keys_and_values(self):
        source = constant_rate("S1", 5, 1.0, key_fn=lambda i: f"k{i}",
                               value_fn=lambda i: i * 10)
        events = list(source.events)
        assert events[3].key == "k3" and events[3].value == 30

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            constant_rate("S1", 0, 1.0, key_fn=str)


class TestPoissonRate:
    def test_seeded_determinism(self):
        a = list(poisson_rate("S1", 100, 1.0, key_fn=str, seed=42).events)
        b = list(poisson_rate("S1", 100, 1.0, key_fn=str, seed=42).events)
        assert a == b

    def test_rate_approximately_honored(self):
        events = list(poisson_rate("S1", 1000, 2.0, key_fn=str,
                                   seed=1).events)
        assert 1600 < len(events) < 2400  # ±20% of 2000

    def test_timestamps_within_duration_and_increasing(self):
        events = list(poisson_rate("S1", 100, 1.0, key_fn=str,
                                   seed=3).events)
        assert all(0 <= e.ts < 1.0 for e in events)
        assert all(a.ts <= b.ts for a, b in zip(events, events[1:]))


class TestSpikyRate:
    def test_phase_rates(self):
        source = spiky_rate("S1", [(10, 1.0), (100, 1.0), (10, 1.0)],
                            key_fn=str)
        events = list(source.events)
        assert len(events) == 120
        burst = [e for e in events if 1.0 <= e.ts < 2.0]
        assert len(burst) == 100

    def test_zero_rate_phase_is_a_gap(self):
        source = spiky_rate("S1", [(10, 1.0), (0, 5.0), (10, 1.0)],
                            key_fn=str)
        events = list(source.events)
        gap = [e for e in events if 1.0 <= e.ts < 6.0]
        assert gap == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            spiky_rate("S1", [], key_fn=str)
        with pytest.raises(ConfigurationError):
            spiky_rate("S1", [(10, -1.0)], key_fn=str)


class TestFromTrace:
    def test_wraps_event_list(self):
        events = [Event("S1", float(i), f"k{i}") for i in range(5)]
        assert list(from_trace("S1", events).events) == events

    def test_rejects_wrong_stream(self):
        events = [Event("S9", 0.0, "k")]
        with pytest.raises(ConfigurationError):
            list(from_trace("S1", events).events)

    def test_rejects_time_regression(self):
        events = [Event("S1", 2.0, "a"), Event("S1", 1.0, "b")]
        with pytest.raises(ConfigurationError):
            list(from_trace("S1", events).events)
