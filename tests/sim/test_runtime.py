"""SimRuntime: correctness and the Section 4/5 behaviours, both engines."""

import pytest

from repro.cluster import ClusterSpec
from repro.core import Application, ReferenceExecutor
from repro.sim import (ENGINE_MUPPET1, ENGINE_MUPPET2, SimConfig,
                       SimRuntime, constant_rate, from_trace)
from repro.workloads import CheckinGenerator
from repro.apps import build_retailer_app
from tests.conftest import build_count_app, build_two_stage_app


def count_source(n=200, keys=10, rate=200.0):
    return constant_rate("S1", rate_per_s=rate, duration_s=n / rate,
                         key_fn=lambda i: f"k{i % keys}")


def run_sim(app, engine=ENGINE_MUPPET2, machines=3, duration=4.0,
            sources=None, config=None, failures=(), cores=4):
    cfg = config or SimConfig(engine=engine)
    cfg.engine = engine
    runtime = SimRuntime(app, ClusterSpec.uniform(machines, cores=cores),
                         cfg, sources or [count_source()],
                         failures=failures)
    report = runtime.run(duration)
    return runtime, report


class TestCorrectnessBothEngines:
    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_counts_match_input(self, engine):
        runtime, report = run_sim(build_count_app(), engine=engine)
        total = sum(runtime.slate("U1", f"k{i}")["count"]
                    for i in range(10))
        assert total == 200
        assert report.counters.lost_total() == 0

    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_two_stage_counts(self, engine):
        runtime, _ = run_sim(build_two_stage_app(), engine=engine)
        total = sum(runtime.slate("U2", f"k{i}")["count"]
                    for i in range(10))
        assert total == 200

    @pytest.mark.parametrize("engine", [ENGINE_MUPPET1, ENGINE_MUPPET2])
    def test_matches_reference_executor(self, engine):
        """The distributed engines reach the reference slate fixpoint for
        commutative apps (Section 3's well-definedness, approximated)."""
        gen = CheckinGenerator(rate_per_s=300, seed=11)
        events, truth = gen.take_with_truth(600)
        reference = ReferenceExecutor(build_retailer_app()).run(
            list(events))
        ref_counts = {k: s["count"]
                      for k, s in reference.slates_of("U1").items()}
        assert ref_counts == truth

        runtime, report = run_sim(
            build_retailer_app(), engine=engine,
            sources=[from_trace("S1", events)], duration=6.0)
        sim_counts = {k: v["count"]
                      for k, v in runtime.slates_of("U1").items()
                      if v["count"]}
        assert sim_counts == truth
        assert report.counters.lost_total() == 0


class TestLatencyAndThroughput:
    def test_latency_recorded_at_updaters(self):
        _, report = run_sim(build_count_app())
        assert report.latency is not None
        assert report.latency.count == 200
        assert 0 < report.latency.p99 < 2.0  # the §5 bound

    def test_latency_by_updater(self):
        _, report = run_sim(build_two_stage_app())
        assert set(report.latency_by_updater) == {"U1", "U2"}
        # Downstream updater sees strictly more pipeline than upstream.
        assert report.latency_by_updater["U2"].mean > \
            report.latency_by_updater["U1"].mean

    def test_latency_sinks_filter(self):
        cfg = SimConfig(latency_sinks={"U2"})
        _, report = run_sim(build_two_stage_app(), config=cfg)
        assert set(report.latency_by_updater) == {"U2"}

    def test_throughput_report(self):
        _, report = run_sim(build_count_app(), duration=4.0)
        assert report.throughput.events == report.counters.processed
        assert report.events_per_second() == pytest.approx(
            report.counters.processed / 4.0)


class TestEngineDifferences:
    def test_muppet1_uses_more_memory(self):
        """Section 4.5: per-worker code copies waste memory."""
        cfg1 = SimConfig(engine=ENGINE_MUPPET1,
                         workers_per_function_per_machine=3)
        _, report1 = run_sim(build_count_app(), engine=ENGINE_MUPPET1,
                             config=cfg1)
        _, report2 = run_sim(build_count_app(), engine=ENGINE_MUPPET2)
        assert report1.memory_mb_per_machine > \
            2 * report2.memory_mb_per_machine

    def test_muppet2_two_choice_stats_populated(self):
        _, report = run_sim(build_count_app(), engine=ENGINE_MUPPET2)
        assert report.dispatch_stats["dispatched"] > 0
        assert report.dispatch_stats["queue_locks"] <= \
            2 * report.dispatch_stats["dispatched"]

    def test_slate_contention_bounded_to_two(self):
        _, report = run_sim(build_count_app(), engine=ENGINE_MUPPET2)
        assert report.max_workers_per_slate <= 2

    def test_muppet1_single_owner_no_contention(self):
        _, report = run_sim(build_count_app(), engine=ENGINE_MUPPET1)
        assert report.max_workers_per_slate == 1
        assert report.slate_contention_events == 0


class TestDeterminism:
    def test_identical_runs_identical_reports(self):
        def once():
            runtime, report = run_sim(build_count_app())
            return (report.counters.snapshot(),
                    report.latency.p99 if report.latency else None,
                    {k: v["count"]
                     for k, v in runtime.slates_of("U1").items()})

        assert once() == once()

    def test_determinism_with_failures_and_joins(self):
        """Failure injection and elastic joins keep runs bit-identical —
        the property the whole experiment suite rests on."""
        def once():
            runtime = SimRuntime(
                build_count_app(), ClusterSpec.uniform(3, cores=4),
                SimConfig(), [count_source(n=400, rate=400.0)],
                failures=[(0.6, "m001")])
            runtime.schedule_add_machine(0.4, "m_new", cores=4)
            report = runtime.run(5.0)
            return (report.counters.snapshot(),
                    report.failure_detection_s,
                    {k: v["count"]
                     for k, v in runtime.slates_of("U1").items()})

        assert once() == once()


class TestTimersInSim:
    def test_windowed_app_fires_timers(self):
        from repro.core import Updater

        class Windowed(Updater):
            def init_slate(self, key):
                return {"count": 0, "fired": 0}

            def update(self, ctx, event, slate):
                if slate["count"] == 0:
                    ctx.set_timer(event.ts + 0.5)
                slate["count"] += 1

            def on_timer(self, ctx, key, slate, payload=None):
                slate["fired"] += 1

        app = Application("w")
        app.add_stream("S1", external=True)
        app.add_updater("U1", Windowed, subscribes=["S1"])
        runtime, _ = run_sim(app, duration=5.0)
        fired = sum(v["fired"] for v in runtime.slates_of("U1").values())
        assert fired == 10  # one per key
