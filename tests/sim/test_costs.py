"""Cost models and the error hierarchy (small but load-bearing)."""

import pytest

import repro
from repro.errors import (ConfigurationError, QueueOverflowError,
                          QuorumError, ReproError, SlateError,
                          SlateTooLargeError, StoreError, TimestampError,
                          WorkflowError)
from repro.sim.costs import CostModel


class TestCostModel:
    def test_defaults_are_positive(self):
        costs = CostModel()
        assert costs.map_service_s > 0
        assert costs.update_service_s > 0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(map_service_s=-1.0)

    def test_map_time_scales_with_cost_factor(self):
        costs = CostModel(map_service_s=100e-6)
        assert costs.map_time(2.0) == pytest.approx(200e-6)

    def test_update_time_includes_slate_bytes(self):
        costs = CostModel(update_service_s=100e-6,
                          slate_byte_cost_s=1e-9)
        small = costs.update_time(1.0, slate_bytes=100)
        big = costs.update_time(1.0, slate_bytes=1_000_000)
        assert big > small
        assert big == pytest.approx(100e-6 + 1e-3)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, WorkflowError, TimestampError, SlateError,
        SlateTooLargeError, StoreError, QuorumError, QueueOverflowError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_workflow_is_configuration(self):
        assert issubclass(WorkflowError, ConfigurationError)

    def test_quorum_is_store(self):
        assert issubclass(QuorumError, StoreError)

    def test_slate_too_large_is_slate(self):
        assert issubclass(SlateTooLargeError, SlateError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.apps
        import repro.baselines
        import repro.cluster
        import repro.core
        import repro.kvstore
        import repro.muppet
        import repro.sim
        import repro.workloads

        for module in (repro.apps, repro.baselines, repro.cluster,
                       repro.core, repro.kvstore, repro.muppet,
                       repro.sim, repro.workloads):
            for name in module.__all__:
                # hasattr, not is-not-None: TTL_FOREVER is legitimately
                # the None sentinel.
                assert hasattr(module, name), \
                    f"{module.__name__}.{name}"
