"""Metrics: percentiles, recorders, throughput, table formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import (PAPER_LATENCY_BOUND_S, PAPER_TWEETS_PER_SECOND,
                           LatencyRecorder, RobustnessCounters,
                           ThroughputReport, format_ms, format_table,
                           percentile)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([3, 1, 2], 0.5) == 2

    def test_interpolates(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        samples = [5, 1, 9, 3]
        assert percentile(samples, 0.0) == 1
        assert percentile(samples, 1.0) == 9

    def test_single_sample(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=50),
           st.floats(min_value=0.0, max_value=1.0))
    def test_result_within_sample_range(self, samples, fraction):
        result = percentile(samples, fraction)
        assert min(samples) <= result <= max(samples)

    @given(st.lists(st.floats(min_value=0, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=50))
    def test_monotone_in_fraction(self, samples):
        p50 = percentile(samples, 0.5)
        p95 = percentile(samples, 0.95)
        assert p50 <= p95


class TestLatencyRecorder:
    def test_summary_fields(self):
        recorder = LatencyRecorder()
        recorder.extend([0.001, 0.002, 0.100])
        summary = recorder.summary()
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.103 / 3)
        assert summary.maximum == 0.100
        assert summary.p50 == 0.002

    def test_empty_summary_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().summary()

    def test_as_dict(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        snap = recorder.summary().as_dict()
        assert snap["count"] == 1 and snap["max"] == 1.0

    def test_len(self):
        recorder = LatencyRecorder()
        recorder.record(0.5)
        recorder.record(0.5)
        assert len(recorder) == 2


class TestThroughput:
    def test_rates(self):
        report = ThroughputReport(events=8640, seconds=10.0)
        assert report.events_per_second == 864.0
        assert report.events_per_day == pytest.approx(864.0 * 86_400)

    def test_zero_window(self):
        assert ThroughputReport(100, 0.0).events_per_second == 0.0

    def test_paper_constants(self):
        """Sanity-pin the §5 production numbers used across benches."""
        assert PAPER_TWEETS_PER_SECOND == pytest.approx(1157.4, abs=0.1)
        assert PAPER_LATENCY_BOUND_S == 2.0


class TestFormatMs:
    def test_none_renders_na(self):
        """Regression: benches used to multiply a None detection time and
        TypeError when no send ever touched the dead machine."""
        assert format_ms(None) == "n/a"
        assert format_ms(None, 0) == "n/a"

    def test_seconds_to_milliseconds(self):
        assert format_ms(0.00123) == "1.23"
        assert format_ms(1.5) == "1500.00"

    def test_digits(self):
        assert format_ms(0.0123456, 0) == "12"
        assert format_ms(0.0123456, 3) == "12.346"


class TestRobustnessCounters:
    def test_as_dict_round_trips_every_field(self):
        counters = RobustnessCounters(recoveries=1, kv_retries=3,
                                      gray_slow_s=0.5)
        snap = counters.as_dict()
        assert snap["recoveries"] == 1
        assert snap["kv_retries"] == 3
        assert snap["gray_slow_s"] == 0.5
        from dataclasses import fields
        assert set(snap) == {f.name for f in fields(counters)}


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:3])

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table
