"""Runner determinism, failure isolation, and resume-from-partial."""

import copy
import json

import pytest

from repro.campaign import artifact as art
from repro.campaign.runner import Runner
from repro.errors import ConfigurationError
from tests.campaign.toy import toy_spec


def run_payload(spec, **kwargs):
    return Runner(spec, workers=kwargs.pop("workers", 1)).run(**kwargs).payload


class TestRun:
    def test_rows_in_grid_order_with_merged_params(self):
        result = Runner(toy_spec()).run()
        assert result.ran == 4
        assert result.resumed == 0
        assert result.failed == 0
        assert result.verify_failures == []
        assert [row["params"] for row in result.rows] == [
            {"a": 1, "b": 3},
            {"a": 1, "b": 4},
            {"a": 2, "b": 3},
            {"a": 2, "b": 4},
        ]
        # fixed {"c": 5} reached the scenario; params stay grid-only.
        assert [row["metrics"]["sum"] for row in result.rows] == [18, 19, 28, 29]
        # every cell got its own hash-derived seed
        seeds = [row["metrics"]["seed_echo"] for row in result.rows]
        assert len(set(seeds)) == 4
        assert [row["seed"] for row in result.rows] == seeds

    def test_smoke_runs_the_reduced_grid(self):
        result = Runner(toy_spec()).run(smoke=True)
        assert [row["params"] for row in result.rows] == [{"a": 1, "b": 3}]

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            Runner(toy_spec(), workers=0)


class TestDeterminism:
    def test_repeat_runs_are_byte_identical(self):
        first = art.dumps_canonical(run_payload(toy_spec()))
        second = art.dumps_canonical(run_payload(toy_spec()))
        assert first == second

    def test_worker_count_does_not_change_bytes(self):
        sequential = art.dumps_canonical(run_payload(toy_spec(), workers=1))
        parallel = art.dumps_canonical(run_payload(toy_spec(), workers=4))
        assert sequential == parallel

    def test_artifact_has_no_timestamps(self):
        text = art.dumps_canonical(run_payload(toy_spec()))
        payload = json.loads(text)
        assert set(payload) == {
            "schema",
            "campaign",
            "description",
            "scenario",
            "spec_hash",
            "fixed",
            "volatile_metrics",
            "cells",
        }


class TestFailureIsolation:
    def brittle(self):
        return toy_spec(scenario="tests.campaign.toy:brittle_cell")

    def test_one_raising_cell_fails_alone(self, tmp_path):
        result = Runner(self.brittle()).run()
        assert result.failed == 1
        by_status = {row["status"] for row in result.rows}
        assert by_status == {"ok", "failed"}
        (failed,) = [row for row in result.rows if row["status"] == "failed"]
        assert failed["params"] == {"a": 2, "b": 3}
        assert "boom on a=2 b=3" in failed["error"]
        assert failed["metrics"] == {}
        # the artifact is still complete and loadable
        path = tmp_path / "toy.json"
        art.write_artifact(path, result.payload)
        assert len(art.load_artifact(path)["cells"]) == 4
        # and verification reports the failed cell
        assert any("boom" in f for f in result.verify_failures)

    def test_failure_is_isolated_under_worker_pool(self):
        result = Runner(self.brittle(), workers=4).run()
        assert result.failed == 1
        assert sum(row["status"] == "ok" for row in result.rows) == 3

    def test_non_scalar_metrics_fail_the_cell(self):
        spec = toy_spec(scenario="tests.campaign.toy:bad_metrics_cell")
        result = Runner(spec).run()
        assert result.failed == 4
        assert "non-scalar" in result.rows[0]["error"]


class TestResume:
    def test_resume_skips_ok_cells_and_reruns_the_rest(self):
        full = Runner(toy_spec()).run()
        partial = copy.deepcopy(full.payload)
        # one cell failed last time, one was never run
        partial["cells"][1]["status"] = "failed"
        partial["cells"][1]["metrics"] = {}
        del partial["cells"][3]
        result = Runner(toy_spec()).run(resume_from=partial)
        assert result.resumed == 2
        assert result.ran == 2
        # resuming converges to the exact same bytes as the full run
        assert art.dumps_canonical(result.payload) == art.dumps_canonical(
            full.payload
        )

    def test_resume_rejects_stale_spec(self):
        full = Runner(toy_spec()).run()
        with pytest.raises(ConfigurationError, match="different spec"):
            Runner(toy_spec(seed=8)).run(resume_from=full.payload)

    def test_full_resume_runs_nothing(self):
        full = Runner(toy_spec()).run()
        result = Runner(toy_spec()).run(resume_from=full.payload)
        assert result.ran == 0
        assert result.resumed == 4
