"""Toy campaign scenarios for the test suite.

These live in a real importable module (not a test file, not a closure)
because the runner hands workers ``"module:callable"`` references and
spawned worker processes import them fresh — exactly what production
specs do.
"""

from typing import Any, Dict, List, Mapping

from repro.campaign.spec import CampaignSpec

#: A module-level non-callable, for resolve_ref's error path.
TOY_CONSTANT = 42


def toy_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Deterministic arithmetic over the merged (fixed + grid) params."""
    return {
        "sum": int(params["a"]) * 10 + int(params["b"]) + int(params["c"]),
        "seed_echo": seed,
    }


def brittle_cell(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Raises on one specific cell; every other cell succeeds."""
    if params["a"] == 2 and params["b"] == 3:
        raise ValueError("boom on a=2 b=3")
    return {"value": int(params["a"]) * 100 + int(params["b"])}


def bad_metrics_cell(params: Mapping[str, Any], seed: int) -> Any:
    """Returns something that is not a flat scalar metrics dict."""
    return {"nested": {"not": "scalar"}}


def verify_toy(rows: List[Dict[str, Any]]) -> List[str]:
    return [
        f"cell {row['cell']}: negative sum"
        for row in rows
        if row["status"] == "ok" and row["metrics"].get("sum", 0) < 0
    ]


def summarize_toy(rows: List[Dict[str, Any]]) -> List[str]:
    total = sum(r["metrics"].get("sum", 0) for r in rows if r["status"] == "ok")
    return [f"- total sum across cells: {total}"]


def toy_spec(**overrides: Any) -> CampaignSpec:
    fields: Dict[str, Any] = dict(
        name="toy",
        description="toy campaign for the test suite",
        scenario="tests.campaign.toy:toy_cell",
        grid={"a": [1, 2], "b": [3, 4]},
        fixed={"c": 5},
        seed=7,
        smoke_grid={"a": [1], "b": [3]},
        verify="tests.campaign.toy:verify_toy",
        summarize="tests.campaign.toy:summarize_toy",
    )
    fields.update(overrides)
    return CampaignSpec(**fields)
