"""Spec validation, hook resolution, and TOML loading."""

import sys
from pathlib import Path

import pytest

from repro.campaign.spec import resolve_ref, spec_from_dict, spec_from_toml
from repro.errors import ConfigurationError
from tests.campaign.toy import toy_cell, toy_spec


class TestResolveRef:
    def test_resolves_module_callable(self):
        assert resolve_ref("tests.campaign.toy:toy_cell") is toy_cell

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError, match="module:callable"):
            resolve_ref("tests.campaign.toy.toy_cell")

    def test_rejects_missing_module(self):
        with pytest.raises(ConfigurationError, match="cannot import"):
            resolve_ref("tests.campaign.nope:toy_cell")

    def test_rejects_missing_attr(self):
        with pytest.raises(ConfigurationError, match="no attribute"):
            resolve_ref("tests.campaign.toy:nope")

    def test_rejects_non_callable(self):
        with pytest.raises(ConfigurationError, match="callable"):
            resolve_ref("tests.campaign.toy:TOY_CONSTANT")


class TestSpecValidation:
    def test_valid_spec_builds(self):
        spec = toy_spec()
        assert spec.grid_for(smoke=False) == {"a": [1, 2], "b": [3, 4]}
        assert spec.grid_for(smoke=True) == {"a": [1], "b": [3]}

    def test_smoke_falls_back_to_full_grid(self):
        spec = toy_spec(smoke_grid=None)
        assert spec.grid_for(smoke=True) == spec.grid

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            toy_spec(grid={})

    def test_non_scalar_grid_value_rejected(self):
        with pytest.raises(ConfigurationError, match="non-scalar"):
            toy_spec(grid={"a": [[1, 2]], "b": [3]}, smoke_grid=None)

    def test_string_grid_values_rejected(self):
        # A bare string is a Sequence; it must not count as a value list.
        with pytest.raises(ConfigurationError, match="sequence"):
            toy_spec(grid={"a": "12", "b": [3]}, smoke_grid=None)

    def test_fixed_and_swept_param_rejected(self):
        with pytest.raises(ConfigurationError, match="both fixed"):
            toy_spec(fixed={"a": 9})

    def test_smoke_grid_must_sweep_same_params(self):
        with pytest.raises(ConfigurationError, match="same parameters"):
            toy_spec(smoke_grid={"a": [1]})

    def test_smoke_grid_values_must_be_subset(self):
        with pytest.raises(ConfigurationError, match="outside the full grid"):
            toy_spec(smoke_grid={"a": [99], "b": [3]})

    def test_committed_path_default_and_override(self):
        root = Path("/repo")
        assert toy_spec().committed_path(root) == (
            root / "campaigns" / "results" / "toy.json"
        )
        spec = toy_spec(artifact="BENCH_TOY.json")
        assert spec.committed_path(root) == root / "BENCH_TOY.json"
        assert spec.markdown_path(root) == root / "campaigns" / "results" / "toy.md"


class TestSpecFromDict:
    def test_round_trip(self):
        spec = spec_from_dict(
            {
                "name": "toy",
                "description": "d",
                "scenario": "tests.campaign.toy:toy_cell",
                "grid": {"a": [1], "b": [2]},
                "fixed": {"c": 5},
                "seed": 7,
                "volatile_metrics": ["wall_s"],
            }
        )
        assert spec.name == "toy"
        assert spec.volatile_metrics == ("wall_s",)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown campaign spec"):
            spec_from_dict({"name": "x", "bogus": 1})

    def test_missing_required_key_rejected(self):
        with pytest.raises(ConfigurationError, match="missing 'scenario'"):
            spec_from_dict({"name": "x", "description": "d", "grid": {"a": [1]}})


TOY_TOML = """
name = "toy"
description = "toy campaign loaded from TOML"
scenario = "tests.campaign.toy:toy_cell"
seed = 7
volatile_metrics = ["seed_echo"]

[grid]
a = [1, 2]
b = [3, 4]

[fixed]
c = 5
"""


class TestSpecFromToml:
    @pytest.mark.skipif(sys.version_info < (3, 11), reason="needs tomllib")
    def test_loads_toml(self, tmp_path):
        path = tmp_path / "toy.toml"
        path.write_text(TOY_TOML)
        spec = spec_from_toml(path)
        assert spec.name == "toy"
        assert spec.grid == {"a": [1, 2], "b": [3, 4]}
        assert spec.fixed == {"c": 5}
        assert spec.seed == 7

    @pytest.mark.skipif(sys.version_info >= (3, 11), reason="tomllib present")
    def test_gated_below_311(self, tmp_path):
        path = tmp_path / "toy.toml"
        path.write_text(TOY_TOML)
        with pytest.raises(ConfigurationError, match="3.11"):
            spec_from_toml(path)
