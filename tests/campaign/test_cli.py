"""``python -m repro campaign`` end to end, against the toy campaign."""

import json
import sys
from pathlib import Path

import pytest

import repro.campaign.specs as specs
from repro.cli import main
from tests.campaign.toy import toy_spec


@pytest.fixture
def toy_registered(monkeypatch, tmp_path):
    """Register the toy campaign and run from a scratch repo root."""
    monkeypatch.setitem(specs.SPECS, "toy", toy_spec())
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestList:
    def test_lists_shipped_campaigns(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "capacity: 24 cells (smoke: 6)" in out
        assert "delivery_matrix: 9 cells (smoke: 6)" in out
        assert "perf_baseline: 4 cells" in out
        assert "BENCH_PERF.json" in out


class TestRun:
    def test_scratch_run_writes_default_paths(self, toy_registered, capsys):
        assert main(["campaign", "run", "toy"]) == 0
        out = capsys.readouterr().out
        assert "4 cells (full grid), 4 ran, 0 resumed, 0 failed" in out
        scratch = toy_registered / "campaigns" / "scratch"
        assert (scratch / "toy.json").exists()
        assert (scratch / "toy.md").exists()

    def test_update_writes_committed_paths(self, toy_registered, capsys):
        assert main(["campaign", "run", "toy", "--update"]) == 0
        results = toy_registered / "campaigns" / "results"
        assert (results / "toy.json").exists()
        assert (results / "toy.md").exists()

    def test_update_rejects_out(self, toy_registered, capsys):
        code = main(["campaign", "run", "toy", "--update", "--out", "x"])
        assert code == 2
        assert "drop --out" in capsys.readouterr().err

    def test_unknown_campaign_exits_2(self, capsys):
        assert main(["campaign", "run", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_verify_failure_exits_1(self, toy_registered, monkeypatch, capsys):
        brittle = toy_spec(scenario="tests.campaign.toy:brittle_cell")
        monkeypatch.setitem(specs.SPECS, "toy", brittle)
        assert main(["campaign", "run", "toy"]) == 1
        out = capsys.readouterr().out
        assert "VERIFY FAIL" in out

    def test_resume_skips_completed_cells(self, toy_registered, capsys):
        assert main(["campaign", "run", "toy", "--out", "fresh"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", "toy", "--out", "fresh", "--resume"]) == 0
        assert "0 ran, 4 resumed" in capsys.readouterr().out


class TestCheck:
    def run_and_check(self, *extra):
        assert main(["campaign", "run", "toy", "--update"]) == 0
        assert main(["campaign", "run", "toy", "--out", "fresh"]) == 0
        return main(["campaign", "check", "toy", "--fresh", "fresh", *extra])

    def test_identical_rerun_passes(self, toy_registered, capsys):
        assert self.run_and_check() == 0
        assert "4/4 committed cells re-ran byte-identically" in (
            capsys.readouterr().out
        )

    def test_missing_fresh_artifact_exits_2(self, toy_registered, capsys):
        assert main(["campaign", "run", "toy", "--update"]) == 0
        assert main(["campaign", "check", "toy", "--fresh", "fresh"]) == 2
        assert "no fresh artifact" in capsys.readouterr().out

    def test_metric_drift_fails(self, toy_registered, capsys):
        assert main(["campaign", "run", "toy", "--update"]) == 0
        assert main(["campaign", "run", "toy", "--out", "fresh"]) == 0
        fresh_path = Path("fresh") / "toy.json"
        payload = json.loads(fresh_path.read_text())
        payload["cells"][0]["metrics"]["sum"] += 1
        fresh_path.write_text(json.dumps(payload))
        assert main(["campaign", "check", "toy", "--fresh", "fresh"]) == 1
        assert "metrics differ" in capsys.readouterr().out


class TestRender:
    def test_rerenders_from_committed_artifact(self, toy_registered, capsys):
        assert main(["campaign", "run", "toy", "--update"]) == 0
        md_path = toy_registered / "campaigns" / "results" / "toy.md"
        md_path.unlink()
        assert main(["campaign", "render", "toy"]) == 0
        assert "## Summary" in md_path.read_text()


TOY_TOML = """
name = "toy-toml"
description = "toy campaign loaded from TOML"
scenario = "tests.campaign.toy:toy_cell"
seed = 7

[grid]
a = [1, 2]
b = [3, 4]

[fixed]
c = 5
"""


@pytest.mark.skipif(sys.version_info < (3, 11), reason="needs tomllib")
class TestTomlSpec:
    def test_run_from_toml_spec(self, toy_registered, capsys):
        spec_path = toy_registered / "toy.toml"
        spec_path.write_text(TOY_TOML)
        assert main(["campaign", "run", "--spec", str(spec_path)]) == 0
        assert (toy_registered / "campaigns" / "scratch" / "toy-toml.json").exists()

    def test_name_mismatch_rejected(self, toy_registered, capsys):
        spec_path = toy_registered / "toy.toml"
        spec_path.write_text(TOY_TOML)
        code = main(["campaign", "run", "other", "--spec", str(spec_path)])
        assert code == 2
        assert "defines campaign" in capsys.readouterr().err
