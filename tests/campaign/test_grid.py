"""Grid expansion, cell identity, and seed derivation."""

from repro.campaign.grid import Cell, cell_id, cell_seed, expand_grid

#: Pinned: the identity contract is part of the artifact format. If this
#: changes, every committed campaign artifact's resume/check keys break,
#: so a change here must be deliberate (and artifacts regenerated).
PINNED_TOY_CELL = "e1927ed7dd00"


class TestCellId:
    def test_pinned_hash(self):
        assert cell_id("toy", {"a": 1, "b": 3}) == PINNED_TOY_CELL

    def test_param_order_is_irrelevant(self):
        assert cell_id("toy", {"b": 3, "a": 1}) == PINNED_TOY_CELL

    def test_campaign_name_is_part_of_identity(self):
        assert cell_id("other", {"a": 1, "b": 3}) != PINNED_TOY_CELL

    def test_value_types_distinguish_cells(self):
        assert cell_id("toy", {"a": 1}) != cell_id("toy", {"a": 1.0})
        assert cell_id("toy", {"a": 1}) != cell_id("toy", {"a": "1"})


class TestCellSeed:
    def test_derivation(self):
        expected = (int(PINNED_TOY_CELL, 16) ^ 7) & 0x7FFFFFFF
        assert cell_seed(PINNED_TOY_CELL, 7) == expected == 2128076039

    def test_base_seed_changes_cell_seeds(self):
        assert cell_seed(PINNED_TOY_CELL, 0) != cell_seed(PINNED_TOY_CELL, 1)

    def test_fits_in_31_bits(self):
        assert 0 <= cell_seed("f" * 12, 0) <= 0x7FFFFFFF


class TestExpandGrid:
    def test_declaration_order_cross_product(self):
        cells = expand_grid("toy", {"a": [1, 2], "b": [3, 4]})
        assert [c.params for c in cells] == [
            {"a": 1, "b": 3},
            {"a": 1, "b": 4},
            {"a": 2, "b": 3},
            {"a": 2, "b": 4},
        ]
        assert [c.index for c in cells] == [0, 1, 2, 3]

    def test_duplicate_values_collapse(self):
        cells = expand_grid("toy", {"a": [1, 1, 2], "b": [3]})
        assert [c.params for c in cells] == [{"a": 1, "b": 3}, {"a": 2, "b": 3}]
        assert [c.index for c in cells] == [0, 1]

    def test_cells_carry_identity_and_seed(self):
        (cell,) = expand_grid("toy", {"a": [1], "b": [3]}, base_seed=7)
        assert isinstance(cell, Cell)
        assert cell.cell == PINNED_TOY_CELL
        assert cell.seed == cell_seed(PINNED_TOY_CELL, 7)

    def test_unique_ids_across_grid(self):
        cells = expand_grid("toy", {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert len({c.cell for c in cells}) == 9
