"""Artifact canonical form, the check comparison, and markdown."""

import copy
import json

import pytest

from repro.campaign import artifact as art
from repro.campaign.runner import Runner, summarize_rows
from repro.errors import ConfigurationError
from tests.campaign.toy import toy_spec


@pytest.fixture(scope="module")
def payload():
    return Runner(toy_spec()).run().payload


class TestCanonicalForm:
    def test_trailing_newline_and_sorted_keys(self, payload):
        text = art.dumps_canonical(payload)
        assert text.endswith("}\n")
        first_cell = json.loads(text)["cells"][0]
        assert list(first_cell) == sorted(first_cell)

    def test_load_rejects_missing_and_corrupt(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no campaign artifact"):
            art.load_artifact(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="corrupt"):
            art.load_artifact(bad)
        not_artifact = tmp_path / "plain.json"
        not_artifact.write_text("{}")
        with pytest.raises(ConfigurationError, match="not a campaign artifact"):
            art.load_artifact(not_artifact)


class TestCompare:
    def test_identical_artifacts_pass(self, payload):
        assert art.compare_artifacts(payload, payload, ()) == []

    def test_subset_fresh_passes(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["cells"] = fresh["cells"][:2]
        assert art.compare_artifacts(payload, fresh, ()) == []

    def test_volatile_metrics_are_ignored(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["cells"][0]["metrics"]["sum"] += 100
        assert art.compare_artifacts(payload, fresh, ("sum",)) == []
        (failure,) = art.compare_artifacts(payload, fresh, ())
        assert "metrics differ" in failure and "sum" in failure

    def test_unknown_fresh_cell_fails(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["cells"][0]["cell"] = "beefbeefbeef"
        (failure,) = art.compare_artifacts(payload, fresh, ())
        assert "missing from the committed artifact" in failure

    def test_status_drift_fails(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["cells"][0]["status"] = "failed"
        (failure,) = art.compare_artifacts(payload, fresh, ())
        assert "status" in failure

    def test_spec_hash_mismatch_short_circuits(self, payload):
        fresh = copy.deepcopy(payload)
        fresh["spec_hash"] = "000000000000"
        fresh["cells"][0]["metrics"]["sum"] += 1
        failures = art.compare_artifacts(payload, fresh, ())
        assert len(failures) == 1
        assert "spec hash mismatch" in failures[0]


class TestMarkdown:
    def test_renders_cells_and_summary(self, payload):
        spec = toy_spec()
        text = art.render_markdown(
            spec, payload, summarize_rows(spec, payload["cells"])
        )
        assert text.startswith("# Campaign `toy`")
        assert "| cell | a | b | status | sum | seed_echo |" in text
        assert payload["cells"][0]["cell"] in text
        assert "## Summary" in text
        assert "- total sum across cells: 94" in text
        assert "campaign run toy --update" in text

    def test_split_errors(self, payload):
        ok, failed = art.split_errors(payload["cells"])
        assert len(ok) == 4 and failed == []
