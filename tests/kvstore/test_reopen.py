"""Cold restarts: a StorageNode reopened from disk keeps everything."""

import itertools
from pathlib import Path


from repro.kvstore.node import StorageNode


def clock():
    counter = itertools.count()
    return lambda: float(next(counter))


class TestReopen:
    def test_flushed_data_survives_reopen(self, tmp_path: Path):
        node = StorageNode("n1", clock=clock(), data_dir=tmp_path)
        for i in range(20):
            node.put(f"row{i}", "U1", f"value{i}".encode())
        node.flush()
        del node

        reopened = StorageNode.open("n1", tmp_path, clock=clock())
        for i in range(20):
            assert reopened.get(f"row{i}", "U1")[0] == f"value{i}".encode()

    def test_unflushed_writes_survive_via_commit_log(self, tmp_path: Path):
        node = StorageNode("n1", clock=clock(), data_dir=tmp_path,
                           memtable_flush_bytes=1 << 30)
        node.put("precious", "U1", b"never-flushed")
        del node  # "process dies" without flushing

        reopened = StorageNode.open("n1", tmp_path, clock=clock())
        assert reopened.get("precious", "U1")[0] == b"never-flushed"

    def test_mixed_layers_latest_wins(self, tmp_path: Path):
        node = StorageNode("n1", clock=clock(), data_dir=tmp_path)
        node.put("row", "U1", b"v1")
        node.flush()
        node.put("row", "U1", b"v2")
        node.flush()
        node.put("row", "U1", b"v3")  # only in commit log
        del node

        reopened = StorageNode.open("n1", tmp_path, clock=clock())
        assert reopened.get("row", "U1")[0] == b"v3"

    def test_reopen_then_continue_writing(self, tmp_path: Path):
        node = StorageNode("n1", clock=clock(), data_dir=tmp_path)
        node.put("row", "U1", b"old")
        node.flush()
        del node

        reopened = StorageNode.open("n1", tmp_path, clock=clock())
        reopened.put("row", "U1", b"new")
        reopened.flush()
        reopened.compact()
        assert reopened.get("row", "U1")[0] == b"new"

    def test_replayed_log_survives_a_second_crash(self, tmp_path: Path):
        """Replayed mutations are re-logged, so reopen is idempotent."""
        node = StorageNode("n1", clock=clock(), data_dir=tmp_path,
                           memtable_flush_bytes=1 << 30)
        node.put("row", "U1", b"v")
        del node
        once = StorageNode.open("n1", tmp_path, clock=clock())
        del once
        twice = StorageNode.open("n1", tmp_path, clock=clock())
        assert twice.get("row", "U1")[0] == b"v"

    def test_empty_directory_opens_empty(self, tmp_path: Path):
        node = StorageNode.open("fresh", tmp_path, clock=clock())
        assert node.get("anything", "U1")[0] is None
        assert node.sstable_count == 0


class TestClusterReopen:
    def test_replicated_store_cold_restart(self, tmp_path: Path):
        from repro.kvstore.api import ConsistencyLevel
        from repro.kvstore.cluster import ReplicatedKVStore

        store = ReplicatedKVStore(["a", "b", "c"], replication_factor=2,
                                  clock=clock(), data_dir=tmp_path)
        for i in range(20):
            store.write(f"row{i}", "U1", f"v{i}".encode(),
                        consistency=ConsistencyLevel.ALL)
        store.flush_all()
        store.write("unflushed", "U1", b"via-log",
                    consistency=ConsistencyLevel.ALL)
        del store

        again = ReplicatedKVStore.reopen(["a", "b", "c"], tmp_path,
                                         replication_factor=2,
                                         clock=clock())
        for i in range(20):
            assert again.read(f"row{i}", "U1",
                              ConsistencyLevel.ALL).value == \
                f"v{i}".encode()
        # Commit-log-only data survives too.
        assert again.read("unflushed", "U1",
                          ConsistencyLevel.ALL).value == b"via-log"

    def test_reopen_then_write_more(self, tmp_path: Path):
        from repro.kvstore.cluster import ReplicatedKVStore

        store = ReplicatedKVStore(["a"], replication_factor=1,
                                  clock=clock(), data_dir=tmp_path)
        store.write("k", "c", b"v1")
        store.flush_all()
        del store
        again = ReplicatedKVStore.reopen(["a"], tmp_path,
                                         replication_factor=1,
                                         clock=clock())
        again.write("k", "c", b"v2")
        assert again.read("k", "c").value == b"v2"
