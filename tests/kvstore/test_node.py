"""StorageNode: LSM read/write paths, flush, compaction, crash recovery."""

import itertools
from pathlib import Path

import pytest

from repro.errors import StoreError
from repro.kvstore.node import StorageNode


def make_clock(step: float = 1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


def make_node(**kwargs) -> StorageNode:
    kwargs.setdefault("clock", make_clock())
    return StorageNode("n1", **kwargs)


class TestReadWrite:
    def test_put_then_get(self):
        node = make_node()
        node.put("r", "U1", b"v")
        value, _ = node.get("r", "U1")
        assert value == b"v"

    def test_get_absent(self):
        value, cost = make_node().get("r", "c")
        assert value is None

    def test_overwrite_returns_newest(self):
        node = make_node()
        node.put("r", "c", b"v1")
        node.put("r", "c", b"v2")
        assert node.get("r", "c")[0] == b"v2"

    def test_delete_hides_value(self):
        node = make_node()
        node.put("r", "c", b"v")
        node.delete("r", "c")
        assert node.get("r", "c")[0] is None

    def test_memtable_hit_is_free(self):
        node = make_node()
        node.put("r", "c", b"v")
        _, cost = node.get("r", "c")
        assert cost == 0.0
        assert node.stats.memtable_hits == 1

    def test_sstable_read_charges_device(self):
        node = make_node(memtable_flush_bytes=1)  # flush on every put
        node.put("r", "c", b"v")
        _, cost = node.get("r", "c")
        assert cost > 0.0
        assert node.stats.sstables_probed >= 1

    def test_ttl_expired_read_is_none(self):
        node = make_node()
        node.put("r", "c", b"v", ttl=0.5)  # clock steps 1.0 per call
        assert node.get("r", "c")[0] is None


class TestFlushAndCompaction:
    def test_flush_moves_memtable_to_sstable(self):
        node = make_node()
        node.put("r", "c", b"v")
        node.flush()
        assert node.memtable_bytes == 0
        assert node.sstable_count == 1
        assert node.get("r", "c")[0] == b"v"

    def test_flush_threshold_triggers_automatically(self):
        node = make_node(memtable_flush_bytes=200)
        for i in range(50):
            node.put(f"r{i}", "c", b"x" * 40)
        assert node.stats.flushes >= 1

    def test_compaction_threshold_collapses_runs(self):
        node = make_node(memtable_flush_bytes=1, compaction_threshold=4)
        for i in range(10):
            node.put(f"r{i}", "c", b"v")
        assert node.sstable_count < 4
        assert node.stats.compactions >= 1

    def test_compaction_purges_ttl_garbage(self):
        clock = make_clock(10.0)  # big steps so TTLs lapse quickly
        node = StorageNode("n", clock=clock, memtable_flush_bytes=1,
                           compaction_threshold=100)
        node.put("dead", "c", b"v", ttl=1.0)
        node.put("alive", "c", b"v")
        purged_before = node.stats.ttl_purged_cells
        node.compact()
        assert node.stats.ttl_purged_cells > purged_before
        assert node.get("alive", "c")[0] == b"v"
        assert node.get("dead", "c")[0] is None

    def test_more_flushes_more_files_to_check(self):
        """The paper's observation: un-compacted rows cost more probes."""
        node = make_node(memtable_flush_bytes=1, compaction_threshold=100)
        for i in range(6):
            node.put("hot", "c", f"v{i}".encode())
        many_runs = node.sstable_count
        node.get("hot", "c")
        assert many_runs == 6
        node.compact()
        assert node.sstable_count == 1

    def test_background_cost_accrues_and_drains(self):
        node = make_node()
        node.put("r", "c", b"v" * 1000)
        node.flush()
        assert node.pending_background_s > 0
        drained = node.take_background_cost()
        assert drained > 0
        assert node.take_background_cost() == 0.0


class TestCrashRecovery:
    def test_crash_loses_memtable_recover_replays_log(self):
        node = make_node()
        node.put("r", "c", b"precious")
        node.crash()
        with pytest.raises(StoreError):
            node.get("r", "c")
        replayed = node.recover()
        assert replayed == 1
        assert node.get("r", "c")[0] == b"precious"

    def test_flushed_data_survives_without_log(self):
        node = make_node()
        node.put("r", "c", b"v")
        node.flush()  # truncates the log
        node.crash()
        node.recover()
        assert node.get("r", "c")[0] == b"v"

    def test_on_disk_node_persists_sstables(self, tmp_path: Path):
        node = StorageNode("n", clock=make_clock(), data_dir=tmp_path)
        node.put("r", "c", b"v")
        node.flush()
        sst_files = list(tmp_path.glob("*.sst"))
        assert len(sst_files) == 1


class TestIntrospection:
    def test_total_cells_and_bytes(self):
        node = make_node()
        node.put("a", "c", b"v")
        node.put("b", "c", b"v")
        assert node.total_cells() == 2
        assert node.stored_bytes() > 0

    def test_stats_as_dict(self):
        node = make_node()
        node.put("r", "c", b"v")
        node.get("r", "c")
        snap = node.stats.as_dict()
        assert snap["puts"] == 1 and snap["gets"] == 1

    def test_absorbed_overwrites_visible(self):
        node = make_node()
        for i in range(10):
            node.put("hot", "c", f"{i}".encode())
        assert node.absorbed_overwrites == 9
