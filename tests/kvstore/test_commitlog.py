"""Commit log: append/replay/truncate, in-memory and on-disk."""

from pathlib import Path


from repro.kvstore.cells import Cell
from repro.kvstore.commitlog import CommitLog


def cells():
    return [Cell("r1", "c1", b"hello", 1.0),
            Cell("r2", "c2", None, 2.0),             # tombstone
            Cell("r3", "c3", bytes(range(256)), 3.0, ttl=60.0)]  # binary


class TestInMemoryLog:
    def test_append_and_replay_order(self):
        log = CommitLog()
        for cell in cells():
            log.append(cell)
        assert list(log.replay()) == cells()

    def test_truncate_empties(self):
        log = CommitLog()
        log.append(cells()[0])
        log.truncate()
        assert list(log.replay()) == []
        assert log.size_bytes == 0

    def test_size_grows(self):
        log = CommitLog()
        size = log.append(cells()[0])
        assert size > 0
        assert log.size_bytes == size


class TestOnDiskLog:
    def test_roundtrip_through_file(self, tmp_path: Path):
        path = tmp_path / "node.commitlog"
        log = CommitLog(path)
        for cell in cells():
            log.append(cell)
        assert list(log.replay()) == cells()

    def test_survives_reopen(self, tmp_path: Path):
        """Crash recovery: a new process replays the old file."""
        path = tmp_path / "node.commitlog"
        log = CommitLog(path)
        for cell in cells():
            log.append(cell)
        replayed = list(CommitLog.replay_file(path))
        assert replayed == cells()

    def test_fresh_log_truncates_stale_file(self, tmp_path: Path):
        path = tmp_path / "node.commitlog"
        path.write_text("garbage\n")
        log = CommitLog(path)
        assert list(log.replay()) == []

    def test_binary_values_preserved(self, tmp_path: Path):
        path = tmp_path / "bin.commitlog"
        log = CommitLog(path)
        payload = bytes(range(256))
        log.append(Cell("r", "c", payload, 0.0))
        assert list(log.replay())[0].value == payload

    def test_truncate_on_disk(self, tmp_path: Path):
        path = tmp_path / "node.commitlog"
        log = CommitLog(path)
        log.append(cells()[0])
        log.truncate()
        assert path.read_text() == ""
