"""Bloom filter: no false negatives; bounded false positives."""

import pytest

from repro.kvstore.bloom import BloomFilter


class TestBloomFilter:
    def test_contains_added_items(self):
        bloom = BloomFilter(expected_items=100)
        for i in range(100):
            bloom.add(f"item{i}")
        assert all(bloom.might_contain(f"item{i}") for i in range(100))

    def test_no_false_negatives_ever(self):
        bloom = BloomFilter(expected_items=10)  # deliberately undersized
        items = [f"x{i}" for i in range(1000)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_roughly_bounded(self):
        bloom = BloomFilter(expected_items=1000, false_positive_rate=0.01)
        for i in range(1000):
            bloom.add(f"present{i}")
        false_positives = sum(
            1 for i in range(10_000) if bloom.might_contain(f"absent{i}"))
        assert false_positives / 10_000 < 0.05  # 5x headroom over target

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(expected_items=10)
        assert not bloom.might_contain("anything")

    def test_len_counts_insertions(self):
        bloom = BloomFilter(expected_items=10)
        bloom.add("a")
        bloom.add("a")
        assert len(bloom) == 2

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=10, false_positive_rate=1.5)

    def test_sizing_grows_with_expected_items(self):
        small = BloomFilter(expected_items=10)
        large = BloomFilter(expected_items=10_000)
        assert large.size_bits > small.size_bits
        assert small.num_hashes >= 1
