"""Hinted handoff: writes missed during an outage catch up on rejoin."""

import itertools


from repro.kvstore.api import ConsistencyLevel
from repro.kvstore.cluster import ReplicatedKVStore


def make_store(nodes=3, rf=3):
    counter = itertools.count()
    return ReplicatedKVStore([f"n{i}" for i in range(nodes)],
                             replication_factor=rf,
                             clock=lambda: float(next(counter)))


class TestHintedHandoff:
    def test_hint_stored_for_down_replica(self):
        store = make_store()
        replicas = store.replicas_for("row")
        store.mark_down(replicas[0])
        store.write("row", "col", b"v", consistency=ConsistencyLevel.QUORUM)
        assert store.hints_stored == 1

    def test_hints_delivered_on_rejoin(self):
        store = make_store()
        replicas = store.replicas_for("row")
        victim = replicas[0]
        store.mark_down(victim)
        store.write("row", "col", b"missed",
                    consistency=ConsistencyLevel.QUORUM)
        store.mark_up(victim)
        assert store.hints_delivered == 1
        value, _ = store.nodes[victim].get("row", "col")
        assert value == b"missed"

    def test_recovered_node_serves_reads_alone(self):
        """After handoff, even a ONE read that lands on the recovered
        node returns the latest value (no read repair needed)."""
        store = make_store()
        replicas = store.replicas_for("row")
        victim = replicas[0]
        store.write("row", "col", b"v1", consistency=ConsistencyLevel.ALL)
        store.mark_down(victim)
        store.write("row", "col", b"v2",
                    consistency=ConsistencyLevel.QUORUM)
        store.mark_up(victim)
        for other in replicas[1:]:
            store.mark_down(other)  # force the read onto the victim
        assert store.read("row", "col",
                          ConsistencyLevel.ONE).value == b"v2"

    def test_tombstone_hints(self):
        store = make_store()
        replicas = store.replicas_for("row")
        victim = replicas[0]
        store.write("row", "col", b"v", consistency=ConsistencyLevel.ALL)
        store.mark_down(victim)
        store.delete("row", "col", ConsistencyLevel.QUORUM)
        store.mark_up(victim)
        value, _ = store.nodes[victim].get("row", "col")
        assert value is None

    def test_hint_buffer_bounded(self):
        store = make_store()
        store.max_hints_per_node = 10
        replicas = store.replicas_for("row")
        store.mark_down(replicas[0])
        for i in range(50):
            store.write("row", f"col{i}", b"v",
                        consistency=ConsistencyLevel.QUORUM)
        assert len(store._hints[replicas[0]]) == 10

    def test_overflow_evicts_oldest_and_counts(self):
        """The bounded deque drops the *oldest* hint on overflow and
        counts each eviction; the newest writes survive to delivery."""
        store = make_store()
        store.max_hints_per_node = 10
        victim = store.replicas_for("row")[0]
        store.mark_down(victim)
        for i in range(50):
            store.write("row", f"col{i}", b"v",
                        consistency=ConsistencyLevel.QUORUM)
        assert store.hints_stored == 50
        assert store.hints_evicted == 40
        assert store.pending_hints(victim) == 10
        kept = [hint.column for hint in store._hints[victim]]
        assert kept == [f"col{i}" for i in range(40, 50)]  # newest 10
        store.mark_up(victim)
        assert store.hints_delivered == 10
        assert store.pending_hints() == 0
        value, _ = store.nodes[victim].get("row", "col49")
        assert value == b"v"

    def test_pending_hints_accounting(self):
        store = make_store(nodes=4, rf=3)
        replicas = store.replicas_for("row")
        store.mark_down(replicas[0])
        store.mark_down(replicas[1])
        store.write("row", "col", b"v", consistency=ConsistencyLevel.ONE)
        assert store.pending_hints(replicas[0]) == 1
        assert store.pending_hints(replicas[1]) == 1
        assert store.pending_hints("nobody") == 0
        assert store.pending_hints() == 2
        store.mark_up(replicas[0])
        assert store.pending_hints() == 1

    def test_natural_replicas_do_not_migrate_during_outage(self):
        """Rows stay with their natural replica set; the down member is
        hinted, not replaced (Cassandra semantics)."""
        store = make_store(nodes=4, rf=3)
        before = store.replicas_for("row")
        store.mark_down(before[0])
        after = store.replicas_for("row")
        assert after == before
