"""Storage device cost models: SSD vs HDD asymmetry, accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.device import (HDD_PROFILE, SSD_PROFILE, StorageDevice,
                                  profile_for)


class TestProfiles:
    def test_lookup_by_name(self):
        assert profile_for("ssd") is SSD_PROFILE
        assert profile_for("hdd") is HDD_PROFILE

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_for("floppy")

    def test_hdd_random_reads_are_much_slower(self):
        """The paper's whole SSD argument (Section 4.2): random access."""
        ssd = SSD_PROFILE.random_read_time(1024)
        hdd = HDD_PROFILE.random_read_time(1024)
        assert hdd > 20 * ssd

    def test_sequential_gap_is_modest(self):
        """Streaming I/O differs far less between the devices."""
        ssd = SSD_PROFILE.sequential_time(10 ** 7)
        hdd = HDD_PROFILE.sequential_time(10 ** 7)
        assert hdd < 10 * ssd

    def test_size_increases_cost(self):
        assert SSD_PROFILE.random_read_time(10 ** 6) > \
            SSD_PROFILE.random_read_time(10)


class TestAccounting:
    def test_charges_accumulate(self):
        device = StorageDevice.ssd()
        t1 = device.charge_random_read(100)
        t2 = device.charge_random_write(100)
        t3 = device.charge_sequential_write(10_000)
        assert device.stats.random_reads == 1
        assert device.stats.random_writes == 1
        assert device.stats.sequential_bytes_written == 10_000
        assert device.stats.busy_time_s == pytest.approx(t1 + t2 + t3)

    def test_sequential_read_accounting(self):
        device = StorageDevice.hdd()
        device.charge_sequential_read(5_000)
        assert device.stats.sequential_bytes_read == 5_000

    def test_stats_as_dict(self):
        device = StorageDevice.ssd()
        device.charge_random_read(10)
        snap = device.stats.as_dict()
        assert snap["random_reads"] == 1
        assert snap["busy_time_s"] > 0
