"""Memtable: overwrite absorption (the Section 4.2 write-buffering claim)."""

from repro.kvstore.cells import Cell
from repro.kvstore.memtable import Memtable


class TestMemtable:
    def test_put_get(self):
        table = Memtable()
        table.put(Cell("r", "c", b"v", 1.0))
        assert table.get("r", "c").value == b"v"
        assert table.get("r", "other") is None

    def test_overwrite_keeps_newest(self):
        table = Memtable()
        table.put(Cell("r", "c", b"v1", 1.0))
        table.put(Cell("r", "c", b"v2", 2.0))
        assert table.get("r", "c").value == b"v2"
        assert len(table) == 1

    def test_absorbed_overwrites_counted(self):
        """'Overwrites of the same row ... are relatively inexpensive if
        the row is still in memory': 1000 writes → 1 cell, 999 absorbed."""
        table = Memtable()
        for i in range(1000):
            table.put(Cell("hot", "U1", f"v{i}".encode(), float(i)))
        assert len(table) == 1
        assert table.absorbed_overwrites == 999
        assert table.writes == 1000

    def test_size_tracks_current_cells_not_history(self):
        table = Memtable()
        table.put(Cell("r", "c", b"x" * 1000, 1.0))
        size_after_big = table.size_bytes
        table.put(Cell("r", "c", b"y", 2.0))
        assert table.size_bytes < size_after_big

    def test_tombstones_are_stored(self):
        table = Memtable()
        table.put(Cell("r", "c", None, 1.0))
        assert table.get("r", "c").is_tombstone

    def test_cells_sorted_for_flush(self):
        table = Memtable()
        table.put(Cell("b", "z", b"1", 1.0))
        table.put(Cell("a", "y", b"2", 1.0))
        table.put(Cell("a", "x", b"3", 1.0))
        keys = [c.key for c in table.cells_sorted()]
        assert keys == [("a", "x"), ("a", "y"), ("b", "z")]

    def test_rows_are_distinct(self):
        table = Memtable()
        table.put(Cell("a", "c1", b"", 1.0))
        table.put(Cell("a", "c2", b"", 1.0))
        table.put(Cell("b", "c1", b"", 1.0))
        assert sorted(table.rows()) == ["a", "b"]

    def test_clear_preserves_counters(self):
        table = Memtable()
        table.put(Cell("r", "c", b"v", 1.0))
        table.put(Cell("r", "c", b"w", 2.0))
        table.clear()
        assert len(table) == 0 and table.size_bytes == 0
        assert table.absorbed_overwrites == 1  # history kept for stats
