"""Property-based tests on the LSM node: it must behave like a map."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.node import StorageNode

rows = st.text(alphabet="abcdexyz", min_size=1, max_size=4)
columns = st.sampled_from(["U1", "U2", "U3"])
values = st.binary(min_size=0, max_size=64)

#: A workload: a list of (op, row, column, value) tuples.
operations = st.lists(
    st.tuples(st.sampled_from(["put", "delete", "flush", "compact"]),
              rows, columns, values),
    min_size=0, max_size=80)


def run_node(ops, **node_kwargs):
    counter = itertools.count()
    node = StorageNode("n", clock=lambda: float(next(counter)),
                       **node_kwargs)
    model = {}
    for op, row, column, value in ops:
        if op == "put":
            node.put(row, column, value)
            model[(row, column)] = value
        elif op == "delete":
            node.delete(row, column)
            model.pop((row, column), None)
        elif op == "flush":
            node.flush()
        else:
            node.compact()
    return node, model


class TestNodeActsLikeAMap:
    @settings(max_examples=60, deadline=None)
    @given(operations)
    def test_reads_match_model(self, ops):
        node, model = run_node(ops)
        for (row, column), expected in model.items():
            assert node.get(row, column)[0] == expected
        # Deleted/absent keys read as None.
        for op, row, column, _ in ops:
            if (row, column) not in model:
                assert node.get(row, column)[0] is None

    @settings(max_examples=30, deadline=None)
    @given(operations)
    def test_aggressive_flushing_changes_nothing(self, ops):
        """Tiny memtable (flush per write) must be semantically invisible."""
        node, model = run_node(ops, memtable_flush_bytes=1,
                               compaction_threshold=3)
        for (row, column), expected in model.items():
            assert node.get(row, column)[0] == expected

    @settings(max_examples=30, deadline=None)
    @given(operations)
    def test_crash_recovery_preserves_acknowledged_writes(self, ops):
        node, model = run_node(ops)
        node.crash()
        node.recover()
        for (row, column), expected in model.items():
            assert node.get(row, column)[0] == expected
