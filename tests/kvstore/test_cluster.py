"""Replicated store: placement, quorum levels, failures, read repair."""

import itertools

import pytest

from repro.errors import ConfigurationError, QuorumError
from repro.kvstore.api import ConsistencyLevel
from repro.kvstore.cluster import ReplicatedKVStore


def make_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


def make_store(nodes=4, rf=3, **kwargs) -> ReplicatedKVStore:
    kwargs.setdefault("clock", make_clock())
    return ReplicatedKVStore([f"n{i}" for i in range(nodes)],
                             replication_factor=rf, **kwargs)


class TestConsistencyLevels:
    def test_required_acks(self):
        assert ConsistencyLevel.ONE.required_acks(3) == 1
        assert ConsistencyLevel.QUORUM.required_acks(3) == 2
        assert ConsistencyLevel.QUORUM.required_acks(5) == 3
        assert ConsistencyLevel.ALL.required_acks(3) == 3

    def test_invalid_rf(self):
        with pytest.raises(ConfigurationError):
            ConsistencyLevel.ONE.required_acks(0)


class TestPlacement:
    def test_rf_distinct_replicas(self):
        store = make_store(nodes=5, rf=3)
        replicas = store.replicas_for("row1")
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_rf_capped_at_cluster_size(self):
        store = make_store(nodes=2, rf=3)
        assert store.replication_factor == 2

    def test_write_lands_on_replica_set(self):
        store = make_store()
        result = store.write("row", "col", b"v",
                             consistency=ConsistencyLevel.ALL)
        assert result.acks == 3
        holders = [name for name, node in store.nodes.items()
                   if node.get("row", "col")[0] == b"v"]
        assert sorted(holders) == sorted(result.replicas)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicatedKVStore([])


class TestReadWrite:
    def test_roundtrip(self):
        store = make_store()
        store.write("r", "c", b"hello")
        assert store.read("r", "c").value == b"hello"

    def test_read_absent(self):
        assert make_store().read("r", "c").value is None

    def test_last_write_wins(self):
        store = make_store()
        store.write("r", "c", b"v1")
        store.write("r", "c", b"v2")
        assert store.read("r", "c", ConsistencyLevel.ALL).value == b"v2"

    def test_delete(self):
        store = make_store()
        store.write("r", "c", b"v")
        store.delete("r", "c", ConsistencyLevel.ALL)
        assert store.read("r", "c", ConsistencyLevel.ALL).value is None

    def test_ttl_write_expires(self):
        store = make_store()
        store.write("r", "c", b"v", ttl=0.5)  # clock advances 1.0/call
        for _ in range(3):
            store.clock()
        assert store.read("r", "c").value is None


class TestFailures:
    def test_quorum_survives_one_failure(self):
        store = make_store(nodes=4, rf=3)
        result = store.write("r", "c", b"v", consistency=ConsistencyLevel.ALL)
        store.mark_down(result.replicas[0])
        read = store.read("r", "c", ConsistencyLevel.QUORUM)
        assert read.value == b"v"

    def test_all_fails_with_replica_down(self):
        store = make_store(nodes=3, rf=3)
        result = store.write("r", "c", b"v", consistency=ConsistencyLevel.ALL)
        store.mark_down(result.replicas[0])
        with pytest.raises(QuorumError):
            store.write("r", "c", b"v2", consistency=ConsistencyLevel.ALL)

    def test_quorum_fails_with_majority_down(self):
        store = make_store(nodes=3, rf=3)
        store.write("r", "c", b"v")
        store.mark_down("n0")
        store.mark_down("n1")
        with pytest.raises(QuorumError):
            store.read("r", "c", ConsistencyLevel.QUORUM)

    def test_one_still_succeeds_with_majority_down(self):
        store = make_store(nodes=3, rf=3)
        store.write("r", "c", b"v", consistency=ConsistencyLevel.ALL)
        store.mark_down("n0")
        store.mark_down("n1")
        assert store.read("r", "c", ConsistencyLevel.ONE).value == b"v"

    def test_recovered_node_rejoins(self):
        store = make_store(nodes=3, rf=3)
        store.write("r", "c", b"v", consistency=ConsistencyLevel.ALL)
        store.mark_down("n0")
        store.mark_up("n0")
        assert store.read("r", "c", ConsistencyLevel.ALL).value == b"v"

    def test_writes_during_outage_reach_survivors(self):
        store = make_store(nodes=4, rf=3)
        replicas = store.replicas_for("r")
        store.mark_down(replicas[0])
        result = store.write("r", "c", b"v", consistency=ConsistencyLevel.QUORUM)
        assert result.acks >= 2


class TestReadRepair:
    def test_stale_replica_repaired_on_quorum_read(self):
        store = make_store(nodes=3, rf=3)
        store.write("r", "c", b"v1", consistency=ConsistencyLevel.ALL)
        # One replica misses the second write (simulated outage).
        replicas = store.replicas_for("r")
        store.mark_down(replicas[2])
        store.write("r", "c", b"v2", consistency=ConsistencyLevel.QUORUM)
        store.mark_up(replicas[2])
        # Quorum read sees v2 and repairs.
        assert store.read("r", "c", ConsistencyLevel.ALL).value == b"v2"
        value, _ = store.nodes[replicas[2]].get("r", "c")
        assert value == b"v2"


class TestMaintenance:
    def test_flush_all_and_compact_all(self):
        store = make_store()
        for i in range(20):
            store.write(f"r{i}", "c", b"v" * 50)
        assert store.flush_all() >= 0.0
        assert store.compact_all() >= 0.0

    def test_total_accounting(self):
        store = make_store(nodes=2, rf=2)
        store.write("r", "c", b"v", consistency=ConsistencyLevel.ALL)
        assert store.total_cells() == 2  # one per replica
        assert store.stored_bytes() > 0

    def test_stats_by_node(self):
        store = make_store()
        store.write("r", "c", b"v")
        stats = store.stats_by_node()
        assert set(stats) == {"n0", "n1", "n2", "n3"}
        assert sum(s["puts"] for s in stats.values()) == 3


class TestColumnCells:
    def test_newest_live_cell_per_row(self):
        store = make_store(nodes=2, rf=2)
        store.write("r1", "U1", b"old", consistency=ConsistencyLevel.ALL)
        store.write("r1", "U1", b"new", consistency=ConsistencyLevel.ALL)
        store.write("r2", "U1", b"only")
        store.write("r3", "other", b"x")
        cells = store.column_cells("U1")
        assert set(cells) == {"r1", "r2"}
        assert cells["r1"].value == b"new"

    def test_excludes_tombstones_and_survives_flush(self):
        store = make_store(nodes=2, rf=2)
        store.write("gone", "U1", b"v", consistency=ConsistencyLevel.ALL)
        store.write("kept", "U1", b"v", consistency=ConsistencyLevel.ALL)
        store.delete("gone", "U1")
        store.flush_all()  # scan must reach into SSTables too
        assert set(store.column_cells("U1")) == {"kept"}

    def test_down_node_is_skipped(self):
        store = make_store(nodes=2, rf=1)
        for i in range(8):
            store.write(f"r{i}", "U1", b"v")
        before = set(store.column_cells("U1"))
        assert before == {f"r{i}" for i in range(8)}
        store.mark_down("n0")
        after = set(store.column_cells("U1"))
        assert after < before  # rf=1: the down node's rows disappear
