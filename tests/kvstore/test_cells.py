"""Cells: tombstones, TTL expiry, last-write-wins, sizing."""

from repro.kvstore.cells import Cell


class TestCellBasics:
    def test_key_is_row_column(self):
        cell = Cell("walmart", "U1", b"v", 1.0)
        assert cell.key == ("walmart", "U1")

    def test_value_cell_is_not_tombstone(self):
        assert not Cell("r", "c", b"v", 1.0).is_tombstone

    def test_tombstone(self):
        cell = Cell("r", "c", None, 1.0)
        assert cell.is_tombstone
        assert not cell.live(now=1.0)


class TestTTL:
    def test_no_ttl_never_expires(self):
        assert not Cell("r", "c", b"v", 0.0).expired(now=1e12)

    def test_expires_after_ttl(self):
        cell = Cell("r", "c", b"v", write_ts=10.0, ttl=5.0)
        assert not cell.expired(now=15.0)
        assert cell.expired(now=15.1)

    def test_live_combines_tombstone_and_ttl(self):
        live = Cell("r", "c", b"v", 0.0, ttl=10.0)
        assert live.live(now=5.0)
        assert not live.live(now=11.0)


class TestLastWriteWins:
    def test_newer_supersedes_older(self):
        old = Cell("r", "c", b"old", 1.0)
        new = Cell("r", "c", b"new", 2.0)
        assert new.supersedes(old)
        assert not old.supersedes(new)

    def test_tie_keeps_self(self):
        a = Cell("r", "c", b"a", 1.0)
        b = Cell("r", "c", b"b", 1.0)
        assert a.supersedes(b) and b.supersedes(a)

    def test_tombstone_can_supersede_value(self):
        value = Cell("r", "c", b"v", 1.0)
        delete = Cell("r", "c", None, 2.0)
        assert delete.supersedes(value)


class TestSizing:
    def test_size_includes_names_and_payload(self):
        small = Cell("r", "c", b"", 0.0)
        big = Cell("r", "c", b"x" * 100, 0.0)
        assert big.size_bytes() == small.size_bytes() + 100

    def test_tombstone_size_positive(self):
        assert Cell("row", "col", None, 0.0).size_bytes() > 0
