"""Keyspace/column-family scoping over one physical cluster."""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.cluster import ReplicatedKVStore
from repro.kvstore.keyspace import ColumnFamilyView, KeyspaceCatalog


def make_store():
    counter = itertools.count()
    return ReplicatedKVStore(["n0", "n1"], replication_factor=2,
                             clock=lambda: float(next(counter)))


class TestColumnFamilyView:
    def test_roundtrip(self):
        view = ColumnFamilyView(make_store(), "prod", "slates")
        view.write("walmart", "U1", b"v")
        assert view.read("walmart", "U1").value == b"v"

    def test_isolation_between_column_families(self):
        """Two Muppet applications on one cluster never collide."""
        store = make_store()
        app_a = ColumnFamilyView(store, "prod", "app_a")
        app_b = ColumnFamilyView(store, "prod", "app_b")
        app_a.write("walmart", "U1", b"from-a")
        app_b.write("walmart", "U1", b"from-b")
        assert app_a.read("walmart", "U1").value == b"from-a"
        assert app_b.read("walmart", "U1").value == b"from-b"

    def test_isolation_between_keyspaces(self):
        store = make_store()
        prod = ColumnFamilyView(store, "prod", "slates")
        staging = ColumnFamilyView(store, "staging", "slates")
        prod.write("k", "U1", b"p")
        assert staging.read("k", "U1").value is None

    def test_delete_scoped(self):
        store = make_store()
        a = ColumnFamilyView(store, "ks", "a")
        b = ColumnFamilyView(store, "ks", "b")
        a.write("k", "U1", b"v")
        b.write("k", "U1", b"v")
        a.delete("k", "U1")
        assert a.read("k", "U1").value is None
        assert b.read("k", "U1").value == b"v"

    def test_row_count_scoped(self):
        store = make_store()
        a = ColumnFamilyView(store, "ks", "a")
        b = ColumnFamilyView(store, "ks", "b")
        for i in range(5):
            a.write(f"k{i}", "U1", b"v")
        b.write("k", "U1", b"v")
        assert a.row_count() == 10  # 5 rows x 2 replicas
        assert b.row_count() == 2

    def test_identifier_validation(self):
        store = make_store()
        with pytest.raises(ConfigurationError):
            ColumnFamilyView(store, "", "cf")
        with pytest.raises(ConfigurationError):
            ColumnFamilyView(store, "ks", "bad\x00name")

    def test_slate_manager_runs_on_a_view(self):
        """The manager's store dependency is duck-typed: a column-family
        view drops in, giving each application its own namespace."""
        from repro.core.operators import Updater
        from repro.slates.manager import FlushPolicy, SlateManager

        class Count(Updater):
            def init_slate(self, key):
                return {"count": 0}

            def update(self, ctx, event, slate):
                slate["count"] += 1

        counter = itertools.count()
        clock = lambda: float(next(counter))
        store = ReplicatedKVStore(["n0"], replication_factor=1,
                                  clock=clock)
        view = ColumnFamilyView(store, "prod", "muppet_slates")
        manager = SlateManager(view, cache_capacity=1,
                               flush_policy=FlushPolicy.write_through(),
                               clock=clock)
        updater = Count(name="U1")
        slate = manager.get(updater, "walmart")
        slate["count"] = 9
        slate.touch(clock())
        manager.note_update(slate)
        manager.get(updater, "other")  # evict
        assert manager.get(updater, "walmart")["count"] == 9
        # The physical row is namespaced.
        assert store.read("walmart", "U1").value is None
        assert view.read("walmart", "U1").value is not None


class TestKeyspaceCatalog:
    def test_use_caches_views(self):
        catalog = KeyspaceCatalog(make_store())
        a1 = catalog.use("prod", "slates")
        a2 = catalog.use("prod", "slates")
        assert a1 is a2

    def test_listing(self):
        catalog = KeyspaceCatalog(make_store())
        catalog.use("prod", "slates")
        catalog.use("staging", "slates")
        assert catalog.column_families() == ["prod.slates",
                                             "staging.slates"]
