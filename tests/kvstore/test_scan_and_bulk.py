"""Row scans on the LSM node — the store-side bulk-read path (§5)."""

import itertools


from repro.kvstore.node import StorageNode


def make_node(**kwargs):
    counter = itertools.count()
    kwargs.setdefault("clock", lambda: float(next(counter)))
    return StorageNode("n", **kwargs)


class TestScanRow:
    def test_all_columns_of_a_row(self):
        """Muppet stores slate S(U,k) at row k, column U: scanning row k
        returns every updater's slate for that key."""
        node = make_node()
        node.put("walmart", "U1", b"count-slate")
        node.put("walmart", "U2", b"profile-slate")
        node.put("target", "U1", b"other-row")
        columns, _ = node.scan_row("walmart")
        assert columns == {"U1": b"count-slate", "U2": b"profile-slate"}

    def test_scan_spans_memtable_and_sstables(self):
        node = make_node(memtable_flush_bytes=1 << 30)
        node.put("row", "U1", b"flushed")
        node.flush()
        node.put("row", "U2", b"buffered")
        columns, _ = node.scan_row("row")
        assert columns == {"U1": b"flushed", "U2": b"buffered"}

    def test_newest_version_wins_across_layers(self):
        node = make_node(memtable_flush_bytes=1 << 30)
        node.put("row", "U1", b"old")
        node.flush()
        node.put("row", "U1", b"new")
        columns, _ = node.scan_row("row")
        assert columns == {"U1": b"new"}

    def test_deleted_and_expired_cells_excluded(self):
        node = make_node()
        node.put("row", "U1", b"v")
        node.delete("row", "U1")
        node.put("row", "U2", b"v", ttl=0.5)  # clock steps 1.0/call
        node.clock()
        columns, _ = node.scan_row("row")
        assert columns == {}

    def test_missing_row_is_empty(self):
        columns, cost = make_node().scan_row("ghost")
        assert columns == {}

    def test_scan_charges_io_for_disk_resident_cells(self):
        node = make_node(memtable_flush_bytes=1 << 30)
        for i in range(5):
            node.put("row", f"U{i}", b"v" * 100)
        node.flush()
        _, cost = node.scan_row("row")
        assert cost > 0
