"""SSTables: immutability, bloom gating, persistence, compaction merge."""

from pathlib import Path

from repro.kvstore.cells import Cell
from repro.kvstore.sstable import SSTable, merge_sstables


class TestSSTable:
    def test_point_lookup(self):
        table = SSTable([Cell("r", "c", b"v", 1.0)])
        assert table.get("r", "c").value == b"v"
        assert table.get("r", "x") is None

    def test_duplicate_keys_keep_newest(self):
        table = SSTable([Cell("r", "c", b"old", 1.0),
                         Cell("r", "c", b"new", 2.0)])
        assert table.get("r", "c").value == b"new"
        assert len(table) == 1

    def test_bloom_never_blocks_present_cells(self):
        cells = [Cell(f"r{i}", "c", b"v", 1.0) for i in range(500)]
        table = SSTable(cells)
        assert all(table.might_contain(f"r{i}", "c") for i in range(500))

    def test_bloom_rejects_most_absent_cells(self):
        table = SSTable([Cell(f"r{i}", "c", b"v", 1.0) for i in range(100)])
        hits = sum(1 for i in range(2000)
                   if table.might_contain(f"zz{i}", "c"))
        assert hits < 200  # mostly filtered

    def test_scan_row_returns_all_columns(self):
        table = SSTable([Cell("r", "U1", b"a", 1.0),
                         Cell("r", "U2", b"b", 1.0),
                         Cell("q", "U1", b"c", 1.0)])
        assert sorted(c.column for c in table.scan_row("r")) == ["U1", "U2"]

    def test_size_bytes_positive(self):
        assert SSTable([Cell("r", "c", b"v" * 100, 1.0)]).size_bytes > 100

    def test_generations_increase(self):
        t1 = SSTable([Cell("a", "c", b"", 1.0)])
        t2 = SSTable([Cell("a", "c", b"", 1.0)])
        assert t2.generation > t1.generation


class TestPersistence:
    def test_roundtrip_through_file(self, tmp_path: Path):
        path = tmp_path / "run.sst"
        cells = [Cell("r1", "c", bytes(range(256)), 1.0, ttl=5.0),
                 Cell("r2", "c", None, 2.0)]
        SSTable(cells, path=path)
        loaded = SSTable.load(path)
        assert loaded.get("r1", "c").value == bytes(range(256))
        assert loaded.get("r1", "c").ttl == 5.0
        assert loaded.get("r2", "c").is_tombstone

    def test_delete_file(self, tmp_path: Path):
        path = tmp_path / "run.sst"
        table = SSTable([Cell("r", "c", b"v", 1.0)], path=path)
        assert path.exists()
        table.delete_file()
        assert not path.exists()


class TestMergeSSTables:
    def test_newest_version_wins(self):
        old = SSTable([Cell("r", "c", b"old", 1.0)])
        new = SSTable([Cell("r", "c", b"new", 2.0)])
        merged = merge_sstables([old, new], now=3.0)
        assert merged.get("r", "c").value == b"new"

    def test_merge_order_does_not_matter(self):
        old = SSTable([Cell("r", "c", b"old", 1.0)])
        new = SSTable([Cell("r", "c", b"new", 2.0)])
        assert merge_sstables([new, old], now=3.0).get("r", "c").value == \
            b"new"

    def test_ttl_expired_cells_purged(self):
        """Section 4.2: TTL garbage collection happens at compaction."""
        table = SSTable([Cell("dead", "c", b"v", 0.0, ttl=1.0),
                         Cell("alive", "c", b"v", 0.0, ttl=100.0)])
        merged = merge_sstables([table], now=50.0)
        assert merged.get("dead", "c") is None
        assert merged.get("alive", "c") is not None

    def test_tombstones_dropped_in_full_merge(self):
        value = SSTable([Cell("r", "c", b"v", 1.0)])
        delete = SSTable([Cell("r", "c", None, 2.0)])
        merged = merge_sstables([value, delete], now=3.0)
        assert len(merged) == 0

    def test_tombstones_kept_when_requested(self):
        delete = SSTable([Cell("r", "c", None, 2.0)])
        merged = merge_sstables([delete], now=3.0, drop_tombstones=False)
        assert merged.get("r", "c").is_tombstone

    def test_merge_shrinks_redundant_runs(self):
        runs = [SSTable([Cell("r", "c", f"v{i}".encode(), float(i))])
                for i in range(5)]
        merged = merge_sstables(runs, now=10.0)
        assert len(merged) == 1
        assert merged.size_bytes < sum(t.size_bytes for t in runs)
