"""The fault lattice: deterministic small-scope schedule enumeration."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (CrashSite, FaultLattice, MigrationSite,
                          describe_schedule)


def _labels(lattice):
    return [describe_schedule(s) for s in lattice.schedules()]


def test_empty_schedule_first_then_declaration_order():
    lattice = FaultLattice(
        crashes=(CrashSite("m000", at_times=(0.1, 0.2),
                           recover_after=(0.5, None)),
                 CrashSite("m001", at_times=(0.3,))),
        max_faults=1)
    labels = _labels(lattice)
    assert labels[0] == "fault-free"
    # m000 placements: time-major, recovery-minor; then m001.
    assert labels[1:] == [
        "crash(m000@0.1)+recover(m000@0.6)",
        "crash(m000@0.1)",
        "crash(m000@0.2)+recover(m000@0.7)",
        "crash(m000@0.2)",
        "crash(m001@0.3)",
    ]
    # 1 empty + 2*2 + 1 single-site placements.
    assert len(lattice) == 6


def test_enumeration_is_deterministic():
    lattice = FaultLattice(
        crashes=(CrashSite("m000", at_times=(0.1,), recover_after=(0.5,)),),
        migrations=(MigrationSite(phases=("snapshot", "cutover"),
                                  targets=("donor", "receiver")),),
        max_faults=2)
    assert _labels(lattice) == _labels(lattice)


def test_max_faults_two_adds_cross_site_pairs():
    single = FaultLattice(
        crashes=(CrashSite("m000", at_times=(0.1,)),
                 CrashSite("m001", at_times=(0.2,))),
        max_faults=1)
    paired = FaultLattice(
        crashes=(CrashSite("m000", at_times=(0.1,)),
                 CrashSite("m001", at_times=(0.2,))),
        max_faults=2)
    assert len(single) == 3
    # ... plus the one m000 x m001 pair.
    assert len(paired) == 4
    assert _labels(paired)[-1] == "crash(m000@0.1)+crash(m001@0.2)"


def test_include_empty_false_drops_the_fault_free_point():
    lattice = FaultLattice(
        crashes=(CrashSite("m000", at_times=(0.1,)),),
        include_empty=False)
    assert _labels(lattice) == ["crash(m000@0.1)"]


def test_migration_site_points_are_phase_major():
    site = MigrationSite(phases=("snapshot", "cutover"),
                         targets=("donor", "receiver"))
    assert site.points() == [
        ("snapshot", "donor"), ("snapshot", "receiver"),
        ("cutover", "donor"), ("cutover", "receiver"),
    ]


def test_invalid_sites_are_rejected():
    with pytest.raises(ConfigurationError):
        CrashSite("", at_times=(0.1,))
    with pytest.raises(ConfigurationError):
        CrashSite("m000", at_times=())
    with pytest.raises(ConfigurationError):
        CrashSite("m000", at_times=(0.1,), recover_after=(-1.0,))
    with pytest.raises(ConfigurationError):
        FaultLattice(max_faults=-1)
