"""The FaultSchedule DSL: validation, ordering, legacy interop."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (FAULT_KINDS, FaultEvent, FaultInjector,
                          FaultSchedule)


class TestFaultEventValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent("meteor", 1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError, match="must be >= 0"):
            FaultEvent("crash", -0.5, machine="m001")

    def test_until_must_follow_at(self):
        with pytest.raises(ConfigurationError, match="must be > at"):
            FaultEvent("kv_outage", 2.0, until=1.0, machine="m001")

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError, match="outside"):
            FaultEvent("drop", 0.0, until=1.0, probability=1.5)

    def test_slow_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="speed-up"):
            FaultEvent("slow", 0.0, until=1.0, machine="m001",
                       cpu_factor=0.5)

    def test_partition_needs_group(self):
        with pytest.raises(ConfigurationError, match="non-empty group"):
            FaultEvent("partition", 0.0, until=1.0)

    @pytest.mark.parametrize("kind", ["crash", "recover", "slow",
                                      "kv_outage"])
    def test_machine_kinds_need_machine(self, kind):
        with pytest.raises(ConfigurationError, match="needs a machine"):
            FaultEvent(kind, 0.0, until=1.0)

    def test_active_window(self):
        event = FaultEvent("drop", 1.0, until=2.0, probability=0.5)
        assert not event.active(0.5)
        assert event.active(1.0)
        assert event.active(1.999)
        assert not event.active(2.0)  # half-open interval

    def test_open_ended_interval(self):
        event = FaultEvent("slow", 1.0, machine="m001", cpu_factor=2.0)
        assert event.active(1e9)

    def test_matches_message_targeted_and_wildcard(self):
        wildcard = FaultEvent("drop", 0.0, until=1.0, probability=0.5)
        targeted = FaultEvent("drop", 0.0, until=1.0, probability=0.5,
                              machine="m001")
        assert wildcard.matches_message("m000", "m002")
        assert targeted.matches_message("m001", "m002")  # as sender
        assert targeted.matches_message("m000", "m001")  # as receiver
        assert not targeted.matches_message("m000", "m002")
        assert not targeted.matches_message(None, "m002")  # source inject


class TestFaultScheduleBuilder:
    def test_chaining_and_ordering(self):
        schedule = (FaultSchedule(seed=7)
                    .slow(0.5, "m002", until=1.5, cpu_factor=4.0)
                    .crash(1.0, "m001", recover_at=2.0)
                    .drop(0.8, until=1.2, probability=0.05))
        assert len(schedule) == 4  # crash expands to crash + recover
        kinds = [e.kind for e in schedule.events()]
        assert kinds == ["slow", "drop", "crash", "recover"]  # by start time
        assert [e.kind for e in schedule.point_events()] == \
            ["crash", "recover"]
        assert [e.kind for e in schedule.interval_events()] == \
            ["slow", "drop"]

    def test_recover_before_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="must be > crash"):
            FaultSchedule().crash(2.0, "m001", recover_at=1.0)

    def test_slow_without_factor_rejected(self):
        with pytest.raises(ConfigurationError, match="cpu_factor or"):
            FaultSchedule().slow(0.0, "m001", until=1.0)

    def test_drop_zero_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="must be > 0"):
            FaultSchedule().drop(0.0, until=1.0, probability=0.0)

    def test_delay_needs_positive_delay(self):
        with pytest.raises(ConfigurationError, match="positive delay"):
            FaultSchedule().delay(0.0, until=1.0, extra_s=0.0)

    def test_from_kill_list_round_trips(self):
        kills = [(1.5, "m002"), (0.5, "m001")]
        schedule = FaultSchedule.from_kill_list(kills, seed=3)
        assert schedule.seed == 3
        assert schedule.kill_list() == sorted(kills)
        assert all(e.kind == "crash" for e in schedule)

    def test_every_kind_reachable_from_builders(self):
        schedule = (FaultSchedule()
                    .crash(1.0, "m001")
                    .recover(2.0, "m001")
                    .partition(0.1, ["m002"], until=0.9)
                    .slow(0.2, "m003", until=0.8, net_factor=2.0)
                    .drop(0.3, until=0.7, probability=0.5)
                    .delay(0.4, until=0.6, extra_s=0.01, jitter_s=0.005)
                    .kv_outage(0.5, "m000", until=1.5)
                    .at_migration("cutover", target="donor"))
        assert sorted({e.kind for e in schedule}) == sorted(FAULT_KINDS)


class TestFaultInjector:
    def test_partition_drops_crossing_messages_only(self):
        schedule = FaultSchedule().partition(1.0, ["m001", "m002"],
                                             until=2.0)
        injector = FaultInjector(schedule)
        # Crossing the cut, inside the window: dropped.
        delivered, _ = injector.message_fate("m000", "m001", 1.5, 0.001)
        assert not delivered
        assert injector.stats.lost_partition == 1
        # Same side of the cut: delivered.
        delivered, _ = injector.message_fate("m001", "m002", 1.5, 0.001)
        assert delivered
        # Outside the window: delivered.
        delivered, _ = injector.message_fate("m000", "m001", 2.5, 0.001)
        assert delivered
        # A source-injected message (src=None) is outside every group.
        delivered, _ = injector.message_fate(None, "m001", 1.5, 0.001)
        assert not delivered

    def test_drop_probability_is_seeded(self):
        schedule = FaultSchedule(seed=11).drop(0.0, until=10.0,
                                               probability=0.5)
        fates = [FaultInjector(schedule).message_fate("a", "b", 1.0, 0.0)
                 for _ in range(2)]
        assert fates[0] == fates[1]  # same seed, same first coin flip

    def test_delay_adds_latency_and_counts(self):
        schedule = FaultSchedule().delay(0.0, until=10.0, extra_s=0.05)
        injector = FaultInjector(schedule)
        delivered, delay = injector.message_fate("a", "b", 1.0, 0.001)
        assert delivered
        assert delay == pytest.approx(0.051)
        assert injector.stats.delayed_messages == 1
        assert injector.stats.injected_delay_s == pytest.approx(0.05)

    def test_slow_net_factor_inflates_and_counts_gray_time(self):
        schedule = FaultSchedule().slow(0.0, "m001", until=10.0,
                                        net_factor=3.0)
        injector = FaultInjector(schedule)
        _, delay = injector.message_fate("m000", "m001", 1.0, 0.01)
        assert delay == pytest.approx(0.03)
        assert injector.stats.gray_slow_s == pytest.approx(0.02)

    def test_cpu_factor_compounds_and_ignores_inactive(self):
        schedule = (FaultSchedule()
                    .slow(0.0, "m001", until=10.0, cpu_factor=2.0)
                    .slow(0.0, "m001", until=10.0, cpu_factor=3.0)
                    .slow(20.0, "m001", until=30.0, cpu_factor=10.0))
        injector = FaultInjector(schedule)
        assert injector.cpu_factor("m001", 1.0) == pytest.approx(6.0)
        assert injector.cpu_factor("m002", 1.0) == 1.0

    def test_crash_of_unknown_machine_is_a_clear_error(self):
        """A typo'd machine name surfaces as ConfigurationError naming
        the cluster, not a bare KeyError from the event loop."""
        from repro.cluster import ClusterSpec
        from repro.sim import SimConfig, SimRuntime, constant_rate
        from tests.conftest import build_count_app

        runtime = SimRuntime(
            build_count_app(), ClusterSpec.uniform(2, cores=2),
            SimConfig(),
            [constant_rate("S1", rate_per_s=100, duration_s=1.0,
                           key_fn=lambda i: "k")],
            failures=FaultSchedule().crash(0.5, "m999"))
        with pytest.raises(ConfigurationError, match="m999"):
            runtime.run(2.0)

    def test_has_rules(self):
        assert not FaultInjector(FaultSchedule()).has_rules()
        assert not FaultInjector(
            FaultSchedule().crash(1.0, "m001")).has_rules()
        assert FaultInjector(
            FaultSchedule().drop(0.0, until=1.0, probability=0.5)
        ).has_rules()
