"""The ``python -m repro`` command line."""

import json
from pathlib import Path

import pytest

from repro.cli import main

CONFIG = {
    "name": "retailer-counts",
    "streams": [{"sid": "S1", "external": True}, {"sid": "S2"}],
    "operators": [
        {"name": "M1", "kind": "map",
         "class": "repro.apps.retailer_count.RetailerMapper",
         "subscribes": ["S1"], "publishes": ["S2"]},
        {"name": "U1", "kind": "update",
         "class": "repro.apps.retailer_count.CheckinCounter",
         "subscribes": ["S2"]},
    ],
}


@pytest.fixture
def app_path(tmp_path: Path) -> Path:
    path = tmp_path / "app.json"
    path.write_text(json.dumps(CONFIG))
    return path


@pytest.fixture
def trace_path(tmp_path: Path, app_path: Path) -> Path:
    path = tmp_path / "trace.jsonl"
    code = main(["generate", "--kind", "checkins", "--rate", "200",
                 "--duration", "2", "--seed", "9", "--out", str(path)])
    assert code == 0
    return path


class TestValidate:
    def test_valid_config(self, app_path, capsys):
        assert main(["validate", "--app", str(app_path)]) == 0
        out = capsys.readouterr().out
        assert "retailer-counts" in out
        assert "S1 -> M1 -> S2" in out

    def test_broken_config_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "streams": [],
                                    "operators": []}))
        assert main(["validate", "--app", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestGenerate:
    def test_writes_trace(self, trace_path):
        lines = trace_path.read_text().splitlines()
        assert len(lines) == 400
        record = json.loads(lines[0])
        assert record["sid"] == "S1"

    def test_tweets_kind(self, tmp_path, capsys):
        out = tmp_path / "tweets.jsonl"
        assert main(["generate", "--kind", "tweets", "--rate", "50",
                     "--duration", "1", "--out", str(out)]) == 0
        assert "wrote 50 tweets" in capsys.readouterr().out


class TestRun:
    def test_run_and_dump(self, app_path, trace_path, capsys):
        code = main(["run", "--app", str(app_path),
                     "--trace", str(trace_path),
                     "--threads", "2", "--dump", "U1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested 400 events" in out
        assert '"updater": "U1"' in out
        # Slate counts appear in the dump.
        payload = json.loads(out[out.index('{\n  "slates"'):])
        total = sum(s["count"] for s in payload["slates"].values())
        assert total > 0


class TestRunMuppet1Engine:
    def test_run_with_muppet1_engine(self, app_path, trace_path, capsys):
        code = main(["run", "--app", str(app_path),
                     "--trace", str(trace_path),
                     "--engine", "muppet1", "--threads", "2",
                     "--dump", "U1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine=muppet1" in out
        payload = json.loads(out[out.index('{\n  "slates"'):])
        assert sum(s["count"] for s in payload["slates"].values()) > 0

    def test_engines_agree_on_the_same_trace(self, app_path, trace_path,
                                             capsys):
        def slates_for(engine):
            code = main(["run", "--app", str(app_path),
                         "--trace", str(trace_path),
                         "--engine", engine, "--dump", "U1"])
            assert code == 0
            out = capsys.readouterr().out
            return json.loads(out[out.index('{\n  "slates"'):])["slates"]

        assert slates_for("muppet1") == slates_for("muppet2")


class TestSimulate:
    def test_simulate_reports_json(self, app_path, trace_path, capsys):
        code = main(["simulate", "--app", str(app_path),
                     "--trace", str(trace_path), "--machines", "2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "muppet2"
        assert payload["events"]["lost"] == 0
        assert payload["latency_ms"]["p99"] < 2000

    def test_muppet1_engine_flag(self, app_path, trace_path, capsys):
        code = main(["simulate", "--app", str(app_path),
                     "--trace", str(trace_path), "--machines", "2",
                     "--engine", "muppet1"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["engine"] == "muppet1"

    def test_empty_trace_fails(self, app_path, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["simulate", "--app", str(app_path),
                     "--trace", str(empty)]) == 1

    def test_default_delivery_is_at_most_once(self, app_path, trace_path,
                                              capsys):
        code = main(["simulate", "--app", str(app_path),
                     "--trace", str(trace_path), "--machines", "2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["delivery"] == "at-most-once"
        assert payload["replay"]["recorded"] == 0

    def test_effectively_once_flag(self, app_path, trace_path, capsys):
        code = main(["simulate", "--app", str(app_path),
                     "--trace", str(trace_path), "--machines", "2",
                     "--delivery", "effectively-once",
                     "--checkpoint-epoch", "0.5"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["delivery"] == "effectively-once"
        assert payload["replay"]["recorded"] > 0
        assert payload["replay"]["checkpoint_epochs"] > 0

    def test_replay_horizon_implies_at_least_once(self, app_path,
                                                  trace_path, capsys):
        code = main(["simulate", "--app", str(app_path),
                     "--trace", str(trace_path), "--machines", "2",
                     "--replay-horizon", "0.5"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["delivery"] == "at-least-once"
        assert payload["replay"]["recorded"] > 0


class TestErrorPaths:
    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_no_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2

    def test_bad_delivery_value_exits_2(self, app_path, trace_path,
                                        capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["simulate", "--app", str(app_path),
                  "--trace", str(trace_path),
                  "--delivery", "exactly-twice"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'exactly-twice'" in capsys.readouterr().err

    def test_missing_config_file_exits_2(self, capsys):
        assert main(["validate", "--app", "/nonexistent/app.json"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "cannot read" in err

    def test_config_file_with_bad_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "mangled.json"
        path.write_text("{not json")
        assert main(["validate", "--app", str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_run_with_missing_trace_file_exits_2(self, app_path, capsys):
        assert main(["run", "--app", str(app_path),
                     "--trace", "/nonexistent/trace.jsonl"]) == 2
        assert "cannot read trace" in capsys.readouterr().err
