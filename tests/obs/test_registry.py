"""MetricsRegistry: counters, gauges, histograms, views, snapshots."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.metrics import LatencyRecorder, percentile
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_gauge_samples_lazily(self):
        box = {"v": 1}
        gauge = Gauge("g", lambda: box["v"])
        assert gauge.read() == 1
        box["v"] = 7
        assert gauge.read() == 7

    def test_histogram_percentiles_bracket_exact(self):
        histogram = Histogram("h")
        samples = [0.0015 * (i % 40 + 1) for i in range(1000)]
        histogram.observe_many(samples)
        for frac in (0.50, 0.95, 0.99):
            exact = percentile(samples, frac)
            estimate = histogram.percentile(frac)
            # Bucketed estimates are bounded by the winning bucket width.
            assert estimate == pytest.approx(exact, rel=0.5)
        assert histogram.count == 1000
        assert histogram.maximum == max(samples)
        assert histogram.mean == pytest.approx(sum(samples) / 1000)

    def test_histogram_overflow_bucket(self):
        histogram = Histogram("h", buckets=[1.0])
        histogram.observe(0.5)
        histogram.observe(99.0)
        assert histogram.counts == [1, 1]
        assert histogram.percentile(1.0) == 99.0

    def test_histogram_empty_summary(self):
        summary = Histogram("h").summary()
        assert summary["count"] == 0
        assert summary["p99"] == 0.0

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[])
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[2.0, 1.0])
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=[1.0, 1.0])

    def test_histogram_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            Histogram("h").percentile(1.5)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.histogram("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x", lambda: 0)

    def test_snapshot_flat_sorted_and_expanded(self):
        reg = MetricsRegistry()
        reg.counter("b.two").inc(2)
        reg.gauge("a.one", lambda: 1)
        reg.histogram("z.lat").observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.one"] == 1
        assert snap["b.two"] == 2
        assert snap["z.lat.count"] == 1

    def test_view_reads_live_object(self):
        class Stats:
            def __init__(self):
                self.hits = 0
                self._private = 99
                self.label = "not-numeric"

        stats = Stats()
        reg = MetricsRegistry()
        reg.register_view("cache", stats)
        assert reg.snapshot() == {"cache.hits": 0}
        stats.hits = 3
        assert reg.snapshot()["cache.hits"] == 3

    def test_group_callable(self):
        reg = MetricsRegistry()
        reg.register_group("kv", lambda: {"reads": 4, "writes": 2})
        assert reg.snapshot() == {"kv.reads": 4, "kv.writes": 2}

    def test_family_snapshot_groups_by_first_segment(self):
        reg = MetricsRegistry()
        reg.counter("counters.processed").inc(10)
        reg.register_group("robustness", lambda: {"kv_retries": 1})
        families = reg.family_snapshot()
        assert families["counters"] == {"processed": 10}
        assert families["robustness"] == {"kv_retries": 1}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        assert json.loads(reg.to_json()) == {"a": 1}

    def test_latency_recorder_bridge(self):
        recorder = LatencyRecorder()
        recorder.extend([0.001, 0.010, 0.100])
        histogram = Histogram("lat")
        recorder.fill_histogram(histogram)
        assert histogram.count == 3
