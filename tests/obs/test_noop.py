"""The no-op contract: observability off costs nothing, on changes nothing.

Satellite of the observability layer's acceptance criteria:

* with ``SimConfig.trace`` off the engine holds ``None`` — no tracer
  object exists, no span is ever allocated;
* enabling tracing and timeline sampling changes no simulated result:
  byte-identical ``counter_report()`` (which includes the DES step
  count) and byte-identical final slates under a fixed seed.
"""

import json

from repro.cluster import ClusterSpec
from repro.faults import FaultSchedule
from repro.obs import RingTracer
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app


def run_seeded(**config_kwargs):
    config_kwargs.setdefault("flush_policy", FlushPolicy.every(0.2))
    config_kwargs.setdefault("queue_capacity", 100_000)
    config_kwargs.setdefault("kill_kv_on_machine_failure", True)
    config = SimConfig(**config_kwargs)
    source = constant_rate("S1", rate_per_s=1000.0, duration_s=2.0,
                           key_fn=lambda i: f"k{i % 32}")
    chaos = FaultSchedule(seed=11).crash(0.8, "m001", recover_at=1.5)
    runtime = SimRuntime(build_count_app(), ClusterSpec.uniform(4, cores=2),
                         config, [source], failures=chaos)
    report = runtime.run(4.0)
    slates = json.dumps(runtime.slates_of("U1"), sort_keys=True)
    return runtime, report, slates


class TestNoOpPath:
    def test_trace_off_holds_none_everywhere(self):
        runtime, _, __ = run_seeded()
        assert runtime.tracer is None
        assert runtime.store.tracer is None
        for machine in runtime.machines.values():
            for manager in runtime._managers_of(machine):
                assert manager.tracer is None

    def test_trace_off_allocates_no_spans(self):
        """No tracer object means no span can ever be built: the guard
        is `is not None`, checked here by running with a ring tracer
        injected but trace *off* — the engine must not touch it."""
        sentinel = RingTracer()
        config = SimConfig()
        source = constant_rate("S1", rate_per_s=200.0, duration_s=0.5,
                               key_fn=lambda i: f"k{i % 4}")
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=2), config,
                             [source], tracer=sentinel)
        # An explicitly injected tracer IS used regardless of the knob
        # (the CLI path); so assert the inverse: with no injection and
        # trace off, nothing is live.
        runtime.run(1.0)
        assert runtime.tracer is sentinel  # injection wins
        plain = SimRuntime(build_count_app(),
                           ClusterSpec.uniform(2, cores=2), SimConfig(),
                           [constant_rate("S1", rate_per_s=200.0,
                                          duration_s=0.5,
                                          key_fn=lambda i: f"k{i % 4}")])
        plain.run(1.0)
        assert plain.tracer is None

    def test_timeline_off_records_nothing(self):
        _, report, __ = run_seeded()
        assert report.timeline_data is None
        assert report.timeline() == {"machines": {}, "updaters": {}}


class TestObservabilityIsPassive:
    def test_tracing_changes_no_simulated_result(self):
        _, report_off, slates_off = run_seeded()
        _, report_on, slates_on = run_seeded(trace=True)
        assert report_off.counter_report() == report_on.counter_report()
        assert slates_off == slates_on

    def test_timeline_changes_no_simulated_result(self):
        """Timeline sampling piggybacks on the flusher tick, so even the
        DES step count (printed in counter_report) is unchanged."""
        _, report_off, slates_off = run_seeded()
        _, report_on, slates_on = run_seeded(timeline=True)
        assert report_off.steps == report_on.steps
        assert report_off.counter_report() == report_on.counter_report()
        assert slates_off == slates_on

    def test_everything_on_still_byte_identical(self):
        _, report_off, slates_off = run_seeded()
        _, report_on, slates_on = run_seeded(
            trace=True, timeline=True,
            delivery_semantics="effectively-once")
        _, report_off2, slates_off2 = run_seeded(
            delivery_semantics="effectively-once")
        assert report_off2.counter_report() == report_on.counter_report()
        assert slates_off2 == slates_on

    def test_timeline_series_populated_when_on(self):
        runtime, report, _ = run_seeded(timeline=True)
        timeline = report.timeline()
        assert set(timeline["machines"]) == set(runtime.machines)
        machine_points = timeline["machines"]["m001"]
        assert any(not point["alive"] for point in machine_points)
        assert any(point["alive"] for point in machine_points)
        assert timeline["updaters"]["U1"][-1]["count"] > 0

    def test_registry_families_match_report(self):
        runtime, report, _ = run_seeded()
        families = runtime.metrics.family_snapshot()
        assert families["counters"]["processed"] == \
            report.counters.processed
        assert families["master"] == report.master_stats
        assert families["dispatch"] == report.dispatch_stats
        # New observability families exist without touching the report.
        assert "kv" in families
        assert any(family.startswith("queues") for family in families)
