"""Tracer sinks and full-chain reconstruction on a simulated chaos run."""

import io
import json

import pytest

from repro.cluster import ClusterSpec
from repro.errors import ConfigurationError
from repro.faults import FaultSchedule
from repro.obs import (JsonlTracer, RingTracer, read_jsonl,
                       reconstruct_chain, spans_for)
from repro.sim import SimConfig, SimRuntime, constant_rate
from repro.slates.manager import FlushPolicy
from tests.conftest import build_count_app


class TestRingTracer:
    def test_emit_and_spans(self):
        tracer = RingTracer()
        tracer.emit(1.0, "source", sid="S1", origin="S1", oseq=0)
        spans = tracer.spans()
        assert spans == [{"ts": 1.0, "kind": "source", "sid": "S1",
                          "origin": "S1", "oseq": 0}]

    def test_bounded_with_drop_count(self):
        tracer = RingTracer(capacity=2)
        for i in range(5):
            tracer.emit(float(i), "enqueue")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [span["ts"] for span in tracer.spans()] == [3.0, 4.0]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            RingTracer(capacity=0)


class TestJsonlTracer:
    def test_writes_one_json_object_per_line(self):
        buffer = io.StringIO()
        tracer = JsonlTracer(buffer)
        tracer.emit(0.5, "kv_write", row="k1", column="U1", acks=2)
        tracer.emit(0.6, "slate_flush", row="k1", column="U1")
        tracer.close()
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == "kv_write"
        assert tracer.written == 2

    def test_path_round_trip(self, tmp_path):
        path = str(tmp_path / "run.trace.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.emit(1.0, "source", origin="S1", oseq=3)
        spans = read_jsonl(path)
        assert spans == [{"ts": 1.0, "kind": "source", "origin": "S1",
                          "oseq": 3}]

    def test_lazy_open_writes_nothing_without_spans(self, tmp_path):
        path = tmp_path / "empty.trace.jsonl"
        JsonlTracer(str(path)).close()
        assert not path.exists()


class TestSpanQueries:
    def test_spans_for_exact_provenance(self):
        spans = [{"kind": "source", "origin": "S1", "oseq": 1},
                 {"kind": "execute", "origin": "S1", "oseq": 2}]
        assert spans_for(spans, "S1", 1) == [spans[0]]


def run_traced_chaos(**config_kwargs):
    config = SimConfig(flush_policy=FlushPolicy.every(0.2),
                       queue_capacity=100_000,
                       kill_kv_on_machine_failure=True,
                       trace=True, trace_capacity=2_000_000,
                       **config_kwargs)
    source = constant_rate("S1", rate_per_s=2000.0, duration_s=3.0,
                           key_fn=lambda i: f"k{i % 64}")
    chaos = FaultSchedule(seed=7).crash(1.05, "m001", recover_at=2.0)
    runtime = SimRuntime(build_count_app(), ClusterSpec.uniform(4, cores=4),
                         config, [source], failures=chaos)
    runtime.run(6.0)
    return runtime


class TestChainReconstruction:
    def test_full_chain_on_chaos_run(self):
        """The acceptance path: source -> dispatch -> update execute ->
        slate flush -> kv replica write, joined by (origin, oseq) and
        the slate's (row, column) address."""
        runtime = run_traced_chaos()
        spans = runtime.tracer.spans()
        kinds = {span["kind"] for span in spans}
        assert {"source", "dispatch", "enqueue", "execute", "publish",
                "slate_flush", "kv_write"} <= kinds

        source = next(s for s in spans if s["kind"] == "source")
        chain = reconstruct_chain(spans, source["origin"], source["oseq"])
        chain_kinds = [span["kind"] for span in chain]
        for needed in ("source", "dispatch", "execute", "slate_flush",
                       "kv_write"):
            assert needed in chain_kinds, (needed, chain_kinds)
        # Time-ordered, and the update execute precedes its flush.
        assert [s["ts"] for s in chain] == sorted(s["ts"] for s in chain)
        update = next(s for s in chain if s["kind"] == "execute"
                      and "row" in s)
        flush = next(s for s in chain if s["kind"] == "slate_flush")
        assert flush["ts"] >= update["ts"]
        assert (flush["row"], flush["column"]) == (update["row"],
                                                   update["column"])

    def test_chain_crosses_operator_hops_with_dedup_provenance(self):
        """Under effectively-once delivery, derived events carry chained
        origins; the chain must still reconstruct (both the publish-edge
        and the derived-origin joins agree)."""
        runtime = run_traced_chaos(delivery_semantics="effectively-once")
        spans = runtime.tracer.spans()
        assert any(">" in str(s.get("origin", "")) for s in spans)
        source = next(s for s in spans if s["kind"] == "source")
        chain = reconstruct_chain(spans, source["origin"], source["oseq"])
        ops = {s.get("op") for s in chain if s["kind"] == "execute"}
        assert {"M1", "U1"} <= ops

    def test_dedup_spans_on_replayed_events(self):
        """A chaos run under at-least-once replay emits dedup decisions
        (skip or reapply) for replayed events."""
        runtime = run_traced_chaos(delivery_semantics="effectively-once")
        decisions = {s["decision"] for s in runtime.tracer.spans()
                     if s["kind"] == "dedup"}
        assert decisions <= {"skip", "reapply"}
        assert decisions, "chaos replay produced no dedup decisions"


class TestJsonlOnRuntime:
    def test_runtime_accepts_injected_jsonl_tracer(self, tmp_path):
        path = str(tmp_path / "chaos.trace.jsonl")
        config = SimConfig(trace=True)
        source = constant_rate("S1", rate_per_s=500.0, duration_s=0.5,
                               key_fn=lambda i: f"k{i % 8}")
        tracer = JsonlTracer(path)
        runtime = SimRuntime(build_count_app(),
                             ClusterSpec.uniform(2, cores=2), config,
                             [source], tracer=tracer)
        runtime.run(2.0)
        tracer.close()
        spans = read_jsonl(path)
        assert len(spans) == tracer.written
        source_span = next(s for s in spans if s["kind"] == "source")
        chain = reconstruct_chain(spans, source_span["origin"],
                                  source_span["oseq"])
        assert [s["kind"] for s in chain][0] == "source"
