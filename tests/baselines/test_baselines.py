"""Baselines: snapshot MapReduce, micro-batch, Storm-style topology."""

import json
from collections import Counter

import pytest

from repro.baselines.mapreduce import (MapReduceCosts, MapReduceJob,
                                       periodic_job_staleness)
from repro.baselines.mapreduce_online import (MicroBatchEngine,
                                              counting_reduce)
from repro.baselines.storm_like import StormLikeTopology
from repro.core import Event
from repro.errors import ConfigurationError
from repro.workloads import CheckinGenerator
from repro.apps.retailer_count import match_retailer


def retailer_map(key, value):
    venue = json.loads(value)["venue"]["name"]
    retailer = match_retailer(venue)
    if retailer:
        yield (retailer, 1)


def checkin_events(n=1500, seed=61):
    return CheckinGenerator(rate_per_s=100, seed=seed).take_with_truth(n)


class TestMapReduceJob:
    def test_word_count_semantics(self):
        job = MapReduceJob(lambda k, v: [(w, 1) for w in v.split()],
                           lambda k, vs: sum(vs))
        result = job.run([("d1", "a b a"), ("d2", "b c")])
        assert result.results == {"a": 2, "b": 2, "c": 1}
        assert result.intermediate_records == 5

    def test_retailer_counts_match_truth(self):
        events, truth = checkin_events()
        job = MapReduceJob(retailer_map, lambda k, vs: sum(vs))
        result = job.run([(e.key, e.value) for e in events])
        assert result.results == truth

    def test_reducer_count_does_not_change_results(self):
        events, truth = checkin_events(500)
        snapshot = [(e.key, e.value) for e in events]
        one = MapReduceJob(retailer_map, lambda k, vs: sum(vs),
                           num_reducers=1).run(snapshot)
        many = MapReduceJob(retailer_map, lambda k, vs: sum(vs),
                            num_reducers=16).run(snapshot)
        assert one.results == many.results

    def test_duration_includes_startup(self):
        costs = MapReduceCosts(job_startup_s=5.0)
        job = MapReduceJob(retailer_map, lambda k, vs: sum(vs),
                           costs=costs)
        result = job.run([])
        assert result.duration_s >= 5.0

    def test_staleness_grows_with_history(self):
        """Snapshot jobs reprocess everything: answers get *staler* as
        the stream accumulates (Section 2's core complaint)."""
        young = periodic_job_staleness(1000, period_s=600,
                                       history_records=10 ** 6)
        old = periodic_job_staleness(1000, period_s=600,
                                     history_records=10 ** 8)
        assert old > young
        assert young > 300  # at least half the period

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MapReduceJob(retailer_map, lambda k, vs: 0, num_reducers=0)


class TestMicroBatch:
    def test_state_matches_truth(self):
        events, truth = checkin_events()
        engine = MicroBatchEngine(retailer_map, counting_reduce,
                                  batch_interval_s=2.0)
        report = engine.run(events)
        assert report.state == truth

    def test_latency_bounded_below_by_batching(self):
        """Every event waits for its batch to close: mean latency is at
        least ~half the interval — the structural gap MapUpdate closes."""
        events, _ = checkin_events(1000)
        engine = MicroBatchEngine(retailer_map, counting_reduce,
                                  batch_interval_s=4.0)
        report = engine.run(events)
        assert report.latency.summary().mean > 1.0
        assert report.latency.summary().p50 > 0.5

    def test_smaller_batches_lower_latency_more_batches(self):
        events, _ = checkin_events(1000)
        coarse = MicroBatchEngine(retailer_map, counting_reduce,
                                  batch_interval_s=5.0).run(list(events))
        fine = MicroBatchEngine(retailer_map, counting_reduce,
                                batch_interval_s=0.5).run(list(events))
        assert fine.batches > coarse.batches
        assert fine.latency.summary().mean < coarse.latency.summary().mean

    def test_carried_state_across_batches(self):
        events = [Event("S1", float(t), "k",
                        json.dumps({"venue": {"name": "Walmart"}}))
                  for t in range(20)]
        report = MicroBatchEngine(retailer_map, counting_reduce,
                                  batch_interval_s=5.0).run(events)
        assert report.state == {"Walmart": 20}
        assert report.batches == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MicroBatchEngine(retailer_map, counting_reduce,
                             batch_interval_s=0)


def count_bolt(event, state, emit):
    venue = json.loads(event.value)["venue"]["name"]
    retailer = match_retailer(venue)
    if retailer:
        state[retailer] = state.get(retailer, 0) + 1


class TestStormLike:
    def build(self, parallelism=4):
        topology = StormLikeTopology("S1")
        topology.add_bolt("count", count_bolt, subscribes=["S1"],
                          parallelism=parallelism)
        return topology

    def gather(self, topology):
        total = Counter()
        for instance in topology.instances("count"):
            for key, value in instance.state.items():
                total[key] += value
        return dict(total)

    def test_counts_match_truth(self):
        events, truth = checkin_events()
        topology = self.build()
        assert topology.process(events) == len(events)
        assert self.gather(topology) == truth

    def test_fields_grouping_consistent(self):
        """Same key always reaches the same instance."""
        topology = self.build(parallelism=8)
        events = [Event("S1", float(i), "same-user",
                        json.dumps({"venue": {"name": "Walmart"}}))
                  for i in range(100)]
        topology.process(events)
        holders = [inst for inst in topology.instances("count")
                   if inst.state]
        assert len(holders) == 1
        assert holders[0].state["Walmart"] == 100

    def test_crash_loses_state_forever(self):
        """The paper's §6 contrast: app-managed state has no slates to
        refetch — a restart starts from zero."""
        events, truth = checkin_events(1000)
        topology = self.build()
        topology.process(events)
        before = sum(self.gather(topology).values())
        lost = topology.crash_instance("count", 0)
        after = sum(self.gather(topology).values())
        assert lost > 0
        assert after < before
        assert topology.stats["count"].state_entries_lost == lost

    def test_emit_routes_downstream(self):
        topology = StormLikeTopology("S1")

        def forwarder(event, state, emit):
            emit("S2", event.key, event.value)

        def sink(event, state, emit):
            state["seen"] = state.get("seen", 0) + 1

        topology.add_bolt("fwd", forwarder, subscribes=["S1"])
        topology.add_bolt("sink", sink, subscribes=["S2"], parallelism=2)
        topology.process([Event("S1", float(i), f"k{i}") for i in range(10)])
        assert topology.total_state_entries("sink") >= 1
        assert topology.stats["fwd"].emitted == 10

    def test_duplicate_bolt_rejected(self):
        topology = self.build()
        with pytest.raises(ConfigurationError):
            topology.add_bolt("count", count_bolt, subscribes=["S1"])
