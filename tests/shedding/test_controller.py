"""BackpressureController: tiers, hysteresis, secondary signals."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.shedding.controller import (TIER_NAMES, TIER_NORMAL,
                                       TIER_OVERFLOW, TIER_THIN,
                                       TIER_THROTTLE,
                                       BackpressureController,
                                       PressureSignals, SheddingConfig)


def make_config(**overrides):
    """An alpha-1 config: the EWMA tracks the raw signal exactly, so
    tier decisions in these tests are a pure function of the inputs."""
    kwargs = dict(ewma_alpha=1.0, hold_s=0.25)
    kwargs.update(overrides)
    return SheddingConfig(**kwargs)


def sig(queue_fraction, **kwargs):
    return PressureSignals(queue_fraction=queue_fraction, **kwargs)


class TestSheddingConfigValidation:
    def test_defaults_are_valid(self):
        SheddingConfig()

    @pytest.mark.parametrize("kwargs", [
        {"check_period_s": 0.0},
        {"hold_s": -0.1},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"thin_enter": 0.15, "thin_exit": 0.15},       # no band
        {"overflow_exit": 0.9},                        # exit above enter
        {"thin_enter": 0.8},                           # not ascending
        {"overflow_enter": 0.95},                      # not ascending
        {"divert_fraction": 0.0},
        {"divert_fraction": 1.2},
        {"p99_window": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            SheddingConfig(**kwargs)


class TestTierTransitions:
    def test_unobserved_machine_is_normal(self):
        controller = BackpressureController(make_config())
        assert controller.tier_of("m000") == TIER_NORMAL
        assert controller.smoothed("m000") == 0.0

    def test_escalation_is_immediate_and_can_jump_tiers(self):
        controller = BackpressureController(make_config())
        tier = controller.observe("m000", sig(0.95), now=0.0)
        assert tier == TIER_THROTTLE
        # One transition, not three: the machine jumped straight there.
        assert controller.counters.escalations == 1

    def test_tier_thresholds_map_to_tiers(self):
        cfg = make_config()
        cases = [(cfg.thin_enter - 0.01, TIER_NORMAL),
                 (cfg.thin_enter, TIER_THIN),
                 (cfg.overflow_enter, TIER_OVERFLOW),
                 (cfg.throttle_enter, TIER_THROTTLE)]
        for i, (fraction, expected) in enumerate(cases):
            controller = BackpressureController(make_config())
            assert controller.observe(f"m{i}", sig(fraction), 0.0) \
                == expected

    def test_deescalation_needs_hold_time(self):
        controller = BackpressureController(make_config(hold_s=0.25))
        controller.observe("m000", sig(0.80), now=0.0)   # -> overflow
        # Signal cleared, but the dwell has not elapsed yet.
        assert controller.observe("m000", sig(0.0), 0.1) == TIER_OVERFLOW
        assert controller.observe("m000", sig(0.0), 0.2) == TIER_OVERFLOW
        # Dwell elapsed: steps down one tier at a time, not to normal.
        assert controller.observe("m000", sig(0.0), 0.30) == TIER_THIN
        assert controller.observe("m000", sig(0.0), 0.40) == TIER_THIN
        assert controller.observe("m000", sig(0.0), 0.60) == TIER_NORMAL
        assert controller.counters.deescalations == 2

    def test_hysteresis_band_holds_the_tier(self):
        """A signal between exit and enter neither escalates nor
        de-escalates — the anti-flap contract."""
        cfg = make_config()
        controller = BackpressureController(cfg)
        controller.observe("m000", sig(cfg.thin_enter), now=0.0)
        between = (cfg.thin_exit + cfg.thin_enter) / 2
        for i in range(1, 20):
            # Long dwell each step: only the exit threshold holds it.
            assert controller.observe("m000", sig(between),
                                      now=i * 10.0) == TIER_THIN
        assert controller.counters.escalations == 1
        assert controller.counters.deescalations == 0

    def test_machines_are_independent(self):
        controller = BackpressureController(make_config())
        controller.observe("m000", sig(0.95), 0.0)
        controller.observe("m001", sig(0.0), 0.0)
        assert controller.tier_of("m000") == TIER_THROTTLE
        assert controller.tier_of("m001") == TIER_NORMAL

    def test_ewma_smooths_a_spike(self):
        """After a calm baseline (the EWMA seeds on its first
        observation), one spike does not clear the enter threshold, but
        sustained pressure does."""
        controller = BackpressureController(
            make_config(ewma_alpha=0.2))
        assert controller.observe("m000", sig(0.0), 0.0) == TIER_NORMAL
        # One spike: smoothed only reaches alpha * 1.0 = 0.2 < enter.
        assert controller.observe("m000", sig(1.0), 0.02) == TIER_NORMAL
        # Sustained moderate pressure converges the EWMA onto 0.5.
        for i in range(2, 12):
            controller.observe("m000", sig(0.5), i * 0.02)
        assert controller.tier_of("m000") == TIER_THIN


class TestSecondarySignals:
    def test_p99_over_budget_forces_thin(self):
        controller = BackpressureController(
            make_config(p99_budget_s=2.0))
        tier = controller.observe("m000", sig(0.0, p99_s=3.0), 0.0)
        assert tier == TIER_THIN

    def test_p99_signal_disabled_by_default(self):
        controller = BackpressureController(make_config())
        assert controller.observe("m000", sig(0.0, p99_s=99.0), 0.0) \
            == TIER_NORMAL

    def test_dirty_backlog_forces_thin(self):
        controller = BackpressureController(
            make_config(dirty_slates_high=100))
        assert controller.observe("m000", sig(0.0, dirty_slates=100),
                                  0.0) == TIER_NORMAL
        assert controller.observe("m000", sig(0.0, dirty_slates=101),
                                  1.0) == TIER_THIN

    def test_secondary_signals_never_exceed_thin(self):
        controller = BackpressureController(
            make_config(p99_budget_s=0.1, dirty_slates_high=1))
        tier = controller.observe(
            "m000", sig(0.0, p99_s=50.0, dirty_slates=9999), 0.0)
        assert tier == TIER_THIN


class TestCounters:
    def test_residence_times_partition_the_run(self):
        controller = BackpressureController(make_config())
        controller.observe("m000", sig(0.5), now=0.0)   # thin at t=0
        controller.observe("m000", sig(0.95), now=2.0)  # throttle at t=2
        controller.observe("m001", sig(0.0), now=0.0)   # normal all run
        controller.finish(now=5.0)
        counters = controller.counters
        assert counters.time_thin_s == pytest.approx(2.0)
        assert counters.time_throttle_s == pytest.approx(3.0)
        assert counters.time_normal_s == pytest.approx(5.0)
        total = sum(getattr(counters, f"time_{name}_s")
                    for name in TIER_NAMES)
        assert total == pytest.approx(2 * 5.0)  # machines x elapsed

    def test_finish_is_idempotent(self):
        controller = BackpressureController(make_config())
        controller.observe("m000", sig(0.0), 0.0)
        controller.finish(5.0)
        controller.finish(5.0)
        assert controller.counters.time_normal_s == pytest.approx(5.0)

    def test_as_dict_is_insertion_ordered_and_complete(self):
        counters = BackpressureController(make_config()).counters
        keys = list(counters.as_dict())
        assert keys == ["thinned", "kept_weighted", "weight_applied",
                        "diverted_proactive", "escalations",
                        "deescalations", "time_normal_s", "time_thin_s",
                        "time_overflow_s", "time_throttle_s"]
