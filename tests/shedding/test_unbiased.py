"""Seed-swept property test: IPW counters are unbiased.

Each thinned-out update is compensated by weighting the kept siblings
by ``1/keep_rate``, so the reconstructed counter is an unbiased
estimator of the exact count. Ground truth comes from the Section 3
reference executor over the same event list; the sweep runs the
thinning decision engine across 60 independent seeds at a fixed keep
rate and checks that the *seed-averaged* estimate converges on the
truth (Bernoulli mode), while the stratified mode meets its stronger
deterministic per-seed bound of one pre-weight event per key.
"""

from __future__ import annotations

from typing import Dict

from repro.core import Application, ReferenceExecutor
from repro.shedding.thinning import (ThinnableCounter, Thinner,
                                     ThinningPolicy)
from tests.conftest import make_events

KEEP_RATE = 0.2
SEEDS = range(60)
KEYS = 6
EVENTS = make_events(1500, keys=KEYS)  # 250 arrivals per key


def exact_counts() -> Dict[str, float]:
    app = Application("unbiased")
    app.add_stream("S1", external=True)
    app.add_updater("U1", ThinnableCounter, subscribes=["S1"])
    app.validate()
    result = ReferenceExecutor(app).run(list(EVENTS))
    return result.numeric_slates("U1", "count")


def ipw_estimate(seed: int, mode: str) -> Dict[str, float]:
    """One seeded thinning pass: the IPW-reconstructed counter."""
    thinner = Thinner(ThinningPolicy.uniform(KEEP_RATE, mode=mode),
                      seed=seed)
    estimate = {f"k{i}": 0.0 for i in range(KEYS)}
    for event in EVENTS:
        keep, weight = thinner.decide(event.key)
        if keep:
            estimate[event.key] += weight
    return estimate


def test_bernoulli_ipw_is_unbiased_across_seeds():
    """Mean relative error -> 0 as independent seeds are averaged.

    Per-seed relative error has std ``sqrt((1-p)/(p*n))`` ~ 12.6% at
    p=0.2, n=250; the 60-seed average has std ~ 1.6%, so a 5% bound is
    a 3-sigma test on the *signed* error — a biased estimator (e.g.
    weighting by anything other than 1/p) fails it immediately.
    """
    truth = exact_counts()
    signed = {key: 0.0 for key in truth}
    abs_per_seed = 0.0
    for seed in SEEDS:
        estimate = ipw_estimate(seed, "bernoulli")
        for key, exact in truth.items():
            rel = (estimate[key] - exact) / exact
            signed[key] += rel
            abs_per_seed += abs(rel)
    n_seeds = len(list(SEEDS))
    abs_per_seed /= n_seeds * len(truth)
    mean_signed = {key: total / n_seeds for key, total in signed.items()}
    for key, bias in mean_signed.items():
        assert abs(bias) < 0.05, (key, bias)
    # The averaging is doing real work: per-seed scatter is much larger
    # than the residual bias of the seed-averaged estimate.
    mean_abs_bias = sum(abs(b) for b in mean_signed.values()) / len(truth)
    assert abs_per_seed > 0.03        # individual seeds do deviate
    assert mean_abs_bias < abs_per_seed / 3


def test_stratified_meets_deterministic_bound_every_seed():
    """Stratified mode is stronger than unbiased-in-expectation: every
    seed's estimate is within one pre-weight event (1/p post-weight) of
    the truth for every key — the bound the E22 <1% claim rests on."""
    truth = exact_counts()
    bound = 1.0 / KEEP_RATE
    for seed in SEEDS:
        estimate = ipw_estimate(seed, "stratified")
        for key, exact in truth.items():
            assert abs(estimate[key] - exact) < bound, (seed, key)


def test_stratified_is_also_unbiased_over_seeds():
    """The random initial phase makes the stratified estimator unbiased
    over seeds too (phase uniform in [0,1) -> rounding error mean 0)."""
    truth = exact_counts()
    for key, exact in truth.items():
        mean = sum(ipw_estimate(seed, "stratified")[key]
                   for seed in SEEDS) / len(list(SEEDS))
        assert abs(mean - exact) / exact < 0.01, (key, mean)
