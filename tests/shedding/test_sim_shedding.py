"""The overload-control subsystem wired into the simulator.

Reduced-scale versions of the E22 contracts that must hold in tier-1:
shedding off is byte-identical to pre-shedding builds, seeded overload
runs replay exactly, the ``overload`` metrics family is complete, and
diverted events keep their replay-stable provenance.
"""

from __future__ import annotations

from repro.analysis.invariants import check_trace
from repro.analysis.scenarios import (E22_OVERFLOW_SID, e22_overload_run,
                                      e22_shedding_trace)
from repro.cluster import ClusterSpec
from repro.shedding.controller import TIER_NAMES
from repro.sim import SimConfig, SimRuntime, constant_rate
from tests.conftest import build_count_app


def run_count_app():
    runtime = SimRuntime(
        build_count_app(), ClusterSpec.uniform(2, cores=2), SimConfig(),
        [constant_rate("S1", rate_per_s=200.0, duration_s=1.0,
                       key_fn=lambda i: f"k{i % 5}")])
    return runtime.run(3.0)


class TestSheddingOff:
    def test_counters_all_zero_and_reported(self):
        report = run_count_app()
        assert report.shedding.as_dict() == {
            "thinned": 0, "kept_weighted": 0, "weight_applied": 0.0,
            "diverted_proactive": 0, "escalations": 0,
            "deescalations": 0, "time_normal_s": 0.0,
            "time_thin_s": 0.0, "time_overflow_s": 0.0,
            "time_throttle_s": 0.0}
        text = report.counter_report()
        assert "overload.thinned=0" in text
        assert "overload.throttle_duty=0.0" in text

    def test_run_to_run_byte_identical(self):
        assert run_count_app().counter_report() \
            == run_count_app().counter_report()


class TestOverloadRuns:
    def test_overload_metrics_family_is_complete(self):
        runtime, report = e22_overload_run(policy="thin", overload=3.0,
                                           duration_s=1.0)
        family = report.metrics["overload"]
        assert family["thinned"] == report.shedding.thinned > 0
        assert family["escalations"] > 0
        for name in TIER_NAMES:
            assert f"time_{name}_s" in family
        # Per-queue overflow outcomes are zero-filled per machine so
        # the key set never depends on load.
        for machine in ("m000", "m001"):
            for outcome in ("dropped", "diverted", "diverted_proactive",
                            "throttle_retries"):
                assert f"queue.{machine}.{outcome}" in family
        assert "throttle_duty" in family
        assert report.counters.lost_total() == 0

    def test_seeded_overload_replays_exactly(self):
        _, first = e22_overload_run(policy="thin", overload=3.0,
                                    duration_s=1.0)
        _, second = e22_overload_run(policy="thin", overload=3.0,
                                     duration_s=1.0)
        assert first.counter_report() == second.counter_report()

    def test_different_seed_thins_differently(self):
        """The seed really is the only randomness source: changing it
        moves individual thinning decisions (stratified phases) while
        the totals stay in the same regime."""
        _, a = e22_overload_run(policy="thin", overload=3.0,
                                duration_s=1.0, seed=11)
        _, b = e22_overload_run(policy="thin", overload=3.0,
                                duration_s=1.0, seed=12)
        assert a.shedding.thinned > 0 and b.shedding.thinned > 0
        assert a.counter_report() != b.counter_report()


class TestDivertProvenance:
    def test_diverted_events_keep_origin_identity(self):
        """A queue-full diverted event carries its original
        ``(origin, oseq)`` through the overflow re-stamp: every shed
        span's identity reappears on a degraded-path execute span, and
        none of the diverted identities double-execute on U1."""
        runtime, report = e22_overload_run(
            policy="divert", overload=3.0, duration_s=1.0, trace=True)
        assert report.counters.diverted_overflow_stream > 0
        spans = runtime.tracer.spans()
        diverted = {(s["origin"], s["oseq"]) for s in spans
                    if s["kind"] == "shed" and s["outcome"] == "divert"}
        assert diverted
        dropped = {(s["origin"], s["oseq"]) for s in spans
                   if s["kind"] == "shed" and s["outcome"] == "drop"}
        by_op = {}
        for span in spans:
            if span["kind"] == "execute":
                by_op.setdefault(span["op"], set()).add(
                    (span["origin"], span["oseq"]))
        # Every diverted identity reaches a terminal under that same
        # identity: a degraded-path execute, or a drop if the overflow
        # queue itself was full (a diverted event never re-diverts).
        assert diverted <= by_op["U_OVF"] | dropped
        assert diverted & by_op["U_OVF"]
        # Provenance is original, not re-stamped onto the overflow sid.
        assert all(origin == "S1" for origin, _ in diverted)
        assert not any(origin == E22_OVERFLOW_SID
                       for origin, _ in by_op["U_OVF"])

    def test_shed_accounting_invariant_on_thin_trace(self):
        """Reduced-scale version of the E22 invariant gate: every event
        reaches exactly one terminal under the adaptive policy."""
        trace = e22_shedding_trace(overload=2.0, duration_s=1.0)
        violations = check_trace(trace, checks=["shed_accounting"])
        assert violations == []
