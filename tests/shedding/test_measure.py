"""Ground-truth counter-error measurement and loss accounting."""

from __future__ import annotations

import pytest

from repro.core import Application, ReferenceExecutor
from repro.errors import AnalysisError
from repro.shedding.measure import (counter_error, loss_summary,
                                    measure_counter_error)
from repro.shedding.thinning import ThinnableCounter
from tests.conftest import make_events


def slates(**counts):
    return {key: {"count": value} for key, value in counts.items()}


class TestCounterError:
    def test_exact_match_is_zero_error(self):
        report = counter_error(slates(a=10.0, b=3.0),
                               {"a": 10.0, "b": 3.0}, "U1", "count")
        assert report.compared == 2
        assert report.missing_keys == 0
        assert report.max_rel_error == 0.0
        assert report.mean_rel_error == 0.0
        assert report.worst_key == ""

    def test_relative_error_math(self):
        report = counter_error(slates(a=90.0, b=105.0),
                               {"a": 100.0, "b": 100.0}, "U1", "count")
        assert report.per_key["a"] == pytest.approx(0.10)
        assert report.per_key["b"] == pytest.approx(0.05)
        assert report.max_rel_error == pytest.approx(0.10)
        assert report.mean_rel_error == pytest.approx(0.075)
        assert report.worst_key == "a"

    def test_missing_key_reported_separately(self):
        report = counter_error(slates(a=100.0),
                               {"a": 100.0, "gone": 50.0}, "U1", "count")
        assert report.missing_keys == 1
        assert report.compared == 1
        # Total loss of a key does NOT hide inside mean/max.
        assert report.mean_rel_error == 0.0

    def test_missing_field_counts_as_missing(self):
        report = counter_error({"a": {"other": 1.0}}, {"a": 1.0},
                               "U1", "count")
        assert report.missing_keys == 1
        assert report.compared == 0

    def test_zero_truth_compares_absolutely(self):
        report = counter_error(slates(a=0.0, b=4.0),
                               {"a": 0.0, "b": 0.0}, "U1", "count")
        assert report.per_key["a"] == 0.0
        assert report.per_key["b"] == 1.0

    @pytest.mark.parametrize("bad", ["12", None, True, [1]])
    def test_non_numeric_measurement_raises(self, bad):
        with pytest.raises(AnalysisError):
            counter_error({"a": {"count": bad}}, {"a": 1.0},
                          "U1", "count")

    def test_as_dict_summary(self):
        report = counter_error(slates(a=90.0), {"a": 100.0},
                               "U1", "count")
        assert report.as_dict() == {
            "updater": "U1", "field": "count", "compared": 1,
            "missing_keys": 0,
            "max_rel_error": pytest.approx(0.1),
            "mean_rel_error": pytest.approx(0.1),
            "worst_key": "a",
        }

    def test_empty_truth(self):
        report = counter_error({}, {}, "U1", "count")
        assert report.compared == 0
        assert report.mean_rel_error == 0.0


def build_thinnable_app():
    app = Application("measure-test")
    app.add_stream("S1", external=True)
    app.add_updater("U1", ThinnableCounter, subscribes=["S1"])
    app.validate()
    return app


class TestAgainstReference:
    def test_reference_slates_have_zero_error_vs_themselves(self):
        app = build_thinnable_app()
        result = ReferenceExecutor(app).run(make_events(120, keys=4))
        report = measure_counter_error(result.slates_of("U1"), result,
                                       "U1", "count")
        assert report.compared == 4
        assert report.max_rel_error == 0.0
        assert report.missing_keys == 0

    def test_perturbed_run_shows_the_deviation(self):
        app = build_thinnable_app()
        result = ReferenceExecutor(app).run(make_events(120, keys=4))
        measured = {key: {fld: slate[fld] for fld in slate}
                    for key, slate in result.slates_of("U1").items()}
        measured["k0"]["count"] = measured["k0"]["count"] * 1.5
        del measured["k1"]
        report = measure_counter_error(measured, result, "U1", "count")
        assert report.max_rel_error == pytest.approx(0.5)
        assert report.worst_key == "k0"
        assert report.missing_keys == 1


class TestLossSummary:
    def test_lossless_run(self):
        from tests.conftest import build_count_app
        from repro.cluster import ClusterSpec
        from repro.sim import SimConfig, SimRuntime, constant_rate

        runtime = SimRuntime(
            build_count_app(), ClusterSpec.uniform(2, cores=2),
            SimConfig(),
            [constant_rate("S1", rate_per_s=200.0, duration_s=1.0,
                           key_fn=lambda i: f"k{i % 5}")])
        report = runtime.run(3.0)
        summary = loss_summary(report)
        # 200 source events on S1 plus the 200 the mapper republishes.
        assert summary["published"] == 400
        assert summary["lost"] == 0
        assert summary["degraded"] == 0
        assert summary["thinned"] == 0
        assert summary["throttled"] == 0
        assert summary["throttle_paused_s"] == 0.0
