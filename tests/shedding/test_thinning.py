"""Thinning policies and the seeded keep/skip decision engine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.shedding.thinning import (DEFAULT_CLASS, ThinnableCounter,
                                     Thinner, ThinningPolicy)


class TestThinningPolicy:
    def test_defaults(self):
        policy = ThinningPolicy()
        assert policy.keep_rate("anything") == 0.1
        assert policy.mode == "stratified"

    def test_uniform(self):
        policy = ThinningPolicy.uniform(0.25)
        assert policy.keep_rate("a") == 0.25
        assert policy.keep_rate("b") == 0.25

    def test_classifier_routes_rates(self):
        policy = ThinningPolicy(
            keep_rates={"hot": 0.1, DEFAULT_CLASS: 1.0},
            classifier=lambda key: "hot" if key == "k0" else "cold")
        assert policy.keep_rate("k0") == 0.1
        # Unknown class falls back to the default class's rate.
        assert policy.keep_rate("k9") == 1.0

    def test_unknown_class_without_default_keeps_everything(self):
        policy = ThinningPolicy(keep_rates={"hot": 0.1},
                                classifier=lambda key: "cold")
        assert policy.keep_rate("k") == 1.0

    def test_rejects_empty_rates(self):
        with pytest.raises(ConfigurationError):
            ThinningPolicy(keep_rates={})

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_rejects_out_of_range_rates(self, bad):
        with pytest.raises(ConfigurationError):
            ThinningPolicy(keep_rates={DEFAULT_CLASS: bad})

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            ThinningPolicy(mode="systematic-ish")

    def test_rate_one_is_allowed(self):
        assert ThinningPolicy.uniform(1.0).keep_rate("k") == 1.0


class TestThinner:
    def test_rate_one_keeps_all_without_consuming_rng(self):
        thinner = Thinner(ThinningPolicy.uniform(1.0), seed=3)
        state = thinner._rng.getstate()
        for _ in range(100):
            assert thinner.decide("k") == (True, 1.0)
        assert thinner._rng.getstate() == state
        assert thinner.decisions == 0

    def test_weight_is_inverse_keep_rate(self):
        thinner = Thinner(ThinningPolicy.uniform(0.25), seed=1)
        weights = {thinner.decide("k")[1] for _ in range(200)}
        assert weights <= {0.0, 4.0}
        assert 4.0 in weights

    def test_same_seed_replays_exactly(self):
        decisions = [Thinner(ThinningPolicy.uniform(0.3), seed=42).decide(
            f"k{i % 7}") for i in range(500)]
        replayed = [Thinner(ThinningPolicy.uniform(0.3), seed=42).decide(
            f"k{i % 7}") for i in range(500)]
        assert decisions == replayed

    def test_counters_account_every_decision(self):
        thinner = Thinner(ThinningPolicy.uniform(0.5), seed=0)
        for i in range(300):
            thinner.decide(f"k{i % 3}")
        assert thinner.decisions == 300
        assert thinner.kept + thinner.skipped == 300
        assert thinner.kept > 0 and thinner.skipped > 0

    def test_stratified_error_bounded_by_one_pre_weight_event(self):
        """|kept/p - n| < 1/p for every key, any n — the bounded-error
        contract the E22 bench's <1% claim rests on."""
        rate = 0.13
        for seed in range(20):
            thinner = Thinner(ThinningPolicy.uniform(rate), seed=seed)
            for n in (7, 100, 997):
                kept = sum(1 for _ in range(n)
                           if thinner.decide(f"key{n}")[0])
                assert abs(kept / rate - n) < 1.0 / rate

    def test_stratified_phase_is_per_key(self):
        """Keys sample independently: interleaving keys does not change
        each key's own kept count."""
        rate = 0.2
        solo = Thinner(ThinningPolicy.uniform(rate), seed=9)
        kept_solo = sum(1 for _ in range(250) if solo.decide("a")[0])
        mixed = Thinner(ThinningPolicy.uniform(rate), seed=9)
        kept_mixed = 0
        for i in range(500):
            key = "a" if i % 2 == 0 else "b"
            keep, _ = mixed.decide(key)
            if key == "a" and keep:
                kept_mixed += 1
        # Phases differ (different RNG draw order) but the bound holds
        # for both, so the counts agree within one stride.
        assert abs(kept_solo - kept_mixed) <= 1

    def test_bernoulli_mode_draws_per_event(self):
        thinner = Thinner(ThinningPolicy.uniform(0.5, mode="bernoulli"),
                          seed=7)
        kept = sum(1 for _ in range(1000) if thinner.decide("k")[0])
        # A fair-ish coin: loose bounds, deterministic under the seed.
        assert 400 < kept < 600


class TestThinnableCounter:
    def _updater(self):
        return ThinnableCounter({}, "U1")

    def test_declares_thinnable(self):
        assert ThinnableCounter.thinnable is True

    def test_plain_update_counts_by_one(self):
        updater = self._updater()
        slate = updater.init_slate("k")
        updater.update(None, None, slate)
        updater.update(None, None, slate)
        assert slate["count"] == 2.0

    def test_weighted_update_adds_weight(self):
        updater = self._updater()
        slate = updater.init_slate("k")
        updater.update_weighted(None, None, slate, 10.0)
        updater.update_weighted(None, None, slate, 2.5)
        assert slate["count"] == 12.5

    def test_config_can_override_thinnable_off(self):
        from tests.conftest import CountingUpdater

        from repro.core import Application

        app = Application("t")
        app.add_stream("S1", external=True)
        app.add_updater("U1", ThinnableCounter, subscribes=["S1"],
                        config={"thinnable": False})
        app.add_updater("U2", CountingUpdater, subscribes=["S1"],
                        config={"thinnable": True})
        app.add_updater("U3", ThinnableCounter, subscribes=["S1"])
        specs = {s.name for s in app.thinnable_updaters()}
        assert specs == {"U2", "U3"}

    def test_default_updater_rejects_weighted(self):
        from tests.conftest import CountingUpdater

        from repro.errors import WorkflowError

        updater = CountingUpdater({}, "U1")
        slate = updater.init_slate("k")
        # weight 1.0 silently degrades to the plain update...
        updater.update_weighted(None, None, slate, 1.0)
        assert slate["count"] == 1
        # ...but a real weight on a non-thinnable updater is a bug.
        with pytest.raises(WorkflowError):
            updater.update_weighted(None, None, slate, 2.0)
