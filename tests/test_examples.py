"""Every shipped example must run cleanly (doc/example rot guard)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

EXAMPLES = [
    "quickstart.py",
    "retailer_checkins.py",
    "hot_topics.py",
    "reputation.py",
    "cluster_simulation.py",
    "hotspot_splitting.py",
    "muppet1_vs_muppet2.py",
    "bulk_dump.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n"
        f"{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_all_examples_are_listed():
    """New example files must be added to the smoke list above."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)
