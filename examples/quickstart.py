#!/usr/bin/env python
"""Quickstart: write a map and an update function, run them, read slates.

The MapUpdate model in one file (paper Section 3): a mapper extracts
words from sentences on stream S1; an updater counts words per key on
stream S2; slates hold the counts; an HTTP endpoint serves them live.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import json
import urllib.request

from repro import Application, Event, Mapper, Updater
from repro.muppet import LocalConfig, LocalMuppet, SlateHTTPServer


class WordMapper(Mapper):
    """map(event) -> event*: one output event per word, keyed by word."""

    def map(self, ctx, event):
        for word in str(event.value).lower().split():
            ctx.publish("S2", key=word.strip(".,!?"), value=None)


class WordCounter(Updater):
    """update(event, slate) -> event*: fold each event into the slate."""

    def init_slate(self, key):
        # Called on first access: "the update function must set up the
        # set of variables it needs in the slate" (Section 3).
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1


def main() -> None:
    # 1. The workflow graph — the paper's "configuration file".
    app = Application("word-count")
    app.add_stream("S1", external=True, description="sentences")
    app.add_stream("S2", description="words")
    app.add_mapper("M1", WordMapper, subscribes=["S1"], publishes=["S2"])
    app.add_updater("U1", WordCounter, subscribes=["S2"])

    sentences = [
        "the quick brown fox jumps over the lazy dog",
        "the dog barks",
        "a quick reply beats a slow one",
        "fast data needs fast frameworks",
    ]

    # 2. Run on the local Muppet 2.0-style thread runtime.
    with LocalMuppet(app, LocalConfig(num_threads=4)) as runtime:
        for i, sentence in enumerate(sentences):
            runtime.ingest(Event("S1", ts=float(i), key=f"s{i}",
                                 value=sentence))
        runtime.drain()

        # 3. Read slates directly ...
        print("word counts (direct slate reads):")
        for word in ("the", "quick", "dog", "fast"):
            slate = runtime.read_slate("U1", word)
            print(f"  {word!r}: {slate['count']}")

        # ... and over the Section 4.4 HTTP endpoint.
        with SlateHTTPServer(runtime) as server:
            url = f"http://127.0.0.1:{server.port}/slate/U1/the"
            with urllib.request.urlopen(url) as response:
                payload = json.load(response)
            print(f"HTTP GET /slate/U1/the -> {payload['slate']}")

        print(f"runtime status: {runtime.status()['counters']}")


if __name__ == "__main__":
    main()
