#!/usr/bin/env python
"""Muppet 1.0 versus 2.0 on real threads (Section 4.5).

Runs the retailer application on both real-thread runtimes:

* ``LocalMuppet1`` — worker-per-function threads; every event (and every
  slate, both directions) crosses a genuine framed conductor pipe;
  private, fragmented slate caches.
* ``LocalMuppet``  — the 2.0 redesign: a thread pool, shared operator
  instances, one central cache, two-choice dispatch, zero in-machine IPC.

Both produce identical slates; the run prints the throughput gap and the
measured IPC traffic that 2.0 eliminated.

Run:  python examples/muppet1_vs_muppet2.py
"""

from __future__ import annotations

import time

from repro.apps import build_retailer_app
from repro.metrics import format_table
from repro.muppet import (Local1Config, LocalConfig, LocalMuppet,
                          LocalMuppet1)
from repro.workloads import CheckinGenerator


def main() -> None:
    events, truth = CheckinGenerator(rate_per_s=5000,
                                     seed=27).take_with_truth(10_000)
    print(f"workload: {len(events)} checkins, "
          f"{sum(truth.values())} at recognized retailers\n")

    with LocalMuppet1(build_retailer_app(),
                      Local1Config(workers_per_function=2)) as engine1:
        start = time.perf_counter()
        engine1.ingest_many(events)
        engine1.drain()
        t1 = time.perf_counter() - start
        counts1 = {k: v["count"]
                   for k, v in engine1.read_slates_of("U1").items()}
        ipc = engine1.ipc_stats()

    with LocalMuppet(build_retailer_app(),
                     LocalConfig(num_threads=4)) as engine2:
        start = time.perf_counter()
        engine2.ingest_many(events)
        engine2.drain()
        t2 = time.perf_counter() - start
        counts2 = {k: v["count"]
                   for k, v in engine2.read_slates_of("U1").items()}

    assert counts1 == counts2 == truth, "engines disagree!"
    print(format_table(
        ["runtime", "wall time (s)", "checkins/s", "IPC frames",
         "IPC bytes"],
        [["Muppet 1.0 (conductor pipes)", f"{t1:.2f}",
          f"{len(events) / t1:,.0f}",
          ipc.frames_to_task + ipc.frames_to_conductor,
          f"{ipc.total_bytes:,}"],
         ["Muppet 2.0 (thread pool)", f"{t2:.2f}",
          f"{len(events) / t2:,.0f}", 0, "0"]]))
    print("\nidentical slates from both engines "
          f"(all {len(truth)} retailers exact); 2.0 is "
          f"{t1 / t2:.1f}x faster by eliminating "
          f"{ipc.total_bytes / 1e6:.1f} MB of in-machine IPC "
          "(Section 4.5's redesign, measured).")


if __name__ == "__main__":
    main()
