#!/usr/bin/env python
"""Example 1/4 (Figure 1(b)): count Foursquare checkins per retailer.

Runs the paper's flagship application — RetailerMapper (Figure 3) feeding
a per-retailer Counter updater (Figure 4) — over a synthetic checkin
stream, on the local thread runtime, and verifies the slate counts
against the generator's ground truth.

Run:  python examples/retailer_checkins.py
"""

from __future__ import annotations

from repro.apps import build_retailer_app
from repro.metrics import format_table
from repro.muppet import LocalConfig, LocalMuppet
from repro.workloads import CheckinGenerator


def main() -> None:
    generator = CheckinGenerator(rate_per_s=2000, retail_fraction=0.45,
                                 seed=7)
    events, truth = generator.take_with_truth(10_000)
    print(f"generated {len(events)} checkins "
          f"({sum(truth.values())} at recognized retailers)")

    app = build_retailer_app()
    with LocalMuppet(app, LocalConfig(num_threads=4)) as runtime:
        runtime.ingest_many(events)
        runtime.drain()

        counts = {key: slate["count"]
                  for key, slate in runtime.read_slates_of("U1").items()}
        rows = [[retailer, counts.get(retailer, 0), truth[retailer],
                 "ok" if counts.get(retailer) == truth[retailer]
                 else "MISMATCH"]
                for retailer in sorted(truth)]
        print(format_table(
            ["retailer", "slate count", "ground truth", "check"], rows))

        summary = runtime.latency.summary()
        print(f"\nper-event latency: p50={summary.p50 * 1e3:.2f} ms  "
              f"p99={summary.p99 * 1e3:.2f} ms "
              "(paper bound: 2 s, Section 5)")
        assert counts == truth, "slate counts diverged from ground truth"
        print("all retailer counts exact.")


if __name__ == "__main__":
    main()
