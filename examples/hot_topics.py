#!/usr/bin/env python
"""Example 2/5 (Figure 1(c)): detect hot topics in a tweet stream.

Generates two synthetic days of tweets — a quiet baseline day, then a
day with an injected "earthquake-style" burst on one topic — and runs
the three-stage hot-topic workflow: topic mapper → per-minute counter
(windowed by timers) → detector comparing each minute's count against
the per-day average for that minute.

Run:  python examples/hot_topics.py
"""

from __future__ import annotations

from repro.apps import build_hot_topics_app
from repro.core import ReferenceExecutor
from repro.metrics import format_table
from repro.workloads import TopicBurst, TweetGenerator

DAY = 86_400.0


def main() -> None:
    rate = 40.0
    window_minutes = 4

    print("day 1: quiet baseline...")
    day1 = list(TweetGenerator(rate_per_s=rate, seed=61)
                .events(duration_s=window_minutes * 60.0))

    print("day 2: 'fashion' bursts 30x during minutes 1-2...")
    burst = TopicBurst("fashion", start_s=DAY + 60.0, end_s=DAY + 180.0,
                       multiplier=30.0)
    day2 = list(TweetGenerator(rate_per_s=rate, seed=62, bursts=[burst])
                .events(duration_s=window_minutes * 60.0, start_ts=DAY))

    app = build_hot_topics_app(window_s=60.0, threshold=3.0,
                               with_sink=False)
    result = ReferenceExecutor(app, max_events=2_000_000).run(day1 + day2)

    counts = result.events_on("S3")
    print(f"\nprocessed {len(day1) + len(day2)} tweets -> "
          f"{len(result.events_on('S2'))} topic mentions -> "
          f"{len(counts)} per-minute counts")

    day2_counts = [(e.key, e.value) for e in counts
                   if e.ts >= DAY and e.key.startswith("fashion|")]
    print(format_table(["topic|minute (day 2)", "count"],
                       [[k, v] for k, v in day2_counts]))

    alerts = [(e.key, e.value) for e in result.events_on("S4")]
    if alerts:
        print("\nHOT TOPIC ALERTS (stream S4):")
        for key, count in alerts:
            topic, minute = key.rsplit("|", 1)
            print(f"  topic {topic!r} is hot in minute {minute} "
                  f"({count} mentions vs the daily average)")
    else:
        print("\nno hot topics detected")
    assert any(key.startswith("fashion|") for key, _ in alerts), \
        "the injected burst should have been detected"


if __name__ == "__main__":
    main()
