#!/usr/bin/env python
"""Example 3: live per-user reputation scores from the tweet stream.

The subtle part (Section 3's per-key slate discipline): user B's score
change depends on user A's score, but B's updater cannot read A's slate.
The endorsement therefore flows *through* the updater itself — A's
updater attaches A's current score to an event keyed by B — making the
workflow graph cyclic, which MapUpdate explicitly allows.

Run:  python examples/reputation.py
"""

from __future__ import annotations

from repro.apps import build_reputation_app
from repro.metrics import format_table
from repro.muppet import LocalConfig, LocalMuppet
from repro.workloads import TweetGenerator


def main() -> None:
    app = build_reputation_app()
    print(f"workflow has a cycle: {app.has_cycle()} "
          "(U1 publishes endorsements into a stream it subscribes to)")

    events = TweetGenerator(rate_per_s=2000, seed=71, num_users=2000,
                            retweet_prob=0.25, reply_prob=0.15).take(20_000)

    with LocalMuppet(app, LocalConfig(num_threads=4)) as runtime:
        runtime.ingest_many(events)
        runtime.drain()
        slates = runtime.read_slates_of("U1")

    print(f"\n{len(slates)} users scored from {len(events)} tweets")
    leaderboard = sorted(slates.items(), key=lambda kv: -kv[1]["score"])
    rows = [[user, f"{s['score']:.2f}", s["tweets"],
             s["endorsements_received"]]
            for user, s in leaderboard[:10]]
    print(format_table(
        ["user", "reputation", "tweets", "endorsements received"], rows))

    # The real-time data structure of <user, score> pairs the paper
    # describes is exactly these slates — queryable live via HTTP too.
    top_user, top = leaderboard[0]
    print(f"\ntop user {top_user!r}: score {top['score']:.2f} from "
          f"{top['tweets']} tweets and {top['endorsements_received']} "
          "endorsements")


if __name__ == "__main__":
    main()
