#!/usr/bin/env python
"""Example 6: relieve a hotspot updater by splitting its key.

"Suppose, hypothetically, that a lot of people are checking into Best
Buy" — the single Best Buy updater drowns. Counting is associative and
commutative, so the mapper splits the key into sub-keys ("Best Buy#0",
"Best Buy#1", ...), partial counters run in parallel, and a merge
updater reassembles the exact total.

Run:  python examples/hotspot_splitting.py
"""

from __future__ import annotations

from repro.apps import build_retailer_app, build_split_app
from repro.cluster import ClusterSpec
from repro.metrics import format_table
from repro.sim import ENGINE_MUPPET1, SimConfig, SimRuntime, from_trace
from repro.workloads import CheckinGenerator


def run(events, num_splits):
    if num_splits == 0:
        app = build_retailer_app()
        merged = "U1"
    else:
        app = build_split_app(hot_keys=["Best Buy"],
                              num_splits=num_splits, emit_every=20)
        merged = "U2"
    runtime = SimRuntime(
        app, ClusterSpec.uniform(4, cores=2),
        SimConfig(engine=ENGINE_MUPPET1, queue_capacity=100_000,
                  latency_sinks={"U1"}),
        [from_trace("S1", list(events))])
    report = runtime.run(60.0)
    best_buy = (runtime.slates_of(merged).get("Best Buy") or {})
    return report, best_buy.get("count", 0)


def main() -> None:
    generator = CheckinGenerator(rate_per_s=6000, seed=91,
                                 retail_fraction=0.9,
                                 hot_retailer="Best Buy", hot_share=0.9)
    events, truth = generator.take_with_truth(3000)
    print(f"{len(events)} checkins; {truth['Best Buy']} hit Best Buy "
          f"({100 * truth['Best Buy'] / len(events):.0f}% — a hotspot)")

    rows = []
    for num_splits in (0, 2, 4, 8):
        report, best_buy_total = run(events, num_splits)
        label = "unsplit" if num_splits == 0 else f"{num_splits}-way"
        rows.append([label,
                     f"{report.latency.p99 * 1e3:.1f}",
                     report.queue_peak_depth,
                     best_buy_total,
                     "exact" if best_buy_total == truth["Best Buy"]
                     else "WRONG"])
    print(format_table(
        ["split", "counter p99 (ms)", "peak queue depth",
         "Best Buy total", "vs truth"], rows))
    print("\nsplitting spreads the hot key across updaters; the merge "
          "updater reassembles the exact total (associative + "
          "commutative, Example 6).")


if __name__ == "__main__":
    main()
