#!/usr/bin/env python
"""Bulk slate dumps the recommended way (Section 5).

"Repeated HTTP slate fetches can be expensive ... we have advised
bulk-dump users to log the relevant slate data ... as a part of the
applications' update functions. ... These writes can be streamed ...
into HDFS, for example, if further processing in Hadoop is desired."

This example wires a :class:`SlateLogSink` into a counting updater: every
100th update appends a compact record (a *subset* of the slate) to a
partitioned append-only log, which a batch job can consume later —
steady-state sequential writes instead of a thundering scan.

Run:  python examples/bulk_dump.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Application, Mapper, Updater
from repro.muppet import LocalConfig, LocalMuppet, SlateLogSink
from repro.workloads import CheckinGenerator
from repro.apps.retailer_count import RetailerMapper


class DumpingCounter(Updater):
    """Counts per retailer; logs a snapshot record every N updates."""

    def __init__(self, config=None, name=""):
        super().__init__(config, name)
        self.sink: SlateLogSink = self.config["sink"]
        self.every = int(self.config.get("every", 100))

    def init_slate(self, key):
        return {"count": 0}

    def update(self, ctx, event, slate):
        slate["count"] += 1
        if slate["count"] % self.every == 0:
            # "write less than the entire slate": just the number.
            self.sink.log(self.get_name(), event.key,
                          {"count": slate["count"]}, ts=event.ts)


def main() -> None:
    events, truth = CheckinGenerator(rate_per_s=2000,
                                     seed=17).take_with_truth(20_000)

    with tempfile.TemporaryDirectory() as tmp:
        sink = SlateLogSink(Path(tmp))
        app = Application("bulk-dump")
        app.add_stream("S1", external=True)
        app.add_stream("S2")
        app.add_mapper("M1", RetailerMapper, subscribes=["S1"],
                       publishes=["S2"])
        app.add_updater("U1", DumpingCounter, subscribes=["S2"],
                        config={"sink": sink, "every": 100})

        with LocalMuppet(app, LocalConfig(num_threads=4)) as runtime:
            runtime.ingest_many(events)
            runtime.drain()
            final = {k: v["count"]
                     for k, v in runtime.read_slates_of("U1").items()}

        paths = sink.flush()
        print(f"processed {len(events)} checkins; dumped "
              f"{sink.records_written} snapshot records to {paths[0]}")

        # The "Hadoop job": reconstruct per-retailer history offline.
        history = {}
        for record in sink.read("U1"):
            history.setdefault(record["key"], []).append(
                record["data"]["count"])
        for retailer in sorted(final):
            checkpoints = history.get(retailer, [])
            print(f"  {retailer}: final={final[retailer]} "
                  f"({len(checkpoints)} checkpoints, last="
                  f"{checkpoints[-1] if checkpoints else '-'})")
            assert checkpoints == sorted(checkpoints)
        assert final == truth
        print("offline history is consistent with the live slates.")


if __name__ == "__main__":
    main()
