#!/usr/bin/env python
"""Simulate a Muppet cluster: scaling, a machine failure, and recovery.

Reproduces the Section 5 deployment story in miniature: the retailer
application running at the paper's production rate on a simulated
cluster, first sweeping the machine count, then killing a machine
mid-stream and watching detection/rerouting (Section 4.3).

Run:  python examples/cluster_simulation.py
"""

from __future__ import annotations

from repro.apps import build_retailer_app
from repro.cluster import ClusterSpec
from repro.metrics import PAPER_TWEETS_PER_SECOND, format_table
from repro.sim import SimConfig, SimRuntime, from_trace
from repro.workloads import CheckinGenerator


def sweep_machines() -> None:
    print("== throughput/latency vs cluster size "
          f"(offered: {PAPER_TWEETS_PER_SECOND:.0f} ev/s, the paper's "
          "100M tweets/day) ==")
    rows = []
    for machines in (1, 2, 4, 8, 16):
        generator = CheckinGenerator(rate_per_s=PAPER_TWEETS_PER_SECOND,
                                     seed=81)
        events = list(generator.events(duration_s=2.0))
        runtime = SimRuntime(build_retailer_app(),
                             ClusterSpec.uniform(machines, cores=4),
                             SimConfig(), [from_trace("S1", events)])
        report = runtime.run(10.0)
        rows.append([machines,
                     f"{report.events_per_second():,.0f}",
                     f"{report.latency.p50 * 1e3:.2f}",
                     f"{report.latency.p99 * 1e3:.2f}",
                     report.counters.lost_total()])
    print(format_table(
        ["machines", "deliveries/s", "p50 (ms)", "p99 (ms)", "lost"],
        rows))


def failure_demo() -> None:
    print("\n== machine failure at t=1.0s on a 4-machine cluster ==")
    generator = CheckinGenerator(rate_per_s=2000, seed=82)
    events, truth = generator.take_with_truth(4000)
    runtime = SimRuntime(build_retailer_app(),
                         ClusterSpec.uniform(4, cores=4), SimConfig(),
                         [from_trace("S1", events)],
                         failures=[(1.0, "m002")])
    report = runtime.run(10.0)
    print("failure detected in "
          f"{report.failure_detection_s * 1e3:.1f} ms "
          "(worker noticed on send; master broadcast rerouted the ring)")
    print(f"events lost: {report.counters.lost_failure} "
          "(queued on / in flight to the dead machine — logged as lost)")
    counted = sum((runtime.slate('U1', r) or {}).get('count', 0)
                  for r in truth)
    print(f"counted {counted} of {sum(truth.values())} retailer "
          "checkins; the shortfall is the dead machine's unflushed "
          "slate state — 'whatever changes ... not yet flushed to the "
          "key-value store are lost' (Section 4.3)")
    print("the stream never stopped "
          f"(p99 after failure: {report.latency.p99 * 1e3:.1f} ms); a "
          "shorter flush interval bounds the loss (bench E6b)")


def main() -> None:
    sweep_machines()
    failure_demo()


if __name__ == "__main__":
    main()
