"""Exception hierarchy for the Muppet/MapUpdate reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An application or engine configuration is invalid.

    Raised, for example, when a workflow graph references an unknown stream,
    when two operators share a name, or when an engine parameter is out of
    range.
    """


class WorkflowError(ConfigurationError):
    """A workflow graph violates the MapUpdate model (Section 3).

    Examples: an operator subscribes to a stream nobody publishes, a map
    function is given a slate, or an external stream is published to by an
    internal operator (forbidden so source throttling stays deadlock-free,
    Section 5).
    """


class TimestampError(ReproError):
    """An operator emitted an event that does not advance time.

    Section 3 requires every output event's timestamp to be strictly greater
    than the input event's timestamp so that cyclic workflows remain
    well-defined.
    """


class SlateError(ReproError):
    """A slate could not be encoded, decoded, or accessed."""


class SlateTooLargeError(SlateError):
    """A slate exceeded the configured size limit.

    Section 5: "we encourage developers to keep individual slates small,
    e.g., many kilobytes rather than many megabytes." Engines may enforce a
    hard cap; exceeding it raises this error.
    """


class StoreError(ReproError):
    """The key-value store failed an operation."""


class QuorumError(StoreError):
    """Not enough replicas answered to satisfy the requested consistency."""


class QueueOverflowError(ReproError):
    """An event could not be enqueued and the policy is to raise."""


class WorkerFailedError(ReproError):
    """A peer worker (or its machine) could not be contacted."""


class EngineStoppedError(ReproError):
    """An operation was attempted on an engine that has been shut down."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class AnalysisError(ReproError):
    """A static/dynamic analysis tool was misused or given bad input.

    Raised by :mod:`repro.analysis` when a lint target cannot be parsed,
    a rule registration is malformed, a trace file is not a span trace,
    or the race detector is attached to an already-running engine. A
    *finding* (lint hit, race, invariant violation) is never an
    exception — findings are data; this error means the tool itself
    could not run.
    """
