"""Comparison baselines: snapshot MapReduce, micro-batch, Storm-style."""

from repro.baselines.mapreduce import (MapReduceCosts, MapReduceJob,
                                       MapReduceResult,
                                       periodic_job_staleness)
from repro.baselines.mapreduce_online import (MicroBatchEngine,
                                              MicroBatchReport,
                                              counting_reduce)
from repro.baselines.storm_like import (BoltStats, StormLikeTopology)

__all__ = [
    "BoltStats",
    "MapReduceCosts",
    "MapReduceJob",
    "MapReduceResult",
    "MicroBatchEngine",
    "MicroBatchReport",
    "StormLikeTopology",
    "counting_reduce",
    "periodic_job_staleness",
]
