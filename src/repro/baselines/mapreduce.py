"""Classic snapshot MapReduce — the paper's foil (Sections 1, 2).

"MapReduce runs on a static snapshot of a data set ... the input data set
does not (and cannot) change between the start of the computation and its
finish, and no reducer's input is ready to run until all mappers have
finished." We implement exactly that: a barrier-synchronized map → shuffle
→ reduce over a frozen snapshot, plus a cost model so bench E12 can
report the *staleness* of its answers against a live stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Sequence, Tuple,
                    TypeVar)

from repro.cluster.hashring import stable_hash64
from repro.errors import ConfigurationError

K = TypeVar("K")
V = TypeVar("V")
K2 = TypeVar("K2")
V2 = TypeVar("V2")

#: map(key, value) -> [(key2, value2), ...]
MapFunction = Callable[[Any, Any], Iterable[Tuple[Any, Any]]]
#: reduce(key2, [value2, ...]) -> result
ReduceFunction = Callable[[Any, List[Any]], Any]


@dataclass(frozen=True)
class MapReduceCosts:
    """Virtual per-record costs for staleness estimates (bench E12)."""

    map_record_s: float = 150e-6
    shuffle_record_s: float = 30e-6
    reduce_record_s: float = 100e-6
    job_startup_s: float = 5.0  # scheduling + task launch on a cluster

    def job_duration(self, records: int, parallelism: int) -> float:
        """Estimated wall time of one job at the given parallelism."""
        if parallelism < 1:
            raise ConfigurationError("parallelism must be >= 1")
        work = records * (self.map_record_s + self.shuffle_record_s
                          + self.reduce_record_s)
        return self.job_startup_s + work / parallelism


@dataclass
class MapReduceResult:
    """Output of one batch job."""

    results: Dict[Any, Any]
    records_in: int
    intermediate_records: int
    duration_s: float


class MapReduceJob:
    """A faithful little MapReduce: barrier between map and reduce.

    Args:
        map_fn: The map function.
        reduce_fn: The reduce function — it receives *all* values for a
            key at once, which is precisely what a stream cannot provide
            (Section 2: "the reduce step needs to see a key and all the
            values associated with the key; this is impossible in a
            streaming model").
        num_reducers: Hash-partitioned reduce parallelism.
        costs: Cost model for the duration estimate.
    """

    def __init__(self, map_fn: MapFunction, reduce_fn: ReduceFunction,
                 num_reducers: int = 4,
                 costs: MapReduceCosts = MapReduceCosts()) -> None:
        if num_reducers < 1:
            raise ConfigurationError("num_reducers must be >= 1")
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.num_reducers = num_reducers
        self.costs = costs

    def run(self, snapshot: Sequence[Tuple[Any, Any]],
            parallelism: int = 8) -> MapReduceResult:
        """Run one job over a frozen snapshot of (key, value) records."""
        partitions: List[Dict[Any, List[Any]]] = [
            {} for _ in range(self.num_reducers)
        ]
        intermediate = 0
        for key, value in snapshot:          # map phase (full pass)
            for key2, value2 in self.map_fn(key, value):
                intermediate += 1
                part = stable_hash64(str(key2)) % self.num_reducers
                partitions[part].setdefault(key2, []).append(value2)
        results: Dict[Any, Any] = {}
        for partition in partitions:          # reduce phase (after barrier)
            for key2 in sorted(partition, key=str):
                results[key2] = self.reduce_fn(key2, partition[key2])
        return MapReduceResult(
            results=results,
            records_in=len(snapshot),
            intermediate_records=intermediate,
            duration_s=self.costs.job_duration(
                len(snapshot) + intermediate, parallelism),
        )


def periodic_job_staleness(arrival_rate_per_s: float, period_s: float,
                           history_records: int,
                           costs: MapReduceCosts = MapReduceCosts(),
                           parallelism: int = 8) -> float:
    """Mean answer staleness of a snapshot job re-run every ``period_s``.

    A record arriving uniformly within a period waits on average
    ``period/2`` for the next snapshot, then the full job duration over
    the *entire accumulated history* (snapshot jobs reprocess everything).
    This is the number bench E12 compares against Muppet's per-event
    latency.
    """
    job = costs.job_duration(history_records
                             + int(arrival_rate_per_s * period_s),
                             parallelism)
    return period_s / 2.0 + job
