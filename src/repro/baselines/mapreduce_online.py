"""Micro-batch incremental MapReduce — the "MapReduce Online" family (§6).

"MapReduce Online pipelines data between the map and reduce operators by
calling reduce with partial data for early results. To retain the
MapReduce programming model, it runs reduce periodically (as a minimum
interval of time passes or a batch of new data arrives), retaining some of
its blocking behavior."

We implement that middle ground: events accumulate into fixed-interval
micro-batches; each batch runs map + an *incremental* reduce that folds
the batch's values into carried per-key state (memoization à la Incoop).
Every event's latency is (batch close - event arrival) + batch job time —
bounded below by the batch interval, which is the structural reason
MapUpdate wins on latency (bench E12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.baselines.mapreduce import MapFunction, MapReduceCosts
from repro.core.event import Event
from repro.errors import ConfigurationError
from repro.metrics import LatencyRecorder

#: fold(key2, new_values, carried_state_or_None) -> new_state
IncrementalReduce = Callable[[Any, List[Any], Optional[Any]], Any]


@dataclass
class MicroBatchReport:
    """Outcome of a micro-batch run."""

    state: Dict[Any, Any]
    batches: int
    records: int
    latency: LatencyRecorder
    mean_batch_duration_s: float


class MicroBatchEngine:
    """Fixed-interval micro-batching with carried reduce state.

    Args:
        map_fn: Standard MapReduce map function over (key, value).
        reduce_fn: Incremental reducer folding new values into state.
        batch_interval_s: The micro-batch period ("as a minimum interval
            of time passes").
        parallelism: For the per-batch duration estimate.
        costs: Per-record cost model (startup cost is amortized away for
            a resident streaming job, so it is excluded here).
    """

    def __init__(self, map_fn: MapFunction, reduce_fn: IncrementalReduce,
                 batch_interval_s: float = 10.0, parallelism: int = 8,
                 costs: MapReduceCosts = MapReduceCosts()) -> None:
        if batch_interval_s <= 0:
            raise ConfigurationError("batch_interval_s must be positive")
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.batch_interval_s = batch_interval_s
        self.parallelism = parallelism
        self.costs = costs

    def run(self, events: Iterable[Event]) -> MicroBatchReport:
        """Process a timestamp-ordered event stream batch by batch."""
        state: Dict[Any, Any] = {}
        latency = LatencyRecorder()
        batch: List[Event] = []
        batch_end: Optional[float] = None
        batches = 0
        records = 0
        total_duration = 0.0

        def close_batch() -> None:
            nonlocal batches, total_duration
            if not batch or batch_end is None:
                return
            grouped: Dict[Any, List[Any]] = {}
            intermediate = 0
            for event in batch:
                for key2, value2 in self.map_fn(event.key, event.value):
                    grouped.setdefault(key2, []).append(value2)
                    intermediate += 1
            for key2 in sorted(grouped, key=str):
                state[key2] = self.reduce_fn(key2, grouped[key2],
                                             state.get(key2))
            duration = (len(batch) + intermediate) * (
                self.costs.map_record_s + self.costs.shuffle_record_s
                + self.costs.reduce_record_s) / self.parallelism
            total_duration += duration
            batches += 1
            for event in batch:
                latency.record((batch_end - event.ts) + duration)
            batch.clear()

        for event in events:
            records += 1
            if batch_end is None:
                batch_end = (int(event.ts / self.batch_interval_s) + 1) \
                    * self.batch_interval_s
            while event.ts >= batch_end:
                close_batch()
                batch_end += self.batch_interval_s
            batch.append(event)
        close_batch()
        return MicroBatchReport(
            state=state,
            batches=batches,
            records=records,
            latency=latency,
            mean_batch_duration_s=(total_duration / batches
                                   if batches else 0.0),
        )


def counting_reduce(key: Any, values: List[Any],
                    carried: Optional[int]) -> int:
    """The canonical incremental reducer: a running count."""
    return (carried or 0) + len(values)
