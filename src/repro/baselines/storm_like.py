"""A Storm/S4-style stream processor: routing without managed state (§6).

"These systems, however, leave it to the application to implement and
manage its own state. Our experience suggests that this is highly
nontrivial in many cases. By contrast, Muppet transparently manages
application storage."

This baseline gives the application exactly what Storm/S4 gave it in 2012:
key-grouped routing to bolt instances and nothing else. Each bolt keeps
whatever state it wants in an instance dict; nothing is persisted; killing
a bolt instance wipes its state. Bench E12 runs the same counting workload
here and on Muppet, then kills one instance in each and compares what
survives (Muppet refetches slates from the kv-store; this baseline
restarts from zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.cluster.hashring import stable_hash64
from repro.core.event import Event
from repro.errors import ConfigurationError

#: A bolt: process(event, state_dict, emit_fn). State is app-managed.
BoltFunction = Callable[[Event, Dict[str, Any],
                         Callable[[str, str, Any], None]], None]


@dataclass
class BoltStats:
    """Per-bolt-type counters."""

    processed: int = 0
    emitted: int = 0
    instance_restarts: int = 0
    state_entries_lost: int = 0


class _BoltInstance:
    """One parallel instance of a bolt with its private, volatile state."""

    def __init__(self, bolt_id: str, index: int) -> None:
        self.bolt_id = bolt_id
        self.index = index
        self.state: Dict[str, Any] = {}

    def crash(self) -> int:
        """Kill and restart the instance: all state is gone."""
        lost = len(self.state)
        self.state = {}
        return lost


class StormLikeTopology:
    """A minimal fields-grouped topology.

    Args:
        spout_stream: The stream ID external events arrive on.

    Usage::

        topo = StormLikeTopology("S1")
        topo.add_bolt("count", count_bolt, subscribes=["S1"], parallelism=4)
        topo.process(events)
        total = sum(inst.state.get("walmart", 0)
                    for inst in topo.instances("count"))
    """

    def __init__(self, spout_stream: str) -> None:
        self.spout_stream = spout_stream
        self._bolts: Dict[str, Tuple[BoltFunction, List[_BoltInstance]]] = {}
        self._subscriptions: Dict[str, List[str]] = {spout_stream: []}
        self.stats: Dict[str, BoltStats] = {}

    def add_bolt(self, bolt_id: str, fn: BoltFunction,
                 subscribes: List[str], parallelism: int = 1) -> None:
        """Register a bolt with fields-grouping on the event key."""
        if bolt_id in self._bolts:
            raise ConfigurationError(f"duplicate bolt {bolt_id!r}")
        if parallelism < 1:
            raise ConfigurationError("parallelism must be >= 1")
        instances = [_BoltInstance(bolt_id, i) for i in range(parallelism)]
        self._bolts[bolt_id] = (fn, instances)
        self.stats[bolt_id] = BoltStats()
        for sid in subscribes:
            self._subscriptions.setdefault(sid, []).append(bolt_id)

    def instances(self, bolt_id: str) -> List[_BoltInstance]:
        """The parallel instances of one bolt."""
        return self._bolts[bolt_id][1]

    def crash_instance(self, bolt_id: str, index: int) -> int:
        """Kill one instance; returns the number of state entries lost.

        This is the paper's point: with app-managed volatile state, a
        restart loses everything the instance knew.
        """
        stats = self.stats[bolt_id]
        instance = self._bolts[bolt_id][1][index]
        lost = instance.crash()
        stats.instance_restarts += 1
        stats.state_entries_lost += lost
        return lost

    def process(self, events) -> int:
        """Push events through the topology synchronously; returns count."""
        n = 0
        for event in events:
            n += 1
            self._route(event)
        return n

    def _route(self, event: Event) -> None:
        for bolt_id in self._subscriptions.get(event.sid, []):
            fn, instances = self._bolts[bolt_id]
            index = stable_hash64(event.key) % len(instances)
            instance = instances[index]
            stats = self.stats[bolt_id]
            stats.processed += 1

            def emit(sid: str, key: str, value: Any,
                     _ts: float = event.ts) -> None:
                stats.emitted += 1
                self._route(Event(sid, _ts + 1e-6, key, value))

            fn(event, instance.state, emit)

    def total_state_entries(self, bolt_id: str) -> int:
        """Entries across all instances of one bolt (survivor count)."""
        return sum(len(inst.state) for inst in self._bolts[bolt_id][1])
