"""Storage device models: SSD versus spinning disk (Section 4.2).

The paper runs its Cassandra store on SSDs and explains why in three
bullets: fast random reads warm the slate cache at startup, random-seek
capacity serves uncached slate fetches *while compactions run*, and
buffering writes in memory keeps write I/O cheap. To reproduce that
experiment (bench E8) we need a device model that charges realistic costs
for random versus sequential I/O on both device classes.

A :class:`StorageDevice` is a pure cost model plus accounting: callers ask
for the *time* an operation takes and accumulate it into their own clock
(wall or virtual). Default parameters are round numbers for a ~2010-era
commodity SATA HDD and SATA SSD — the hardware generation the paper used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth parameters for one device class.

    Attributes:
        name: Profile label (``"ssd"``/``"hdd"``/custom).
        random_read_latency_s: Fixed cost per random read op (seek +
            rotation for HDD; flash lookup for SSD).
        random_write_latency_s: Fixed cost per random write op.
        sequential_bandwidth_bytes_per_s: Streaming throughput used for
            flushes, compaction reads/writes, and commit-log appends.
        max_iops: Random-operation ceiling (informational; derived
            latencies already encode it).
    """

    name: str
    random_read_latency_s: float
    random_write_latency_s: float
    sequential_bandwidth_bytes_per_s: float
    max_iops: float

    def random_read_time(self, size_bytes: int) -> float:
        """Seconds for one random read of ``size_bytes``."""
        return (self.random_read_latency_s
                + size_bytes / self.sequential_bandwidth_bytes_per_s)

    def random_write_time(self, size_bytes: int) -> float:
        """Seconds for one random write of ``size_bytes``."""
        return (self.random_write_latency_s
                + size_bytes / self.sequential_bandwidth_bytes_per_s)

    def sequential_time(self, size_bytes: int) -> float:
        """Seconds to stream ``size_bytes`` (flush/compaction/commit log)."""
        return size_bytes / self.sequential_bandwidth_bytes_per_s


#: ~2010 commodity SATA SSD: ~100 µs random read, ~250 MB/s streaming.
SSD_PROFILE = DeviceProfile(
    name="ssd",
    random_read_latency_s=100e-6,
    random_write_latency_s=120e-6,
    sequential_bandwidth_bytes_per_s=250e6,
    max_iops=10_000,
)

#: 7200 RPM SATA HDD: ~8 ms seek+rotation, ~100 MB/s streaming.
HDD_PROFILE = DeviceProfile(
    name="hdd",
    random_read_latency_s=8e-3,
    random_write_latency_s=9e-3,
    sequential_bandwidth_bytes_per_s=100e6,
    max_iops=120,
)

_PROFILES: Dict[str, DeviceProfile] = {
    "ssd": SSD_PROFILE,
    "hdd": HDD_PROFILE,
}


def profile_for(name: str) -> DeviceProfile:
    """Look up a built-in device profile by name (``"ssd"``/``"hdd"``)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown device profile {name!r}; "
            f"choices: {sorted(_PROFILES)}"
        ) from None


@dataclass
class DeviceStats:
    """Cumulative I/O accounting for one device."""

    random_reads: int = 0
    random_writes: int = 0
    sequential_bytes_read: int = 0
    sequential_bytes_written: int = 0
    busy_time_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict snapshot for logging/benchmarks."""
        return {
            "random_reads": self.random_reads,
            "random_writes": self.random_writes,
            "sequential_bytes_read": self.sequential_bytes_read,
            "sequential_bytes_written": self.sequential_bytes_written,
            "busy_time_s": self.busy_time_s,
        }


class StorageDevice:
    """A device instance: a profile plus cumulative usage accounting.

    Every LSM operation on a :class:`repro.kvstore.node.StorageNode` calls
    one of the ``charge_*`` methods; the returned duration is the simulated
    service time of the I/O, which the caller adds to its clock. ``stats``
    accumulates totals so benches can report, e.g., compaction bytes versus
    read-serving ops (the paper's SSD argument).
    """

    def __init__(self, profile: DeviceProfile) -> None:
        self.profile = profile
        self.stats = DeviceStats()

    @classmethod
    def ssd(cls) -> "StorageDevice":
        """A fresh SSD-profile device."""
        return cls(SSD_PROFILE)

    @classmethod
    def hdd(cls) -> "StorageDevice":
        """A fresh HDD-profile device."""
        return cls(HDD_PROFILE)

    def charge_random_read(self, size_bytes: int) -> float:
        """Account one random read; returns its duration in seconds."""
        cost = self.profile.random_read_time(size_bytes)
        self.stats.random_reads += 1
        self.stats.busy_time_s += cost
        return cost

    def charge_random_write(self, size_bytes: int) -> float:
        """Account one random write; returns its duration in seconds."""
        cost = self.profile.random_write_time(size_bytes)
        self.stats.random_writes += 1
        self.stats.busy_time_s += cost
        return cost

    def charge_sequential_read(self, size_bytes: int) -> float:
        """Account a streaming read (compaction input); returns seconds."""
        cost = self.profile.sequential_time(size_bytes)
        self.stats.sequential_bytes_read += size_bytes
        self.stats.busy_time_s += cost
        return cost

    def charge_sequential_write(self, size_bytes: int) -> float:
        """Account a streaming write (flush/compaction/commit log)."""
        cost = self.profile.sequential_time(size_bytes)
        self.stats.sequential_bytes_written += size_bytes
        self.stats.busy_time_s += cost
        return cost
