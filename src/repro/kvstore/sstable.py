"""SSTables: immutable sorted runs flushed from the memtable.

Each flush writes one SSTable; point reads consult SSTables newest-first,
skipping files whose bloom filter rules the row out. This is the mechanism
behind the paper's observation that "the more times a row is flushed to
disk by the store since its last file compaction, the more files will have
to be checked for the row when it needs to be retrieved" (Section 4.2) —
compaction (see :mod:`repro.kvstore.node`) merges runs back down.

SSTables can live purely in memory (simulator mode) or be persisted as
JSON-lines files in a data directory (durability tests).
"""

from __future__ import annotations

import itertools
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.errors import StoreError
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.cells import Cell, CellKey

_sstable_ids = itertools.count(1)


class SSTable:
    """One immutable sorted run of cells.

    Args:
        cells: Cells in any order; stored sorted by ``(row, column)``.
            For duplicate keys the newest ``write_ts`` wins.
        generation: Monotonic ID; higher = newer. Auto-assigned when 0.
        path: Optional file to persist the run to (JSON lines).
    """

    def __init__(self, cells: Iterable[Cell], generation: int = 0,
                 path: Optional[Path] = None) -> None:
        newest: Dict[CellKey, Cell] = {}
        for cell in cells:
            existing = newest.get(cell.key)
            if existing is None or cell.supersedes(existing):
                newest[cell.key] = cell
        self._cells: Dict[CellKey, Cell] = dict(sorted(newest.items()))
        self.generation = generation or next(_sstable_ids)
        self._bloom = BloomFilter(expected_items=max(1, len(self._cells)))
        for row, column in self._cells:
            self._bloom.add(f"{row}\x00{column}")
        self._size = sum(c.size_bytes() for c in self._cells.values())
        self._path = Path(path) if path is not None else None
        if self._path is not None:
            self._persist()

    # -- reads --------------------------------------------------------------
    def might_contain(self, row: str, column: str) -> bool:
        """Bloom-filter check; False means the cell is definitely absent."""
        return self._bloom.might_contain(f"{row}\x00{column}")

    def get(self, row: str, column: str) -> Optional[Cell]:
        """The cell (including tombstones) or None."""
        return self._cells.get((row, column))

    def cells(self) -> List[Cell]:
        """All cells in ``(row, column)`` order."""
        return list(self._cells.values())

    def scan_row(self, row: str) -> List[Cell]:
        """All cells of one row (bulk-read path, Section 5)."""
        return [c for (r, _), c in self._cells.items() if r == row]

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def size_bytes(self) -> int:
        """Approximate on-disk size of the run."""
        return self._size

    @property
    def path(self) -> Optional[Path]:
        """The backing file, if persisted."""
        return self._path

    # -- persistence ----------------------------------------------------------
    def _persist(self) -> None:
        assert self._path is not None
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with self._path.open("w", encoding="utf-8") as handle:
                for cell in self._cells.values():
                    handle.write(json.dumps({
                        "row": cell.row,
                        "column": cell.column,
                        "value": (cell.value.decode("latin-1")
                                  if cell.value is not None else None),
                        "write_ts": cell.write_ts,
                        "ttl": cell.ttl,
                    }, separators=(",", ":")))
                    handle.write("\n")
        except OSError as exc:
            raise StoreError(f"sstable persist failed: {exc}") from exc

    @classmethod
    def load(cls, path: Path, generation: int = 0) -> "SSTable":
        """Reconstruct an SSTable from a persisted JSON-lines file."""
        cells: List[Cell] = []
        try:
            with Path(path).open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    value = record["value"]
                    cells.append(Cell(
                        row=record["row"],
                        column=record["column"],
                        value=(value.encode("latin-1")
                               if value is not None else None),
                        write_ts=record["write_ts"],
                        ttl=record["ttl"],
                    ))
        except OSError as exc:
            raise StoreError(f"sstable load failed: {exc}") from exc
        table = cls(cells, generation=generation)
        table._path = Path(path)
        return table

    def delete_file(self) -> None:
        """Remove the backing file after compaction supersedes this run."""
        if self._path is not None:
            try:
                self._path.unlink(missing_ok=True)
            except OSError as exc:
                raise StoreError(f"sstable delete failed: {exc}") from exc


def merge_sstables(tables: List[SSTable], now: float,
                   drop_tombstones: bool = True,
                   path: Optional[Path] = None) -> SSTable:
    """Size-tiered compaction: merge runs into one, purging garbage.

    Keeps, per ``(row, column)``, only the newest cell; drops cells whose
    TTL has expired by ``now`` (the store-side garbage collection of
    Section 4.2) and, optionally, tombstones (safe when merging *all* runs
    of the store, as our compaction does).

    Args:
        tables: Runs to merge (any order).
        now: Current time, for TTL expiry decisions.
        drop_tombstones: Purge delete markers from the output.
        path: Optional file for the merged run.

    Returns:
        The merged SSTable (new generation).
    """
    newest: Dict[CellKey, Cell] = {}
    for table in tables:
        for cell in table.cells():
            existing = newest.get(cell.key)
            if existing is None or cell.supersedes(existing):
                newest[cell.key] = cell
    survivors = []
    for cell in newest.values():  # noqa: MUP003 -- SSTable() sorts cells at construction; survivor order cannot leak
        if cell.expired(now):
            continue  # TTL GC happens here, at compaction.
        if drop_tombstones and cell.is_tombstone:
            continue
        survivors.append(cell)
    return SSTable(survivors, path=path)
