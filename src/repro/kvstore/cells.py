"""Storage cells: the unit of data in the key-value store (Section 4.2).

Muppet stores slate ``S(U, k)`` "as a value at row k and column U" within a
column family; each write can carry a time-to-live after which the store may
garbage-collect the cell. A :class:`Cell` is one version of one
``(row, column)`` entry: a value blob (or tombstone), the write timestamp
used for last-write-wins reconciliation across replicas, and the optional
TTL.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Address of a cell within a column family: ``(row, column)``.
CellKey = Tuple[str, str]


@dataclass(frozen=True, slots=True)
class Cell:
    """One version of a ``(row, column)`` entry.

    Attributes:
        row: Row key — the event key ``k`` for slate storage.
        column: Column name — the updater name ``U`` for slate storage.
        value: The stored blob (compressed slate bytes), or ``None`` for a
            tombstone (an explicit delete marker).
        write_ts: Timestamp of the write; replicas reconcile divergent
            versions by keeping the newest (last-write-wins, as Cassandra
            does).
        ttl: Optional time-to-live in seconds from ``write_ts``; expired
            cells behave as absent and are purged at compaction
            ("Slates that have not been updated (written) for longer than
            the TTL value may be garbage-collected", Section 4.2).
    """

    row: str
    column: str
    value: Optional[bytes]
    write_ts: float
    ttl: Optional[float] = None

    @property
    def key(self) -> CellKey:
        """The cell's ``(row, column)`` address."""
        return (self.row, self.column)

    @property
    def is_tombstone(self) -> bool:
        """True when the cell records a delete."""
        return self.value is None

    def expired(self, now: float) -> bool:
        """True when the TTL has elapsed at time ``now``."""
        if self.ttl is None:
            return False
        return now - self.write_ts > self.ttl

    def live(self, now: float) -> bool:
        """True when the cell holds a readable value at time ``now``."""
        return not self.is_tombstone and not self.expired(now)

    def size_bytes(self) -> int:
        """Approximate on-disk footprint of this cell."""
        payload = len(self.value) if self.value is not None else 0
        return 24 + len(self.row) + len(self.column) + payload

    def supersedes(self, other: "Cell") -> bool:
        """Last-write-wins: newer write timestamp wins; ties keep self."""
        return self.write_ts >= other.write_ts
