"""The memtable: the write-buffering heart of the store (Section 4.2).

"Because applications often update popular slates repeatedly, we minimize
disk I/O for writing at the key-value store if we devote the store's main
memory to buffering writes. Overwrites of the same row in the key-value
store are relatively inexpensive if the row is still in memory at the time
of the write, so it is advantageous for us to delay flushing the writes
(i.e., the memory table) to disk as long as possible."

The memtable absorbs overwrites: a hot slate written 1,000 times between
flushes costs one flushed cell, not 1,000. :class:`Memtable` tracks how many
writes it absorbed so benches (E8/E9) can quantify exactly that saving.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.kvstore.cells import Cell, CellKey


class Memtable:
    """An in-memory, mutable buffer of the newest cell per ``(row, column)``.

    Not thread-safe by itself; :class:`repro.kvstore.node.StorageNode`
    serializes access.
    """

    def __init__(self) -> None:
        self._cells: Dict[CellKey, Cell] = {}
        self._bytes = 0
        #: Writes that replaced an existing in-memory cell — the disk
        #: writes the memtable saved (the paper's overwrite argument).
        self.absorbed_overwrites = 0
        #: Total writes accepted since the last flush.
        self.writes = 0

    def put(self, cell: Cell) -> None:
        """Insert or overwrite the cell for ``(cell.row, cell.column)``."""
        previous = self._cells.get(cell.key)
        if previous is not None:
            self._bytes -= previous.size_bytes()
            self.absorbed_overwrites += 1
        self._cells[cell.key] = cell
        self._bytes += cell.size_bytes()
        self.writes += 1

    def get(self, row: str, column: str) -> Optional[Cell]:
        """The newest buffered cell, tombstones included; None if absent."""
        return self._cells.get((row, column))

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, key: CellKey) -> bool:
        return key in self._cells

    @property
    def size_bytes(self) -> int:
        """Approximate memory footprint of the buffered cells."""
        return self._bytes

    def cells_sorted(self) -> List[Cell]:
        """All cells in ``(row, column)`` order, ready to flush."""
        return [self._cells[k] for k in sorted(self._cells)]

    def rows(self) -> Iterator[str]:
        """Distinct row keys currently buffered."""
        seen = set()
        for row, _ in self._cells:
            if row not in seen:
                seen.add(row)
                yield row

    def clear(self) -> None:
        """Empty the memtable after a flush (counters persist)."""
        self._cells.clear()
        self._bytes = 0
