"""A single LSM storage node — our from-scratch Cassandra stand-in.

Write path: append to the commit log (sequential I/O), then buffer in the
memtable; when the memtable exceeds its threshold, flush it as a new SSTable
(sequential I/O) and truncate the log. When the SSTable count reaches the
compaction threshold, merge all runs into one, purging TTL-expired cells and
tombstones. Read path: memtable first (free), then SSTables newest-first,
charging one random read per file actually probed; bloom filters skip files
that cannot hold the row.

This reproduces the economics the paper relies on in Section 4.2:
overwrites of hot slates are absorbed in memory, flushes and compactions
are streaming I/O that competes with read-serving random I/O (the SSD
argument), and TTL garbage collection happens at compaction time.

Time is externalized: the node never sleeps; every operation *returns* its
simulated duration, and heavy background work (flush/compaction) accrues in
``pending_background_s`` for the caller's background-I/O thread to drain —
matching Muppet 2.0's dedicated background kv-store thread (Section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import StoreError
from repro.kvstore.cells import Cell
from repro.kvstore.commitlog import CommitLog
from repro.kvstore.device import StorageDevice
from repro.kvstore.memtable import Memtable
from repro.kvstore.sstable import SSTable, merge_sstables


@dataclass(slots=True)
class NodeStats:
    """Operation counters for one storage node."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    memtable_hits: int = 0
    sstables_probed: int = 0
    bloom_skips: int = 0
    flushes: int = 0
    compactions: int = 0
    bytes_flushed: int = 0
    bytes_compacted: int = 0
    ttl_purged_cells: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict snapshot for logging/benchmarks."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class StorageNode:
    """One node of the key-value store: commit log + memtable + SSTables.

    Args:
        name: Node name (usually the machine name it is co-located with).
        device: The storage device model charged for every I/O.
        clock: Returns "now" in seconds — wall clock for the local
            runtime, virtual clock for the simulator. Drives TTL expiry.
        memtable_flush_bytes: Flush threshold; larger values buffer more
            overwrites (the paper delays flushing "as long as possible").
        compaction_threshold: Number of SSTables that triggers a full
            (size-tiered, single-tier) compaction.
        data_dir: Directory for persistent SSTables and commit log;
            ``None`` keeps everything in memory (costs still charged).

    Thread safety: callers serialize access (the engines funnel kv-store
    traffic through one background I/O thread, as Muppet 2.0 does).
    """

    def __init__(
        self,
        name: str,
        device: Optional[StorageDevice] = None,
        clock: Callable[[], float] = lambda: 0.0,
        memtable_flush_bytes: int = 4 * 1024 * 1024,
        compaction_threshold: int = 8,
        data_dir: Optional[Path] = None,
    ) -> None:
        self.name = name
        self.device = device or StorageDevice.ssd()
        self.clock = clock
        self.memtable_flush_bytes = memtable_flush_bytes
        self.compaction_threshold = max(2, compaction_threshold)
        self._data_dir = Path(data_dir) if data_dir is not None else None
        log_path = (self._data_dir / f"{name}.commitlog"
                    if self._data_dir is not None else None)
        self._log = CommitLog(log_path)
        self._memtable = Memtable()
        self._sstables: List[SSTable] = []  # oldest first
        self.stats = NodeStats()
        #: Simulated seconds of flush/compaction work awaiting the
        #: background I/O thread.
        self.pending_background_s = 0.0
        self.is_down = False

    # -- write path ------------------------------------------------------------
    def put(self, row: str, column: str, value: bytes,
            ttl: Optional[float] = None) -> float:
        """Write one cell; returns the foreground I/O time in seconds."""
        self._check_up()
        if ttl is not None and not isinstance(ttl, (int, float)):
            raise StoreError(
                f"ttl must be a number of seconds or None, got {ttl!r}"
            )
        cell = Cell(row, column, value, write_ts=self.clock(), ttl=ttl)
        return self._apply(cell)

    def put_many(
        self,
        cells: List[Tuple[str, str, bytes, Optional[float]]],
    ) -> float:
        """Write a multi-cell batch ``[(row, column, value, ttl), ...]``.

        All cells share one commit-log append chain and one sequential-
        write charge for the combined bytes, and the memtable flush
        threshold is checked once at the end — the coalesced-flush path
        of the slate managers. Returns the foreground I/O time.
        """
        self._check_up()
        now = self.clock()
        total_bytes = 0
        for row, column, value, ttl in cells:
            if ttl is not None and not isinstance(ttl, (int, float)):
                raise StoreError(
                    f"ttl must be a number of seconds or None, got {ttl!r}"
                )
            cell = Cell(row, column, value, write_ts=now, ttl=ttl)
            self.stats.puts += 1
            total_bytes += self._log.append(cell)
            self._memtable.put(cell)
        cost = self.device.charge_sequential_write(total_bytes)
        if self._memtable.size_bytes >= self.memtable_flush_bytes:
            self.flush()
        return cost

    def delete(self, row: str, column: str) -> float:
        """Write a tombstone; returns the foreground I/O time."""
        self._check_up()
        self.stats.deletes += 1
        cell = Cell(row, column, None, write_ts=self.clock())
        return self._apply(cell)

    def _apply(self, cell: Cell) -> float:
        self.stats.puts += 1
        size = self._log.append(cell)
        cost = self.device.charge_sequential_write(size)
        self._memtable.put(cell)
        if self._memtable.size_bytes >= self.memtable_flush_bytes:
            self.flush()
        return cost

    # -- read path ----------------------------------------------------------
    def get(self, row: str, column: str) -> Tuple[Optional[bytes], float]:
        """Read the live value for (row, column).

        Returns:
            ``(value, cost_s)`` where value is None when absent, deleted,
            or TTL-expired, and cost_s is the simulated read time.
        """
        self._check_up()
        self.stats.gets += 1
        now = self.clock()
        cell = self._memtable.get(row, column)
        if cell is not None:
            self.stats.memtable_hits += 1
            return (cell.value if cell.live(now) else None), 0.0

        cost = 0.0
        for table in reversed(self._sstables):  # newest first
            if not table.might_contain(row, column):
                self.stats.bloom_skips += 1
                continue
            self.stats.sstables_probed += 1
            found = table.get(row, column)
            # Bloom false positive: charge the probe, keep searching.
            probe_size = found.size_bytes() if found is not None else 64
            cost += self.device.charge_random_read(probe_size)
            if found is not None:
                return (found.value if found.live(now) else None), cost
        return None, cost

    def scan_row(self, row: str) -> Tuple[Dict[str, bytes], float]:
        """All live columns of a row (the bulk-read path of Section 5)."""
        self._check_up()
        now = self.clock()
        newest: Dict[str, Cell] = {}
        cost = 0.0
        for table in self._sstables:
            for cell in table.scan_row(row):
                cost += self.device.charge_random_read(cell.size_bytes())
                existing = newest.get(cell.column)
                if existing is None or cell.supersedes(existing):
                    newest[cell.column] = cell
        for key, cell in list(self._memtable._cells.items()):
            if key[0] != row:
                continue
            existing = newest.get(cell.column)
            if existing is None or cell.supersedes(existing):
                newest[cell.column] = cell
        live = {c.column: c.value for c in newest.values()
                if c.live(now) and c.value is not None}
        return live, cost

    def column_cells(self, column: str) -> Dict[str, Cell]:
        """Newest live cell per row for one column (offline inspection).

        Walks the memtable and every SSTable without charging simulated
        I/O or touching the operation counters — this is the post-run
        read-through path, not a store operation the workload pays for.
        """
        now = self.clock()
        newest: Dict[str, Cell] = {}
        for table in self._sstables:
            for cell in table.cells():
                if cell.column != column:
                    continue
                existing = newest.get(cell.row)
                if existing is None or cell.supersedes(existing):
                    newest[cell.row] = cell
        for (row, col), cell in self._memtable._cells.items():
            if col != column:
                continue
            existing = newest.get(row)
            if existing is None or cell.supersedes(existing):
                newest[row] = cell
        return {row: cell for row, cell in newest.items()
                if cell.live(now) and cell.value is not None}

    # -- maintenance -------------------------------------------------------------
    def flush(self) -> float:
        """Flush the memtable to a new SSTable; returns background cost."""
        if len(self._memtable) == 0:
            return 0.0
        path = None
        if self._data_dir is not None:
            path = self._data_dir / f"{self.name}-{len(self._sstables)}-{self.stats.flushes}.sst"
        table = SSTable(self._memtable.cells_sorted(), path=path)
        self._sstables.append(table)
        cost = self.device.charge_sequential_write(table.size_bytes)
        self.pending_background_s += cost
        self.stats.flushes += 1
        self.stats.bytes_flushed += table.size_bytes
        self._memtable.clear()
        self._log.truncate()
        if len(self._sstables) >= self.compaction_threshold:
            cost += self.compact()
        return cost

    def compact(self) -> float:
        """Merge all SSTables into one; purge TTL-expired cells/tombstones.

        Returns the background I/O time (read inputs + write output).
        """
        if len(self._sstables) <= 1:
            return 0.0
        now = self.clock()
        input_bytes = sum(t.size_bytes for t in self._sstables)
        input_cells = sum(len(t) for t in self._sstables)
        cost = self.device.charge_sequential_read(input_bytes)
        path = None
        if self._data_dir is not None:
            path = self._data_dir / f"{self.name}-compacted-{self.stats.compactions}.sst"
        merged = merge_sstables(self._sstables, now=now, path=path)
        cost += self.device.charge_sequential_write(merged.size_bytes)
        self.stats.ttl_purged_cells += input_cells - len(merged)
        for table in self._sstables:
            table.delete_file()
        self._sstables = [merged] if len(merged) else []
        self.stats.compactions += 1
        self.stats.bytes_compacted += input_bytes
        self.pending_background_s += cost
        return cost

    def take_background_cost(self) -> float:
        """Drain accrued flush/compaction time (background-thread hook)."""
        cost = self.pending_background_s
        self.pending_background_s = 0.0
        return cost

    @classmethod
    def open(cls, name: str, data_dir: Path, **kwargs) -> "StorageNode":
        """Reopen a node from its persisted state (cold process restart).

        Loads every ``*.sst`` run in ``data_dir`` (oldest generation
        first) and replays the commit log into a fresh memtable — the
        full durability story: flushed data comes back from SSTables,
        acknowledged-but-unflushed writes from the log.
        """
        data_dir = Path(data_dir)
        log_path = data_dir / f"{name}.commitlog"
        pending: List[Cell] = []
        if log_path.exists():
            pending = list(CommitLog.replay_file(log_path))
        node = cls(name, data_dir=data_dir, **kwargs)
        # The constructor truncated the log file; re-apply the replayed
        # mutations so they are buffered (and re-logged) again.
        # Order runs oldest-first by file timestamp (lexicographic names
        # would mis-order flush #10 before #9), so newest-first reads
        # resolve duplicate keys correctly.
        sst_paths = sorted(data_dir.glob("*.sst"),
                           key=lambda p: (p.stat().st_mtime_ns, p.name))
        for generation, path in enumerate(sst_paths, start=1):
            node._sstables.append(SSTable.load(path,
                                               generation=generation))
        for cell in pending:
            node._memtable.put(cell)
            node._log.append(cell)
        return node

    # -- failure / recovery ---------------------------------------------------
    def crash(self) -> None:
        """Simulate a process crash: lose the memtable, keep durable state."""
        self._memtable = Memtable()
        self.is_down = True

    def recover(self) -> int:
        """Replay the commit log into a fresh memtable; returns cells."""
        replayed = 0
        for cell in self._log.replay():
            self._memtable.put(cell)
            replayed += 1
        self.is_down = False
        return replayed

    def _check_up(self) -> None:
        if self.is_down:
            raise StoreError(f"storage node {self.name!r} is down")

    # -- introspection -----------------------------------------------------------
    @property
    def sstable_count(self) -> int:
        """Current number of on-disk runs."""
        return len(self._sstables)

    @property
    def memtable_bytes(self) -> int:
        """Current memtable footprint."""
        return self._memtable.size_bytes

    @property
    def absorbed_overwrites(self) -> int:
        """Disk writes avoided by in-memory overwrites (Section 4.2)."""
        return self._memtable.absorbed_overwrites

    def observable_state(self) -> Dict[str, int]:
        """Structural gauges for the metrics registry: LSM shape and
        liveness, alongside (not duplicating) the ``stats`` counters."""
        return {
            "memtable_cells": len(self._memtable),
            "memtable_bytes": self._memtable.size_bytes,
            "sstables": len(self._sstables),
            "stored_bytes": self.stored_bytes(),
            "down": int(self.is_down),
        }

    def total_cells(self) -> int:
        """Cells across memtable and SSTables (duplicates included)."""
        return len(self._memtable) + sum(len(t) for t in self._sstables)

    def stored_bytes(self) -> int:
        """Approximate bytes across memtable and SSTables."""
        return (self._memtable.size_bytes
                + sum(t.size_bytes for t in self._sstables))
