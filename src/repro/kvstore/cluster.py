"""The replicated key-value store: a cluster of LSM nodes (Section 4.2).

"A Cassandra cluster consists of a set of machines, each running the
Cassandra program, all configured to recognize one another as parts of the
same cluster." Rows are partitioned around a consistent hash ring;
``replication_factor`` consecutive distinct nodes hold each row; reads and
writes succeed once :class:`ConsistencyLevel` replicas acknowledge —
ONE / QUORUM / ALL, exactly the three options the paper exposes to Muppet
applications.

Divergent replica versions reconcile by last-write-wins on the cell's write
timestamp; reads at QUORUM/ALL perform read repair, writing the winning
version back to stale replicas. Writes that miss a down replica leave a
*hint* with the coordinator (hinted handoff, as Cassandra does); the hints
are delivered when the replica returns via :meth:`ReplicatedKVStore.mark_up`.
"""

from __future__ import annotations

from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.cluster.hashring import HashRing
from repro.errors import ConfigurationError, QuorumError, StoreError
from repro.kvstore.cells import Cell
from repro.kvstore.api import (BatchWriteResult, ConsistencyLevel,
                               ReadResult, WriteResult)
from repro.kvstore.device import StorageDevice, profile_for
from repro.kvstore.node import StorageNode

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.obs import Tracer


class ReplicatedKVStore:
    """A Cassandra-like replicated store over :class:`StorageNode` shards.

    Args:
        node_names: Names of the member nodes (usually machine names).
        replication_factor: Copies kept per row (default 3, Cassandra's
            conventional setting).
        clock: Time source shared with the engines; drives write
            timestamps and TTL expiry.
        device_kind: ``"ssd"`` or ``"hdd"`` for every node (per-node
            overrides via ``device_overrides``).
        data_dir: When given, each node persists under a subdirectory.
        memtable_flush_bytes / compaction_threshold: Passed to each node.
        tracer: Optional :class:`repro.obs.Tracer`; when set the store
            emits one ``kv_write`` span per replicated cell write.
            Strictly passive — only consulted behind ``is not None``.
    """

    def __init__(
        self,
        node_names: List[str],
        replication_factor: int = 3,
        clock: Callable[[], float] = lambda: 0.0,
        device_kind: str = "ssd",
        data_dir: Optional[Path] = None,
        memtable_flush_bytes: int = 4 * 1024 * 1024,
        compaction_threshold: int = 8,
        device_overrides: Optional[Dict[str, str]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if not node_names:
            raise ConfigurationError("kv-store needs at least one node")
        if replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        self.replication_factor = min(replication_factor, len(node_names))
        self.clock = clock
        self.tracer = tracer
        self._ring: HashRing[str] = HashRing(node_names)
        overrides = device_overrides or {}
        #: Hinted handoff buffers: writes a down replica missed, keyed by
        #: the absent node's name, delivered on :meth:`mark_up`. Each
        #: buffer is a bounded deque so a long outage costs O(1) per
        #: overflow (oldest hint evicted and counted), not O(n).
        self._hints: Dict[str, Deque[Cell]] = {}
        self.hints_stored = 0
        self.hints_delivered = 0
        self.hints_evicted = 0
        self.max_hints_per_node = 100_000
        self.nodes: Dict[str, StorageNode] = {}
        for name in node_names:
            kind = overrides.get(name, device_kind)
            node_dir = (Path(data_dir) / name) if data_dir is not None else None
            self.nodes[name] = StorageNode(
                name=name,
                device=StorageDevice(profile_for(kind)),
                clock=clock,
                memtable_flush_bytes=memtable_flush_bytes,
                compaction_threshold=compaction_threshold,
                data_dir=node_dir,
            )

    @classmethod
    def reopen(cls, node_names: List[str], data_dir: Path,
               **kwargs) -> "ReplicatedKVStore":
        """Cold-restart a persistent cluster from its data directory.

        Each node reloads its SSTables and replays its commit log (see
        :meth:`StorageNode.open`) — "persistent slates help resuming,
        restarting, or recovering the application from crashes"
        (Section 4.2), here for the store itself.
        """
        kwargs.pop("data_dir", None)  # the reopen path owns placement
        store = cls(node_names, data_dir=None, **kwargs)
        clock = kwargs.get("clock", store.clock)
        flush_bytes = kwargs.get("memtable_flush_bytes", 4 * 1024 * 1024)
        compaction = kwargs.get("compaction_threshold", 8)
        device_kind = kwargs.get("device_kind", "ssd")
        overrides = kwargs.get("device_overrides") or {}
        for name in node_names:
            node_dir = Path(data_dir) / name
            node_dir.mkdir(parents=True, exist_ok=True)
            kind = overrides.get(name, device_kind)
            store.nodes[name] = StorageNode.open(
                name, node_dir,
                device=StorageDevice(profile_for(kind)),
                clock=clock,
                memtable_flush_bytes=flush_bytes,
                compaction_threshold=compaction)
        return store

    # -- membership / failures ------------------------------------------------
    def mark_down(self, name: str) -> None:
        """Take a node out of service (machine failure)."""
        self._require_node(name).is_down = True
        self._ring.exclude(name)

    def mark_up(self, name: str) -> None:
        """Return a node to service; replay its commit log and deliver
        any hinted writes it missed while down."""
        node = self._require_node(name)
        node.recover()
        self._ring.restore(name)
        for hint in self._hints.pop(name, ()):
            try:
                if hint.is_tombstone:
                    node.delete(hint.row, hint.column)
                else:
                    node.put(hint.row, hint.column, hint.value,
                             ttl=hint.ttl)
                self.hints_delivered += 1
            except StoreError:
                break

    def replicas_for(self, row: str) -> List[str]:
        """The *natural* replica set for a row, in preference order.

        Down members are included: rows do not migrate during an outage;
        instead writes leave hints (Cassandra semantics) and reads work
        from the surviving members of the same set.
        """
        return self._ring.preference_list(row, self.replication_factor,
                                          include_excluded=True)

    def _store_hint(self, name: str, cell: Cell) -> None:
        hints = self._hints.get(name)
        if hints is None:
            hints = self._hints[name] = deque(
                maxlen=self.max_hints_per_node)
        if hints.maxlen is not None and len(hints) >= hints.maxlen:
            self.hints_evicted += 1  # deque discards the oldest on append
        hints.append(cell)
        self.hints_stored += 1

    def pending_hints(self, name: Optional[str] = None) -> int:
        """Hints buffered for one down node (or all nodes).

        Drains to zero when every hinted-at node has been
        :meth:`mark_up`'d — the recovery-path invariant chaos tests
        assert on.
        """
        if name is not None:
            return len(self._hints.get(name, ()))
        return sum(len(hints) for hints in self._hints.values())

    def _require_node(self, name: str) -> StorageNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise ConfigurationError(f"unknown kv node {name!r}") from None

    # -- operations -----------------------------------------------------------
    def write(
        self,
        row: str,
        column: str,
        value: bytes,
        ttl: Optional[float] = None,
        consistency: ConsistencyLevel = ConsistencyLevel.ONE,
    ) -> WriteResult:
        """Replicated write; raises :class:`QuorumError` on too few acks."""
        replicas = self.replicas_for(row)
        required = consistency.required_acks(self.replication_factor)
        acks = 0
        worst_cost = 0.0
        for name in replicas:
            node = self.nodes[name]
            if node.is_down:
                self._store_hint(name, Cell(row, column, value,
                                            self.clock(), ttl))
                continue
            try:
                cost = node.put(row, column, value, ttl=ttl)
            except StoreError:
                continue
            acks += 1
            worst_cost = max(worst_cost, cost)
        if acks < required:
            raise QuorumError(
                f"write {row!r}/{column!r}: {acks} acks < required "
                f"{required} ({consistency.value})"
            )
        if self.tracer is not None:
            self.tracer.emit(self.clock(), "kv_write", row=row,
                             column=column, replicas=list(replicas),
                             acks=acks)
        return WriteResult(acks=acks, replicas=replicas, cost_s=worst_cost)

    def write_batch(
        self,
        writes: List[Tuple[str, str, bytes, Optional[float]]],
        consistency: ConsistencyLevel = ConsistencyLevel.ONE,
    ) -> BatchWriteResult:
        """Replicated multi-cell write: ``[(row, column, value, ttl)...]``.

        Cells are grouped by their natural replica set; each live replica
        of a group receives one coalesced :meth:`StorageNode.put_many`
        call instead of one put per cell. Down replicas get one hint per
        cell, exactly as :meth:`write` would leave. Every group must
        independently reach the consistency level's acknowledgement
        count; the first group that cannot raises :class:`QuorumError`
        (cells of already-written groups stay written — last-write-wins
        makes the caller's per-cell retry idempotent).
        """
        if not writes:
            return BatchWriteResult(writes=0, groups=0, acks_min=0,
                                    cost_s=0.0)
        required = consistency.required_acks(self.replication_factor)
        groups: Dict[Tuple[str, ...], List[Tuple[str, str, bytes,
                                                 Optional[float]]]] = {}
        for write in writes:
            replica_set = tuple(self.replicas_for(write[0]))
            groups.setdefault(replica_set, []).append(write)
        total_cost = 0.0
        acks_min: Optional[int] = None
        for replica_set, cells in groups.items():
            acks = 0
            worst_cost = 0.0
            for name in replica_set:
                node = self.nodes[name]
                if node.is_down:
                    now = self.clock()
                    for row, column, value, ttl in cells:
                        self._store_hint(name, Cell(row, column, value,
                                                    now, ttl))
                    continue
                try:
                    cost = node.put_many(cells)
                except StoreError:
                    continue
                acks += 1
                worst_cost = max(worst_cost, cost)
            if acks < required:
                raise QuorumError(
                    f"batch write of {len(cells)} cells to "
                    f"{list(replica_set)}: {acks} acks < required "
                    f"{required} ({consistency.value})"
                )
            total_cost += worst_cost
            acks_min = acks if acks_min is None else min(acks_min, acks)
            if self.tracer is not None:
                now = self.clock()
                for row, column, _value, _ttl in cells:
                    self.tracer.emit(now, "kv_write", row=row,
                                     column=column,
                                     replicas=list(replica_set), acks=acks)
        return BatchWriteResult(writes=len(writes), groups=len(groups),
                                acks_min=acks_min or 0, cost_s=total_cost)

    def read(
        self,
        row: str,
        column: str,
        consistency: ConsistencyLevel = ConsistencyLevel.ONE,
    ) -> ReadResult:
        """Replicated read with last-write-wins and read repair."""
        replicas = self.replicas_for(row)
        required = consistency.required_acks(self.replication_factor)
        asked: List[str] = []
        answers: List[tuple] = []  # (name, value, write_ts, cost)
        worst_cost = 0.0
        for name in replicas:
            node = self.nodes[name]
            if node.is_down:
                continue
            cell = node._memtable.get(row, column)
            value, cost = node.get(row, column)
            write_ts = cell.write_ts if cell is not None else 0.0
            if value is not None and cell is None:
                # Value came from an SSTable; approximate its version with
                # the newest run's knowledge by re-deriving from tables.
                write_ts = self._sstable_write_ts(node, row, column)
            asked.append(name)
            answers.append((name, value, write_ts, cost))
            worst_cost = max(worst_cost, cost)
            if len(asked) >= required:
                break
        if len(asked) < required:
            raise QuorumError(
                f"read {row!r}/{column!r}: {len(asked)} replies < required "
                f"{required} ({consistency.value})"
            )
        winner_value: Optional[bytes] = None
        winner_ts = 0.0
        for _, value, write_ts, _ in answers:
            if value is not None and write_ts >= winner_ts:
                winner_value, winner_ts = value, write_ts
        if winner_value is not None and len(answers) > 1:
            self._read_repair(row, column, winner_value, winner_ts, answers)
        return ReadResult(value=winner_value, write_ts=winner_ts,
                          replicas_asked=asked, cost_s=worst_cost)

    @staticmethod
    def _sstable_write_ts(node: StorageNode, row: str, column: str) -> float:
        for table in reversed(node._sstables):
            cell = table.get(row, column)
            if cell is not None:
                return cell.write_ts
        return 0.0

    def _read_repair(self, row: str, column: str, value: bytes,
                     write_ts: float, answers: List[tuple]) -> None:
        """Push the winning version to stale replicas (global repair).

        Both the replicas that answered with older data and any live
        replicas the consistency level skipped are checked and healed —
        Cassandra's GLOBAL read-repair decision, which is what lets a
        node that missed writes (and whose hints were lost) converge.
        """
        answered = {name: replica_value
                    for name, replica_value, _, __ in answers}
        for name in self.replicas_for(row):
            node = self.nodes[name]
            if node.is_down:
                continue
            if name in answered:
                current = answered[name]
            else:
                try:
                    current, _ = node.get(row, column)
                except StoreError:
                    continue
            if current == value:
                continue
            try:
                node.put(row, column, value)
            except StoreError:
                continue

    def delete(self, row: str, column: str,
               consistency: ConsistencyLevel = ConsistencyLevel.ONE) -> int:
        """Replicated tombstone write; returns acknowledgement count."""
        replicas = self.replicas_for(row)
        required = consistency.required_acks(self.replication_factor)
        acks = 0
        for name in replicas:
            node = self.nodes[name]
            if node.is_down:
                self._store_hint(name, Cell(row, column, None,
                                            self.clock()))
                continue
            try:
                node.delete(row, column)
                acks += 1
            except StoreError:
                continue
        if acks < required:
            raise QuorumError(
                f"delete {row!r}/{column!r}: {acks} acks < {required}"
            )
        return acks

    # -- maintenance / introspection ----------------------------------------------
    def flush_all(self) -> float:
        """Flush every node's memtable; returns total background cost."""
        return sum(node.flush() for _, node in sorted(self.nodes.items())
                   if not node.is_down)

    def compact_all(self) -> float:
        """Compact every node; returns total background cost."""
        return sum(node.compact() for _, node in sorted(self.nodes.items())
                   if not node.is_down)

    def column_cells(self, column: str) -> Dict[str, "Cell"]:
        """Newest live cell per row for one column across live nodes.

        The offline complement of :meth:`read`: replicas reconcile by
        last-write-wins but nothing is repaired, charged, or counted.
        Used by post-run inspection (``SimRuntime.slates_of`` with
        ``read_through=True``) to see slates that were flushed and then
        dropped from every cache — e.g. by a full-rehydration cutover
        whose keys saw no later traffic.
        """
        newest: Dict[str, Cell] = {}
        for _, node in sorted(self.nodes.items()):
            if node.is_down:
                continue
            for row, cell in node.column_cells(column).items():
                existing = newest.get(row)
                if existing is None or cell.supersedes(existing):
                    newest[row] = cell
        return newest

    def total_cells(self) -> int:
        """Cells across all nodes (replicas counted separately)."""
        return sum(node.total_cells() for node in self.nodes.values())

    def stored_bytes(self) -> int:
        """Bytes across all nodes (replicas counted separately)."""
        return sum(node.stored_bytes() for node in self.nodes.values())

    def stats_by_node(self) -> Dict[str, Dict[str, int]]:
        """Per-node operation counters."""
        return {name: node.stats.as_dict()
                for name, node in self.nodes.items()}
