"""Public key-value-store API types: consistency levels and results.

Section 4.2: "the application can specify the desired quorum used by the
Cassandra store for a successful read/write operation: any single machine to
which the data is assigned for storage, a majority of replicas where the
data is assigned, or all of the replicas where the data is assigned."
Those three options are :class:`ConsistencyLevel` ONE, QUORUM, and ALL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError


class ConsistencyLevel(enum.Enum):
    """How many replicas must acknowledge a read or write."""

    ONE = "one"
    QUORUM = "quorum"
    ALL = "all"

    def required_acks(self, replication_factor: int) -> int:
        """Replica acknowledgements needed at the given replication factor."""
        if replication_factor < 1:
            raise ConfigurationError(
                f"replication factor must be >= 1, got {replication_factor}"
            )
        if self is ConsistencyLevel.ONE:
            return 1
        if self is ConsistencyLevel.QUORUM:
            return replication_factor // 2 + 1
        return replication_factor


@dataclass(frozen=True)
class WriteResult:
    """Outcome of a replicated write.

    Attributes:
        acks: Replicas that acknowledged.
        replicas: Replica node names attempted.
        cost_s: Simulated service time of the slowest acknowledging
            replica (the coordinator waits for the quorum).
    """

    acks: int
    replicas: List[str]
    cost_s: float


@dataclass(frozen=True)
class BatchWriteResult:
    """Outcome of a replicated multi-cell batch write.

    Attributes:
        writes: Cells written (one per dirty slate flushed).
        groups: Distinct replica sets the batch coalesced into — each
            group cost one multi-cell write per live replica.
        acks_min: The smallest per-group acknowledgement count (every
            group independently met the consistency level).
        cost_s: Total simulated coordinator wait across groups.
    """

    writes: int
    groups: int
    acks_min: int
    cost_s: float


@dataclass(frozen=True)
class ReadResult:
    """Outcome of a replicated read.

    Attributes:
        value: The newest value across answering replicas; None if the
            row/column is absent (or TTL-expired) everywhere.
        write_ts: Timestamp of the winning version (0.0 when absent).
        replicas_asked: Replica node names consulted.
        cost_s: Simulated service time of the slowest consulted replica.
    """

    value: Optional[bytes]
    write_ts: float
    replicas_asked: List[str]
    cost_s: float
