"""Bloom filter for SSTable point reads.

Cassandra attaches a bloom filter to every SSTable so that point reads skip
files that cannot contain the requested row. The paper leans on the same
effect indirectly: "the more times a row is flushed to disk by the store
since its last file compaction, the more files will have to be checked for
the row when it needs to be retrieved" (Section 4.2) — bloom filters are
what keeps that check cheap when the answer is "not here".
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable


class BloomFilter:
    """A classic k-hash bloom filter over strings.

    Args:
        expected_items: Sizing hint; the bit array and hash count are
            derived for roughly ``false_positive_rate`` at this load.
        false_positive_rate: Target false-positive probability.
    """

    def __init__(self, expected_items: int,
                 false_positive_rate: float = 0.01) -> None:
        expected_items = max(1, expected_items)
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError(
                "false_positive_rate must be in (0,1), got "
                f"{false_positive_rate}"
            )
        ln2 = math.log(2.0)
        bits = math.ceil(-expected_items * math.log(false_positive_rate)
                         / (ln2 * ln2))
        self._num_bits = max(8, bits)
        self._num_hashes = max(1, round((self._num_bits / expected_items)
                                        * ln2))
        self._bits = bytearray((self._num_bits + 7) // 8)
        self._count = 0

    def _positions(self, item: str) -> Iterable[int]:
        """Derive k bit positions via double hashing of a blake2b digest."""
        digest = hashlib.blake2b(item.encode("utf-8"),
                                 digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1  # odd => full period
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, item: str) -> None:
        """Insert an item."""
        for pos in self._positions(item):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def might_contain(self, item: str) -> bool:
        """False means definitely absent; True means possibly present."""
        return all(self._bits[pos >> 3] & (1 << (pos & 7))
                   for pos in self._positions(item))

    def __contains__(self, item: str) -> bool:
        return self.might_contain(item)

    def __len__(self) -> int:
        return self._count

    @property
    def size_bits(self) -> int:
        """The bit-array size (diagnostics)."""
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        """Hash functions applied per item (diagnostics)."""
        return self._num_hashes
