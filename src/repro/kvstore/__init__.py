"""Cassandra-like replicated LSM key-value store (paper Section 4.2).

Muppet persists slates in Cassandra, "at row k and column U" of a column
family. This package is a from-scratch stand-in with the features Muppet
relies on: memtable write buffering with a commit log, SSTable flushes and
size-tiered compaction, bloom-filtered point reads, per-write TTL collected
at compaction, SSD/HDD device cost models, and ring-partitioned replication
with ONE/QUORUM/ALL consistency.
"""

from repro.kvstore.api import ConsistencyLevel, ReadResult, WriteResult
from repro.kvstore.bloom import BloomFilter
from repro.kvstore.cells import Cell, CellKey
from repro.kvstore.cluster import ReplicatedKVStore
from repro.kvstore.commitlog import CommitLog
from repro.kvstore.device import (HDD_PROFILE, SSD_PROFILE, DeviceProfile,
                                  DeviceStats, StorageDevice, profile_for)
from repro.kvstore.keyspace import ColumnFamilyView, KeyspaceCatalog
from repro.kvstore.memtable import Memtable
from repro.kvstore.node import NodeStats, StorageNode
from repro.kvstore.sstable import SSTable, merge_sstables

__all__ = [
    "BloomFilter",
    "Cell",
    "CellKey",
    "ColumnFamilyView",
    "CommitLog",
    "ConsistencyLevel",
    "DeviceProfile",
    "DeviceStats",
    "HDD_PROFILE",
    "KeyspaceCatalog",
    "Memtable",
    "NodeStats",
    "ReadResult",
    "ReplicatedKVStore",
    "SSD_PROFILE",
    "SSTable",
    "StorageDevice",
    "StorageNode",
    "WriteResult",
    "merge_sstables",
    "profile_for",
]
