"""Commit log: sequential durability for buffered writes.

The memtable delays flushing "as long as possible" (Section 4.2); what makes
that safe in Cassandra is the commit log — every mutation is appended
sequentially before being acknowledged, so a crashed node replays the log to
rebuild its memtable. We implement both an in-memory log (for the simulator
and fast tests) and an on-disk JSON-lines log (for real-crash tests).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional

from repro.errors import StoreError
from repro.kvstore.cells import Cell


def _encode(cell: Cell) -> str:
    """One JSON line per mutation; values are latin-1-escaped bytes."""
    return json.dumps({
        "row": cell.row,
        "column": cell.column,
        "value": (cell.value.decode("latin-1")
                  if cell.value is not None else None),
        "write_ts": cell.write_ts,
        "ttl": cell.ttl,
    }, separators=(",", ":"))


def _decode(line: str) -> Cell:
    record = json.loads(line)
    value = record["value"]
    return Cell(
        row=record["row"],
        column=record["column"],
        value=value.encode("latin-1") if value is not None else None,
        write_ts=record["write_ts"],
        ttl=record["ttl"],
    )


class CommitLog:
    """Append-only mutation log with replay.

    Args:
        path: File path for a durable log; ``None`` keeps the log purely
            in memory (simulator mode — device costs are still charged by
            the node, only persistence is skipped).
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self._path = Path(path) if path is not None else None
        self._memory: List[Cell] = []
        self._bytes = 0
        if self._path is not None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            # Truncate any stale log: a fresh CommitLog is a fresh segment.
            self._path.write_text("")

    @property
    def size_bytes(self) -> int:
        """Total bytes appended since the last truncation."""
        return self._bytes

    def append(self, cell: Cell) -> int:
        """Append one mutation; returns the encoded size in bytes."""
        encoded = _encode(cell)
        size = len(encoded) + 1
        self._bytes += size
        if self._path is not None:
            try:
                with self._path.open("a", encoding="utf-8") as handle:
                    handle.write(encoded)
                    handle.write("\n")
            except OSError as exc:
                raise StoreError(f"commit log append failed: {exc}") from exc
        else:
            self._memory.append(cell)
        return size

    def replay(self) -> Iterator[Cell]:
        """Yield every logged mutation in append order (crash recovery)."""
        if self._path is not None:
            if not self._path.exists():
                return
            with self._path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        yield _decode(line)
        else:
            yield from list(self._memory)

    @classmethod
    def replay_file(cls, path: Path) -> Iterator[Cell]:
        """Replay an existing on-disk log without truncating it."""
        log = cls.__new__(cls)
        log._path = Path(path)
        log._memory = []
        log._bytes = 0
        return log.replay()

    def truncate(self) -> None:
        """Discard the log after a successful memtable flush."""
        self._memory.clear()
        self._bytes = 0
        if self._path is not None:
            try:
                self._path.write_text("")
            except OSError as exc:
                raise StoreError(f"commit log truncate failed: {exc}") from exc
