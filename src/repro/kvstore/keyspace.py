"""Keyspaces and column families — the Cassandra addressing layer (§4.2).

"The cluster maintains a set of key spaces, each of which contains a set
of column families. Each column family, in turn, stores data values
indexed by <key, column> pairs. A Muppet application's configuration
file identifies a Cassandra cluster ..., a key space within the cluster,
and a column family within the key space."

:class:`ColumnFamilyView` scopes a :class:`ReplicatedKVStore` to one
(keyspace, column family): it exposes the same read/write/delete surface
(so a :class:`~repro.slates.manager.SlateManager` can use it unchanged)
while namespacing rows internally. Two applications sharing one physical
cluster through different column families can never collide — exactly
how multiple Muppet applications shared the production Cassandra
cluster (2 B slates across "various production Muppet applications",
Section 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.kvstore.api import ConsistencyLevel, ReadResult, WriteResult
from repro.kvstore.cluster import ReplicatedKVStore

#: Separator between namespace components and the row key. NUL cannot
#: appear in JSON-sourced identifiers, so collisions are impossible.
_SEP = "\x00"


def _validate_identifier(kind: str, value: str) -> str:
    if not value or _SEP in value:
        raise ConfigurationError(
            f"{kind} must be a non-empty string without NUL, "
            f"got {value!r}"
        )
    return value


class ColumnFamilyView:
    """A (keyspace, column family) scope over a replicated store.

    Duck-compatible with :class:`ReplicatedKVStore` for the operations
    the slate manager uses: ``read``, ``write``, ``delete``. Rows are
    transparently prefixed; everything else (replication, consistency,
    hints, TTLs) is the underlying cluster's.
    """

    def __init__(self, store: ReplicatedKVStore, keyspace: str,
                 column_family: str) -> None:
        self._store = store
        self.keyspace = _validate_identifier("keyspace", keyspace)
        self.column_family = _validate_identifier("column family",
                                                  column_family)
        self._prefix = f"{self.keyspace}{_SEP}{self.column_family}{_SEP}"

    @property
    def cluster(self) -> ReplicatedKVStore:
        """The underlying physical cluster."""
        return self._store

    def _row(self, row: str) -> str:
        return self._prefix + row

    # -- the SlateManager-facing surface ---------------------------------------
    def write(self, row: str, column: str, value: bytes,
              ttl: Optional[float] = None,
              consistency: ConsistencyLevel = ConsistencyLevel.ONE,
              ) -> WriteResult:
        """Write within this column family."""
        return self._store.write(self._row(row), column, value, ttl=ttl,
                                 consistency=consistency)

    def read(self, row: str, column: str,
             consistency: ConsistencyLevel = ConsistencyLevel.ONE,
             ) -> ReadResult:
        """Read within this column family."""
        return self._store.read(self._row(row), column, consistency)

    def delete(self, row: str, column: str,
               consistency: ConsistencyLevel = ConsistencyLevel.ONE,
               ) -> int:
        """Delete within this column family."""
        return self._store.delete(self._row(row), column, consistency)

    # -- administration ---------------------------------------------------------
    def row_count(self) -> int:
        """Cells stored under this column family (replicas included).

        A maintenance scan, not a hot-path operation.
        """
        count = 0
        for node in self._store.nodes.values():
            for cell_key in list(node._memtable._cells):
                if cell_key[0].startswith(self._prefix):
                    count += 1
            for table in node._sstables:
                for cell in table.cells():
                    if cell.row.startswith(self._prefix):
                        count += 1
        return count


class KeyspaceCatalog:
    """Registry of the column families defined on one physical cluster.

    Mirrors the paper's configuration shape: the cluster is named once;
    applications then ask for ``use("production", "muppet_slates")``.
    """

    def __init__(self, store: ReplicatedKVStore) -> None:
        self._store = store
        self._views: Dict[str, ColumnFamilyView] = {}

    def use(self, keyspace: str, column_family: str) -> ColumnFamilyView:
        """Get (or lazily create) a column-family view."""
        key = f"{keyspace}{_SEP}{column_family}"
        view = self._views.get(key)
        if view is None:
            view = ColumnFamilyView(self._store, keyspace, column_family)
            self._views[key] = view
        return view

    def column_families(self) -> List[str]:
        """Registered column families as ``"keyspace.cf"`` labels."""
        return sorted(
            f"{view.keyspace}.{view.column_family}"
            for view in self._views.values()
        )
