"""MapUpdate applications: workflow graphs of maps and updates (Section 3).

"A MapUpdate application is a workflow of map and update functions ...
modeled as a directed graph (allowing cycles), whose nodes represent map and
update functions, and whose edges represent streams." The developer writes
the functions plus "a configuration file that includes the workflow graph";
:class:`Application` is that configuration file as a Python object.

The graph is validated eagerly: unknown streams, duplicate operator names,
internal streams nobody publishes, and operators publishing into external
streams are all rejected with :class:`WorkflowError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type, Union

from repro.core.operators import Mapper, Operator, Updater
from repro.core.stream import StreamRegistry, StreamSpec
from repro.errors import WorkflowError

OperatorFactory = Union[Type[Operator], "_PrebuiltFactory"]


class _PrebuiltFactory:
    """Wraps a pre-built operator instance as a single-use factory.

    Muppet 1.0 instantiates a fresh copy of the operator per worker process
    (one reason it wastes memory, Section 4.5); passing a pre-built instance
    opts an operator out of that and shares the one object, as Muppet 2.0
    does by construction.
    """

    def __init__(self, instance: Operator) -> None:
        self.instance = instance

    def __call__(self, config: Dict[str, Any], name: str) -> Operator:
        return self.instance


@dataclass(frozen=True)
class OperatorSpec:
    """Static description of one node in the workflow graph.

    Attributes:
        name: Unique function name within the application (Appendix A:
            "each map and update function in the application is identified
            by unique name").
        kind: ``"map"`` or ``"update"``.
        factory: Callable ``(config, name) -> Operator`` — normally the
            operator class itself, matching the paper's construction
            contract.
        subscribes: Stream IDs this function consumes.
        publishes: Stream IDs this function may emit into.
        config: Per-function configuration passed to the factory.
    """

    name: str
    kind: str
    factory: OperatorFactory
    subscribes: Tuple[str, ...]
    publishes: Tuple[str, ...]
    config: Dict[str, Any] = field(default_factory=dict)

    def instantiate(self) -> Operator:
        """Build a fresh operator instance for this spec."""
        operator = self.factory(dict(self.config), self.name)
        expected = Mapper if self.kind == "map" else Updater
        if not isinstance(operator, expected):
            raise WorkflowError(
                f"operator {self.name!r} declared as {self.kind!r} but its "
                f"factory produced a {type(operator).__name__}"
            )
        return operator

    def declares_thinnable(self) -> bool:
        """True when this updater opts into probabilistic thinning.

        Resolved without instantiating (engines consult this while
        building routing tables): per-spec config wins, then a prebuilt
        instance's attribute, then the factory class attribute. Mappers
        are never thinnable — they hold no state to reconstruct.
        """
        if self.kind != "update":
            return False
        if "thinnable" in self.config:
            return bool(self.config["thinnable"])
        instance = getattr(self.factory, "instance", None)
        if instance is not None:  # _PrebuiltFactory
            return bool(getattr(instance, "thinnable", False))
        return bool(getattr(self.factory, "thinnable", False))


class Application:
    """A complete MapUpdate application: streams + operator workflow graph.

    Typical construction (compare the paper's Example 4 / Figure 1(b))::

        app = Application("retailer-counts")
        app.add_stream("S1", external=True)
        app.add_stream("S2")
        app.add_mapper("M1", RetailerMapper, subscribes=["S1"],
                       publishes=["S2"])
        app.add_updater("U1", CheckinCounter, subscribes=["S2"])
        app.validate()
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.streams = StreamRegistry()
        self._operators: Dict[str, OperatorSpec] = {}
        #: Streams whose slates/streams are the application's declared
        #: output (documentation aid; engines expose all streams anyway).
        self.output_sids: List[str] = []

    # -- construction ------------------------------------------------------
    def add_stream(self, sid: str, external: bool = False,
                   overflow: bool = False,
                   description: str = "") -> StreamSpec:
        """Declare a stream.

        External streams are fed only from outside; overflow streams are
        fed by the engine's queue-overflow mechanism (Section 4.3) and so
        need no declared publisher.
        """
        return self.streams.declare(
            StreamSpec(sid, external, overflow, description))

    def add_mapper(
        self,
        name: str,
        factory: Union[Type[Mapper], Mapper],
        subscribes: Iterable[str],
        publishes: Iterable[str] = (),
        config: Optional[Dict[str, Any]] = None,
    ) -> OperatorSpec:
        """Add a map function node to the workflow graph."""
        return self._add_operator("map", name, factory, subscribes,
                                  publishes, config)

    def add_updater(
        self,
        name: str,
        factory: Union[Type[Updater], Updater],
        subscribes: Iterable[str],
        publishes: Iterable[str] = (),
        config: Optional[Dict[str, Any]] = None,
    ) -> OperatorSpec:
        """Add an update function node to the workflow graph."""
        return self._add_operator("update", name, factory, subscribes,
                                  publishes, config)

    def _add_operator(
        self,
        kind: str,
        name: str,
        factory: Union[Type[Operator], Operator],
        subscribes: Iterable[str],
        publishes: Iterable[str],
        config: Optional[Dict[str, Any]],
    ) -> OperatorSpec:
        if name in self._operators:
            raise WorkflowError(f"duplicate operator name {name!r}")
        if isinstance(factory, Operator):
            factory = _PrebuiltFactory(factory)
        spec = OperatorSpec(
            name=name,
            kind=kind,
            factory=factory,
            subscribes=tuple(subscribes),
            publishes=tuple(publishes),
            config=dict(config or {}),
        )
        if not spec.subscribes:
            raise WorkflowError(f"operator {name!r} subscribes to nothing")
        self._operators[name] = spec
        return spec

    def mark_output(self, sid: str) -> None:
        """Record ``sid`` as an application output stream (docs aid)."""
        self.streams.spec(sid)
        if sid not in self.output_sids:
            self.output_sids.append(sid)

    # -- introspection -----------------------------------------------------
    def operators(self) -> List[OperatorSpec]:
        """All operator specs, sorted by name for determinism."""
        return [self._operators[n] for n in sorted(self._operators)]

    def operator(self, name: str) -> OperatorSpec:
        """Look up one operator spec by name."""
        try:
            return self._operators[name]
        except KeyError:
            raise WorkflowError(f"unknown operator {name!r}") from None

    def mappers(self) -> List[OperatorSpec]:
        """All map-function specs, sorted by name."""
        return [s for s in self.operators() if s.kind == "map"]

    def updaters(self) -> List[OperatorSpec]:
        """All update-function specs, sorted by name."""
        return [s for s in self.operators() if s.kind == "update"]

    def thinnable_updaters(self) -> List[OperatorSpec]:
        """Updaters that opted into probabilistic thinning, sorted."""
        return [s for s in self.updaters() if s.declares_thinnable()]

    def subscribers_of(self, sid: str) -> List[OperatorSpec]:
        """Operators subscribed to stream ``sid``, sorted by name."""
        return [s for s in self.operators() if sid in s.subscribes]

    def publishers_of(self, sid: str) -> List[OperatorSpec]:
        """Operators that may publish into stream ``sid``, sorted by name."""
        return [s for s in self.operators() if sid in s.publishes]

    def to_networkx(self) -> Any:
        """The workflow as a ``networkx.DiGraph`` (nodes=operators+streams).

        Stream nodes are prefixed ``"stream:"`` so operator and stream
        namespaces cannot collide. Useful for visualization and analyses
        like cycle enumeration.
        """
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for sid in self.streams.sids():
            graph.add_node(f"stream:{sid}", kind="stream",
                           external=self.streams.spec(sid).external)
        for spec in self.operators():
            graph.add_node(spec.name, kind=spec.kind)
            for sid in spec.subscribes:
                graph.add_edge(f"stream:{sid}", spec.name)
            for sid in spec.publishes:
                graph.add_edge(spec.name, f"stream:{sid}")
        return graph

    def has_cycle(self) -> bool:
        """True if the workflow graph contains a cycle (allowed by §3)."""
        import networkx as nx

        return not nx.is_directed_acyclic_graph(self.to_networkx())

    # -- validation ----------------------------------------------------------
    def validate(self) -> "Application":
        """Check the workflow graph; raise :class:`WorkflowError` if bad.

        Rules:
          * every subscribed/published stream is declared;
          * no operator publishes into an external stream (keeps source
            throttling deadlock-free, Section 5);
          * every internal stream has at least one publisher (otherwise it
            can never carry events);
          * at least one external stream exists (the application needs a
            source);
          * every external stream with no subscribers is flagged.
        Returns self, for chaining.
        """
        if not self._operators:
            raise WorkflowError(f"application {self.name!r} has no operators")
        externals = set(self.streams.external_sids())
        if not externals:
            raise WorkflowError(
                f"application {self.name!r} declares no external stream"
            )
        for spec in self.operators():
            for sid in spec.subscribes + spec.publishes:
                if sid not in self.streams:
                    raise WorkflowError(
                        f"operator {spec.name!r} references undeclared "
                        f"stream {sid!r}"
                    )
            for sid in spec.publishes:
                if sid in externals:
                    raise WorkflowError(
                        f"operator {spec.name!r} publishes into external "
                        f"stream {sid!r}; external streams are input-only"
                    )
        for sid in self.streams.internal_sids():
            if self.streams.spec(sid).overflow:
                continue  # fed by the engine's overflow mechanism
            if not self.publishers_of(sid):
                raise WorkflowError(
                    f"internal stream {sid!r} has no publisher"
                )
        return self
