"""Slates — the per-(updater, key) memory of a MapUpdate application.

Section 3: a slate ``S(U, k)`` "summarizes all events with key k that an
update function U has seen so far". It is the pair ``<update U, key k>`` that
uniquely determines a slate, not the key alone: two updaters keep independent
slates for the same key.

A slate here is a small mutable mapping (application-defined fields) plus
metadata the runtime needs: time-to-live, last-update time, and a dirty flag
for the flush machinery (Section 4.2). Applications should keep slates small
— "many kilobytes rather than many megabytes" (Section 5); engines can
enforce a cap via ``max_slate_bytes``.

Two hot-path amortizations live here:

* ``version`` — a monotonically increasing mutation counter. Size
  estimates and encoded blobs are cached keyed by it, so repeated
  ``estimated_bytes()`` calls between mutations and repeated flushes of
  an unchanged slate cost one serialization, not many (encode-once).
* a *dirty listener* — :class:`repro.slates.cache.SlateCache` subscribes
  to dirty-flag transitions so it can keep an O(dirty) index instead of
  scanning every resident slate at each flush tick.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterator, NamedTuple, Optional,
                    Tuple)

from repro.core.event import Timestamp
from repro.errors import SlateTooLargeError

#: TTL sentinel meaning "keep forever" — the paper's default.
TTL_FOREVER: Optional[float] = None


def _json_size_fast(data: Dict[str, Any]) -> int:  # hot-path
    """Exact byte length of ``json.dumps(data, separators=(",", ":"))``
    for flat ``{plain-ASCII str: int}`` dicts, or ``-1`` when ``data``
    falls outside that shape (the caller then serializes for real).

    Counter-style slates — the overwhelmingly common case on the update
    hot path — are exactly this shape, and their JSON length is pure
    arithmetic: ``{`` ``}`` plus per entry ``"key":value`` plus commas.
    The guards are strict so the fast and slow paths always agree:
    keys must be ASCII and printable with no ``"`` or ``\\`` (the only
    printable-ASCII characters ``json.dumps`` escapes), and values must
    be exactly ``int`` (``bool`` is an ``int`` subclass but serializes
    as ``true``/``false``, so ``type`` identity is required, not
    ``isinstance``).
    """
    n = len(data)
    if n == 0:
        return 2
    # Braces (2) + per-entry quotes and colon (3n) + commas (n - 1).
    size = 4 * n + 1
    for k, v in data.items():
        if (type(k) is not str or type(v) is not int
                or not k.isascii() or not k.isprintable()
                or '"' in k or "\\" in k):
            return -1
        size += len(k) + len(str(v))
    return size

#: Reserved blob key holding a slate's per-upstream dedup watermarks
#: (``{origin: highest applied sequence}``) under effectively-once
#: delivery. Lives beside the application fields inside the *same*
#: encoded blob so state and watermarks persist atomically; application
#: field names never collide with it (double-underscore namespace).
WATERMARK_FIELD = "__slate_wm__"


class SlateKey(NamedTuple):
    """The identity of a slate: the pair ``<updater name, event key>``.

    Muppet stores slate ``S(U, k)`` in the key-value store "at row k and
    column U" (Section 4.2); :meth:`row_column` returns exactly that
    addressing. Tuple-backed so the per-update cache lookups hash and
    compare at C speed (slate keys are dict keys in the cache, the dirty
    index and the flush paths).
    """

    updater: str
    key: str

    def row_column(self) -> Tuple[str, str]:
        """Key-value-store address ``(row, column) = (event key, updater)``."""
        return (self.key, self.updater)


class Slate:
    """A live, continuously updated summary for one ``(updater, key)`` pair.

    Behaves as a string-keyed mapping of application fields. The runtime
    tracks ``dirty`` (changed since last flush to the key-value store) and
    ``last_update_ts`` (drives TTL garbage collection).

    Attributes:
        slate_key: Identity ``<updater, key>``.
        ttl: Seconds after the last update when the slate may be garbage
            collected (``None`` = forever, the default; Section 3/4.2).
        created_ts: Timestamp of first initialization.
        last_update_ts: Timestamp of the most recent write.
    """

    __slots__ = ("slate_key", "ttl", "created_ts", "last_update_ts",
                 "_dirty", "_data", "_version", "_dirty_listener",
                 "_enc_codec", "_enc_version", "_enc_blob",
                 "_size_version", "_size_bytes", "_watermarks")

    def __init__(
        self,
        slate_key: SlateKey,
        data: Optional[Dict[str, Any]] = None,
        ttl: Optional[float] = TTL_FOREVER,
        created_ts: Timestamp = 0.0,
    ) -> None:
        self.slate_key = slate_key
        self.ttl = ttl
        self.created_ts = created_ts
        self.last_update_ts = created_ts
        self._dirty = False
        self._version = 0
        self._dirty_listener: Optional[Callable[["Slate", bool], None]] = None
        self._enc_codec: Any = None
        self._enc_version = -1
        self._enc_blob: Optional[bytes] = None
        self._size_version = -1
        self._size_bytes = 0
        self._data: Dict[str, Any] = dict(data) if data else {}
        #: Per-upstream dedup watermarks (effectively-once delivery);
        #: None until the first advance keeps non-dedup blobs identical.
        self._watermarks: Optional[Dict[str, int]] = None

    # -- dirty tracking ----------------------------------------------------
    @property
    def dirty(self) -> bool:
        """True when the slate changed since its last flush."""
        return self._dirty

    @dirty.setter
    def dirty(self, value: bool) -> None:
        value = bool(value)
        if value:
            # Every dirtying counts as a mutation, even a re-dirty of an
            # already-dirty slate: callers that mutate nested values in
            # place mark dirty afterwards, and the version-keyed caches
            # must not serve the pre-mutation blob.
            self._version += 1
        if value == self._dirty:
            return
        self._dirty = value
        if self._dirty_listener is not None:
            self._dirty_listener(self, value)

    @property
    def version(self) -> int:
        """Mutation counter; bumps on every write or dirty-marking."""
        return self._version

    def set_dirty_listener(
            self, listener: Optional[Callable[["Slate", bool], None]]
    ) -> None:
        """Subscribe to dirty-flag transitions (cache bookkeeping hook).

        At most one listener is supported — a slate is resident in at
        most one cache. Pass ``None`` to detach.
        """
        self._dirty_listener = listener

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, field_name: str) -> Any:
        return self._data[field_name]

    def __setitem__(self, field_name: str, value: Any) -> None:
        self._data[field_name] = value
        self.dirty = True

    def __delitem__(self, field_name: str) -> None:
        del self._data[field_name]
        self.dirty = True

    def __contains__(self, field_name: str) -> bool:
        return field_name in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, field_name: str, default: Any = None) -> Any:
        """Return a field value, or ``default`` if absent."""
        return self._data.get(field_name, default)

    def setdefault(self, field_name: str, default: Any) -> Any:
        """Like :meth:`dict.setdefault`; marks the slate dirty on insert."""
        if field_name not in self._data:
            self._data[field_name] = default
            self.dirty = True
        return self._data[field_name]

    # -- dedup watermarks (effectively-once delivery) ----------------------
    def watermark(self, origin: str) -> int:
        """Highest applied sequence id from ``origin``; ``-1`` if none.

        A replayed event with ``oseq <= watermark(origin)`` has already
        contributed to this slate (and that contribution is either
        resident here or persisted in the same blob as the watermark),
        so applying it again would double-count.
        """
        if self._watermarks is None:
            return -1
        return self._watermarks.get(origin, -1)

    def advance_watermark(self, origin: str, seq: int) -> None:
        """Record that the event ``(origin, seq)`` was applied.

        Marks the slate dirty (bumping :attr:`version`) so the
        encode-once cache re-serializes: the watermark travels in the
        same blob as the data it guards, which is what makes
        slate+watermark persistence atomic.
        """
        if self._watermarks is None:
            self._watermarks = {}
        if seq > self._watermarks.get(origin, -1):
            self._watermarks[origin] = seq
            self.dirty = True

    @property
    def watermarks(self) -> Optional[Dict[str, int]]:
        """The per-upstream watermark map, or None if never tracked."""
        return self._watermarks

    def set_watermarks(self, watermarks: Optional[Dict[str, int]]) -> None:
        """Install watermarks decoded from a stored blob (manager use).

        Does not dirty the slate: the caller just read this exact state
        from the store, so cache and store agree.
        """
        self._watermarks = dict(watermarks) if watermarks else None

    # -- runtime hooks -----------------------------------------------------
    def replace(self, data: Dict[str, Any]) -> None:
        """Replace the whole contents — the paper's ``replaceSlate`` call."""
        self._data = dict(data)
        self.dirty = True

    def as_dict(self) -> Dict[str, Any]:
        """A shallow copy of the application fields."""
        return dict(self._data)

    def blob_dict(self) -> Dict[str, Any]:
        """What actually gets serialized to the key-value store.

        The application fields, plus — only when this slate has tracked
        dedup watermarks — the watermark map under the reserved
        :data:`WATERMARK_FIELD` key. Without watermarks this equals
        :meth:`as_dict`, so every pre-existing blob format and byte-level
        determinism guarantee is unchanged.
        """
        if not self._watermarks:
            return self.as_dict()
        data = dict(self._data)
        data[WATERMARK_FIELD] = dict(self._watermarks)
        return data

    def touch(self, ts: Timestamp) -> None:
        """Record a write at time ``ts`` (runtime use)."""
        self.last_update_ts = ts
        self.dirty = True

    def mark_clean(self) -> None:
        """Clear the dirty flag after a successful flush (runtime use)."""
        self.dirty = False

    def expired(self, now: Timestamp) -> bool:
        """True if the TTL has elapsed since the last update (Section 4.2).

        "Slates that have not been updated (written) for longer than the
        TTL value may be garbage-collected by the key-value store."
        """
        if self.ttl is None:
            return False
        return (now - self.last_update_ts) > self.ttl

    def estimated_bytes(self) -> int:
        """Approximate in-memory/JSON size of the slate contents.

        Cached per :attr:`version`: repeated calls between mutations
        (cost model, size cap, IPC accounting) serialize once.
        """
        if self._size_version == self._version:
            return self._size_bytes
        size = _json_size_fast(self._data)
        if size < 0:
            try:
                size = len(json.dumps(self._data, separators=(",", ":"),
                                      default=str))
            except (TypeError, ValueError):
                size = len(repr(self._data))
        self._size_version = self._version
        self._size_bytes = size
        return size

    def encoded_with(self, codec: Any) -> bytes:
        """The slate contents serialized by ``codec``, cached per version.

        The flush path calls this instead of ``codec.encode(as_dict())``
        so an unchanged slate flushed again (rebalance barrier after a
        periodic flush, eviction after flush) pays zero re-encodes.

        The encoded form is :meth:`blob_dict`: application fields plus
        (when present) the dedup watermarks — one write persists both.
        """
        if (self._enc_blob is not None and self._enc_codec is codec
                and self._enc_version == self._version):
            return self._enc_blob
        blob = codec.encode(self.blob_dict())
        self._enc_codec = codec
        self._enc_version = self._version
        self._enc_blob = blob
        return blob

    def check_size(self, max_slate_bytes: Optional[int]) -> None:
        """Raise :class:`SlateTooLargeError` when over the configured cap."""
        if max_slate_bytes is None:
            return
        size = self.estimated_bytes()
        if size > max_slate_bytes:
            raise SlateTooLargeError(
                f"slate {self.slate_key} is {size} bytes "
                f"(cap {max_slate_bytes}); the paper advises keeping slates "
                "to kilobytes, not megabytes (Section 5)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Slate({self.slate_key.updater}/{self.slate_key.key}, "
                f"{self._data!r}, dirty={self.dirty})")
