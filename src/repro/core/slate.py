"""Slates — the per-(updater, key) memory of a MapUpdate application.

Section 3: a slate ``S(U, k)`` "summarizes all events with key k that an
update function U has seen so far". It is the pair ``<update U, key k>`` that
uniquely determines a slate, not the key alone: two updaters keep independent
slates for the same key.

A slate here is a small mutable mapping (application-defined fields) plus
metadata the runtime needs: time-to-live, last-update time, and a dirty flag
for the flush machinery (Section 4.2). Applications should keep slates small
— "many kilobytes rather than many megabytes" (Section 5); engines can
enforce a cap via ``max_slate_bytes``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core.event import Timestamp
from repro.errors import SlateTooLargeError

#: TTL sentinel meaning "keep forever" — the paper's default.
TTL_FOREVER: Optional[float] = None


@dataclass(frozen=True)
class SlateKey:
    """The identity of a slate: the pair ``<updater name, event key>``.

    Muppet stores slate ``S(U, k)`` in the key-value store "at row k and
    column U" (Section 4.2); :meth:`row_column` returns exactly that
    addressing.
    """

    updater: str
    key: str

    def row_column(self) -> Tuple[str, str]:
        """Key-value-store address ``(row, column) = (event key, updater)``."""
        return (self.key, self.updater)


class Slate:
    """A live, continuously updated summary for one ``(updater, key)`` pair.

    Behaves as a string-keyed mapping of application fields. The runtime
    tracks ``dirty`` (changed since last flush to the key-value store) and
    ``last_update_ts`` (drives TTL garbage collection).

    Attributes:
        slate_key: Identity ``<updater, key>``.
        ttl: Seconds after the last update when the slate may be garbage
            collected (``None`` = forever, the default; Section 3/4.2).
        created_ts: Timestamp of first initialization.
        last_update_ts: Timestamp of the most recent write.
    """

    __slots__ = ("slate_key", "ttl", "created_ts", "last_update_ts",
                 "dirty", "_data")

    def __init__(
        self,
        slate_key: SlateKey,
        data: Optional[Dict[str, Any]] = None,
        ttl: Optional[float] = TTL_FOREVER,
        created_ts: Timestamp = 0.0,
    ) -> None:
        self.slate_key = slate_key
        self.ttl = ttl
        self.created_ts = created_ts
        self.last_update_ts = created_ts
        self.dirty = False
        self._data: Dict[str, Any] = dict(data) if data else {}

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, field_name: str) -> Any:
        return self._data[field_name]

    def __setitem__(self, field_name: str, value: Any) -> None:
        self._data[field_name] = value
        self.dirty = True

    def __delitem__(self, field_name: str) -> None:
        del self._data[field_name]
        self.dirty = True

    def __contains__(self, field_name: str) -> bool:
        return field_name in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, field_name: str, default: Any = None) -> Any:
        """Return a field value, or ``default`` if absent."""
        return self._data.get(field_name, default)

    def setdefault(self, field_name: str, default: Any) -> Any:
        """Like :meth:`dict.setdefault`; marks the slate dirty on insert."""
        if field_name not in self._data:
            self._data[field_name] = default
            self.dirty = True
        return self._data[field_name]

    # -- runtime hooks -----------------------------------------------------
    def replace(self, data: Dict[str, Any]) -> None:
        """Replace the whole contents — the paper's ``replaceSlate`` call."""
        self._data = dict(data)
        self.dirty = True

    def as_dict(self) -> Dict[str, Any]:
        """A shallow copy of the application fields."""
        return dict(self._data)

    def touch(self, ts: Timestamp) -> None:
        """Record a write at time ``ts`` (runtime use)."""
        self.last_update_ts = ts
        self.dirty = True

    def mark_clean(self) -> None:
        """Clear the dirty flag after a successful flush (runtime use)."""
        self.dirty = False

    def expired(self, now: Timestamp) -> bool:
        """True if the TTL has elapsed since the last update (Section 4.2).

        "Slates that have not been updated (written) for longer than the
        TTL value may be garbage-collected by the key-value store."
        """
        if self.ttl is None:
            return False
        return (now - self.last_update_ts) > self.ttl

    def estimated_bytes(self) -> int:
        """Approximate in-memory/JSON size of the slate contents."""
        try:
            return len(json.dumps(self._data, separators=(",", ":"),
                                  default=str))
        except (TypeError, ValueError):
            return len(repr(self._data))

    def check_size(self, max_slate_bytes: Optional[int]) -> None:
        """Raise :class:`SlateTooLargeError` when over the configured cap."""
        if max_slate_bytes is None:
            return
        size = self.estimated_bytes()
        if size > max_slate_bytes:
            raise SlateTooLargeError(
                f"slate {self.slate_key} is {size} bytes "
                f"(cap {max_slate_bytes}); the paper advises keeping slates "
                f"to kilobytes, not megabytes (Section 5)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Slate({self.slate_key.updater}/{self.slate_key.key}, "
                f"{self._data!r}, dirty={self.dirty})")
