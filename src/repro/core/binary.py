"""The Appendix A byte-oriented operator interface, as a compat layer.

Muppet's native Java interfaces (paper Appendix A, Figures 3–4) are
byte-level: a ``Mapper`` receives ``(submitter, stream, key_bytes,
event_bytes)`` and publishes with ``submitter.publish(stream, key_bytes,
event_bytes)``; an ``Updater`` additionally receives ``slate_bytes``
(``None`` on first access) and stores state with
``submitter.replaceSlate(new_slate_bytes)``.

This module provides that exact interface in Python —
:class:`BinaryMapper` / :class:`BinaryUpdater` with a
:class:`PerformerUtilities` submitter — plus adapters that let
byte-level operators run unchanged on every engine in this repository.
:mod:`repro.apps.appendix_a` ports Figures 3 and 4 onto it verbatim.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from repro.core.event import Event
from repro.core.operators import Context, Mapper, Updater
from repro.core.slate import Slate
from repro.errors import SlateError

#: Slate field under which the opaque byte payload is stored. Engines
#: persist slates as field dicts; the binary layer keeps the raw bytes in
#: one field (latin-1-escaped so the JSON codec can carry them).
_BYTES_FIELD = "__bytes__"


class PerformerUtilities:
    """The Appendix A "submitter": publish events, replace the slate.

    One instance wraps one engine :class:`~repro.core.operators.Context`
    for the duration of a single map/update invocation.
    """

    def __init__(self, ctx: Context) -> None:
        self._ctx = ctx
        self._replacement: Optional[bytes] = None

    def publish(self, stream: str, key: bytes, event: bytes) -> None:
        """Emit one event, byte-for-byte the Appendix A signature."""
        self._ctx.publish(stream, key=key.decode("utf-8"),
                          value=event.decode("latin-1"))

    # Java-style alias used verbatim in Figure 4.
    def replaceSlate(self, slate: bytes) -> None:  # noqa: N802
        """Replace the whole slate with new bytes (Figure 4's call)."""
        if not isinstance(slate, (bytes, bytearray)):
            raise SlateError(
                f"replaceSlate expects bytes, got {type(slate).__name__}"
            )
        self._replacement = bytes(slate)

    @property
    def replacement(self) -> Optional[bytes]:
        """The bytes passed to replaceSlate, if any (engine use)."""
        return self._replacement


class BinaryMapper(Mapper):
    """Byte-level map function: subclass and implement :meth:`map_bytes`.

    Mirrors the Java ``Mapper`` interface: constructed from ``(config,
    name)``; ``getName()`` returns the function name; ``map`` receives
    the stream name and the key/event as bytes.
    """

    # Java-style alias.
    def getName(self) -> str:  # noqa: N802
        """The function name (Appendix A's ``getName``)."""
        return self.get_name()

    @abc.abstractmethod
    def map_bytes(self, submitter: PerformerUtilities, stream: str,
                  key: bytes, event: bytes) -> None:
        """Process one event given as raw bytes."""

    def map(self, ctx: Context, event: Event) -> None:
        submitter = PerformerUtilities(ctx)
        payload = event.value
        if isinstance(payload, str):
            payload = payload.encode("latin-1")
        elif payload is None:
            payload = b""
        self.map_bytes(submitter, event.sid,
                       event.key.encode("utf-8"), payload)


class BinaryUpdater(Updater):
    """Byte-level update function: implement :meth:`update_bytes`.

    The slate argument is ``None`` the first time a key is seen (the
    Figure 4 Counter starts from 0 in that case); state is persisted
    only via ``submitter.replaceSlate``.
    """

    def getName(self) -> str:  # noqa: N802
        """The function name (Appendix A's ``getName``)."""
        return self.get_name()

    @abc.abstractmethod
    def update_bytes(self, submitter: PerformerUtilities, stream: str,
                     key: bytes, event: bytes,
                     slate: Optional[bytes]) -> None:
        """Process one event; read old slate bytes, replace with new."""

    def init_slate(self, key: str) -> Dict[str, Any]:
        # Fresh slates carry no byte payload: update_bytes sees None.
        return {}

    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        submitter = PerformerUtilities(ctx)
        payload = event.value
        if isinstance(payload, str):
            payload = payload.encode("latin-1")
        elif payload is None:
            payload = b""
        raw = slate.get(_BYTES_FIELD)
        old = raw.encode("latin-1") if isinstance(raw, str) else None
        self.update_bytes(submitter, event.sid,
                          event.key.encode("utf-8"), payload, old)
        if submitter.replacement is not None:
            slate[_BYTES_FIELD] = submitter.replacement.decode("latin-1")


def slate_bytes(slate_fields: Dict[str, Any]) -> Optional[bytes]:
    """Extract the raw byte payload from a binary updater's slate dict.

    Helper for reading binary-updater slates back out of
    ``read_slate``/``slates_of`` results.
    """
    raw = slate_fields.get(_BYTES_FIELD)
    return raw.encode("latin-1") if isinstance(raw, str) else None
