"""Tumbling-window helpers for update functions.

Three of the paper's applications repeat the same slate pattern: count
events for a fixed interval "counting from when it sees the first event"
(Example 5's per-minute counter), then emit and reset. This module
factors that pattern into :class:`TumblingWindow`, a small state machine
an updater embeds in its slate — so windowed updaters stay a few lines,
and the open/emit/reset bookkeeping is tested once.

Usage inside an updater::

    WINDOW = TumblingWindow("w", length_s=60.0)

    def init_slate(self, key):
        return WINDOW.init({"count": 0})

    def update(self, ctx, event, slate):
        WINDOW.observe(ctx, event.ts, slate)
        slate["count"] += 1

    def on_timer(self, ctx, key, slate, payload=None):
        count = slate["count"]
        slate["count"] = 0
        WINDOW.close(slate)
        ctx.publish("OUT", key, count)
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.operators import Context
from repro.errors import ConfigurationError


class TumblingWindow:
    """Per-slate tumbling-window bookkeeping.

    The window opens at the first observed event and requests a timer
    ``length_s`` later; the updater's ``on_timer`` does its emission and
    calls :meth:`close`, after which the next event reopens a window.
    Several windows can coexist in one slate under different names.

    Args:
        name: Field-name prefix inside the slate (several windows may
            share a slate).
        length_s: Window length in seconds.
    """

    def __init__(self, name: str, length_s: float) -> None:
        if not name:
            raise ConfigurationError("window name must be non-empty")
        if length_s <= 0:
            raise ConfigurationError("window length must be positive")
        self.name = name
        self.length_s = length_s
        self._open_field = f"__{name}_open__"
        self._start_field = f"__{name}_start__"

    def init(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Augment an ``init_slate`` dict with the window's fields."""
        fields[self._open_field] = False
        fields[self._start_field] = -1.0
        return fields

    def observe(self, ctx: Context, ts: float, slate: Any) -> bool:
        """Note one event; opens the window (and arms the timer) if it
        is not already open. Returns True when this event opened it."""
        if slate.get(self._open_field):
            return False
        slate[self._open_field] = True
        slate[self._start_field] = ts
        ctx.set_timer(ts + self.length_s)
        return True

    def is_open(self, slate: Any) -> bool:
        """Whether a window is currently open on this slate."""
        return bool(slate.get(self._open_field))

    def start_ts(self, slate: Any) -> float:
        """Opening timestamp of the current window (-1 when closed)."""
        return float(slate.get(self._start_field, -1.0))

    def close(self, slate: Any) -> None:
        """Close the window (call from ``on_timer`` after emitting)."""
        slate[self._open_field] = False
        slate[self._start_field] = -1.0
