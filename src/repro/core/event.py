"""Events and their ordering — the data model of MapUpdate (Section 3).

An event is the 4-tuple ``(sid, ts, key, value)``:

* ``sid`` — the ID of the stream the event belongs to,
* ``ts`` — a timestamp, global across all streams,
* ``key`` — an atomic grouping key (need not be unique across events),
* ``value`` — an arbitrary payload blob.

The paper requires that events be fed to operators "in the increasing order
of their timestamps, using a deterministic tie-breaking procedure". We make
that procedure explicit: ties are broken first by stream ID, then by a
per-stream sequence number stamped at publication time. :func:`order_key`
returns the total-order sort key used everywhere (reference executor, local
runtime, and simulator) so all engines agree on what "timestamp order" means.
"""

from __future__ import annotations

from dataclasses import FrozenInstanceError, dataclass
from typing import Any, NamedTuple, Optional, Tuple

#: Type alias: keys are atomic values; we standardize on ``str`` keys.
Key = str

#: The timestamp type. Timestamps are global across streams. We use floats
#: (seconds); applications that need wall-clock semantics interpret them as
#: Unix epoch seconds.
Timestamp = float


class Event(NamedTuple):
    """A single immutable stream event ``<sid, ts, k, v>``.

    Events are tuple-backed: construction is one C-level ``tuple.__new__``
    rather than a per-field ``object.__setattr__`` chain, which matters
    because the simulator allocates several events per delivered message
    (publication, stamping, re-addressing). The record stays frozen —
    assignment raises :class:`dataclasses.FrozenInstanceError` exactly as
    the previous frozen-dataclass representation did — and field names,
    defaults, equality, and ``repr`` are unchanged.

    Attributes:
        sid: ID of the stream this event belongs to.
        ts: Global timestamp (seconds). Output events must carry a timestamp
            strictly greater than their input event's (Section 3), which
            engines enforce via :class:`repro.core.operators.Emitter`.
        key: Grouping key. All events with the same key reach the same
            updater (and therefore the same slate) in Muppet 1.0; in
            Muppet 2.0 at most two workers may process a key concurrently.
        value: Arbitrary payload. The paper uses JSON blobs (e.g., a whole
            tweet); anything picklable/JSON-encodable works here.
        seq: Per-stream publication sequence number, stamped by the stream
            registry at publish time. Part of the deterministic tie-break;
            not meaningful to applications.
        origin: Replay-stable provenance stream, set by engines running
            with ``delivery_semantics="effectively-once"``. ``None`` for
            source events (their origin is the external stream itself);
            derived events carry a chain like ``"S1>M1"`` so a replayed
            re-derivation produces the *same* identity as the original.
        oseq: Monotone per-``origin`` sequence id paired with ``origin``.
            Together ``(origin, oseq)`` is the identity the per-slate
            dedup watermarks compare against; see :meth:`provenance`.
    """

    sid: str
    ts: Timestamp
    key: Key
    value: Any = None
    seq: int = 0
    origin: Optional[str] = None
    oseq: int = 0

    def __setattr__(self, name: str, value: Any) -> None:
        raise FrozenInstanceError(f"cannot assign to field {name!r}")

    def with_stream(self, sid: str, seq: int = 0) -> "Event":
        """Return a copy of this event re-addressed to stream ``sid``."""
        return Event(sid, self.ts, self.key, self.value, seq,
                     self.origin, self.oseq)

    def with_seq(self, seq: int) -> "Event":
        """Return a copy carrying publication sequence number ``seq``.

        Equivalent to ``dataclasses.replace(self, seq=seq)`` but built
        with a direct constructor call: ``replace`` rebuilds its kwargs
        dict from the field list on every call, which dominates the
        stamp cost on the per-event hot path.
        """
        return Event(self.sid, self.ts, self.key, self.value, seq,
                     self.origin, self.oseq)

    def with_provenance(self, origin: Optional[str], oseq: int) -> "Event":
        """Return a copy carrying replay-stable identity ``(origin, oseq)``.

        Direct-constructor twin of ``dataclasses.replace(self,
        origin=..., oseq=...)`` for the effectively-once hot path.
        """
        return Event(self.sid, self.ts, self.key, self.value, self.seq,
                     origin, oseq)

    def provenance(self) -> Tuple[str, int]:
        """Replay-stable identity ``(origin, sequence)`` of this event.

        Source events fall back to ``(sid, seq)``: the publication
        sequence is stamped exactly once at injection, so a journaled
        copy re-sent after a crash carries the same pair. Derived events
        (operator outputs under effectively-once delivery) carry an
        explicit :attr:`origin`/:attr:`oseq` assigned deterministically
        from their input event, so re-derivation on replay converges on
        the same identity.
        """
        if self.origin is not None:
            return self.origin, self.oseq
        return self.sid, self.seq

    def order_key(self) -> Tuple[Timestamp, str, int]:
        """Total-order sort key: ``(ts, sid, seq)``.

        Sorting any set of events by this key yields the unique order in
        which the MapUpdate semantics feeds them to a subscribing function:
        increasing timestamp, ties broken by stream ID then publication
        sequence (the "deterministic tie-breaking procedure" of Section 3).
        """
        return (self.ts, self.sid, self.seq)

    def size_bytes(self) -> int:
        """Approximate serialized size of this event in bytes.

        Used by cost models (network transfer, queue memory accounting).
        Strings count their UTF-8 length; other payloads are sized via their
        ``repr`` as a cheap, deterministic proxy.
        """
        if isinstance(self.value, (bytes, bytearray)):
            payload = len(self.value)
        elif isinstance(self.value, str):
            payload = len(self.value.encode("utf-8"))
        elif self.value is None:
            payload = 0
        else:
            payload = len(repr(self.value))
        return 16 + len(self.sid) + len(self.key) + payload


def order_key(event: Event) -> Tuple[Timestamp, str, int]:
    """Module-level alias of :meth:`Event.order_key` for use as a sort key."""
    return event.order_key()


#: Sequence-id stride between consecutive parent events on a derived
#: origin stream. One operator invocation may emit up to this many
#: outputs (events + timers) before derived ids would collide with the
#: next parent's — far beyond any MapUpdate workflow in practice.
ORIGIN_SEQ_STRIDE = 1 << 20


def derive_origin(parent: Event, operator: str, ordinal: int) -> Tuple[str, int]:
    """Deterministic provenance for the ``ordinal``-th output of one
    invocation of ``operator`` on ``parent``.

    The derived origin chains the parent's origin with the operator name
    (``"S1>M1"``, ``"S1>M1>U1"``, ...); the derived sequence folds the
    parent's sequence and the output position into one monotone integer.
    Because operators are deterministic (Section 3), replaying ``parent``
    re-derives byte-identical ``(origin, oseq)`` pairs — which is what
    lets downstream dedup watermarks recognize re-derived duplicates.
    """
    origin, oseq = parent.provenance()
    return f"{origin}>{operator}", oseq * ORIGIN_SEQ_STRIDE + ordinal


@dataclass(slots=True)
class EventCounter:
    """Mutable counters for event accounting (published/processed/lost).

    The paper logs lost events rather than retrying them ("The event that
    failed to reach B is lost (and logged as lost)", Section 4.3). Engines
    share one of these so tests and benchmarks can assert loss bounds.
    """

    published: int = 0
    processed: int = 0
    dropped_overflow: int = 0
    lost_failure: int = 0
    diverted_overflow_stream: int = 0
    throttled: int = 0
    #: Update applications skipped by probabilistic thinning (IPW
    #: reconstruction keeps the counters unbiased, so these are a
    #: precision cost, not data loss — excluded from :meth:`lost_total`).
    thinned: int = 0

    def lost_total(self) -> int:
        """Events that permanently left the system without being processed."""
        return self.dropped_overflow + self.lost_failure

    def snapshot(self) -> dict:
        """Return a plain-dict copy, handy for logging and assertions."""
        return {
            "published": self.published,
            "processed": self.processed,
            "dropped_overflow": self.dropped_overflow,
            "lost_failure": self.lost_failure,
            "diverted_overflow_stream": self.diverted_overflow_stream,
            "throttled": self.throttled,
            "thinned": self.thinned,
        }
