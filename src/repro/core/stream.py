"""Streams and the stream registry (Section 3).

A *stream* is the sequence of all events with the same ``sid``, ordered by
timestamp with deterministic tie-breaking. Streams are **external** (fed by
the outside world, e.g. the Twitter Firehose) or **internal** (produced by
map/update functions). The distinction matters for source throttling: the
paper's deadlock argument (Section 5) relies on "no mappers nor updaters can
emit events into such [external] streams", which :class:`StreamRegistry`
enforces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.event import Event
from repro.errors import WorkflowError


@dataclass(frozen=True)
class StreamSpec:
    """Static description of a stream in a workflow.

    Attributes:
        sid: Unique stream ID (e.g. ``"S1"``).
        external: True if the stream is fed only from outside the
            application (operators may not publish into it).
        overflow: True if the stream is fed by the engine's queue-overflow
            mechanism (Section 4.3's "overflow stream") rather than by a
            declared operator; exempt from the must-have-a-publisher
            validation.
        description: Optional human-readable note for docs/tracing.
    """

    sid: str
    external: bool = False
    overflow: bool = False
    description: str = ""


class StreamRegistry:
    """Tracks the streams of one application and stamps publication order.

    The registry owns the per-stream monotonically increasing sequence
    numbers that implement the deterministic tie-break of Section 3. Every
    engine publishes events through a registry (or a per-engine clone of
    one) so that the resulting order is well-defined.
    """

    def __init__(self, specs: Iterable[StreamSpec] = ()) -> None:
        self._specs: Dict[str, StreamSpec] = {}
        self._seq: Dict[str, itertools.count] = {}
        for spec in specs:
            self.declare(spec)

    def declare(self, spec: StreamSpec) -> StreamSpec:
        """Register a stream. Re-declaring the same sid must agree on kind."""
        existing = self._specs.get(spec.sid)
        if existing is not None:
            if existing.external != spec.external:
                raise WorkflowError(
                    f"stream {spec.sid!r} declared both external and internal"
                )
            return existing
        self._specs[spec.sid] = spec
        self._seq[spec.sid] = itertools.count()
        return spec

    def spec(self, sid: str) -> StreamSpec:
        """Return the spec for ``sid``; raise WorkflowError if unknown."""
        try:
            return self._specs[sid]
        except KeyError:
            raise WorkflowError(f"unknown stream {sid!r}") from None

    def __contains__(self, sid: str) -> bool:
        return sid in self._specs

    def sids(self) -> List[str]:
        """All declared stream IDs, sorted for determinism."""
        return sorted(self._specs)

    def external_sids(self) -> List[str]:
        """IDs of external (source) streams, sorted."""
        return sorted(s.sid for s in self._specs.values() if s.external)

    def internal_sids(self) -> List[str]:
        """IDs of internal (operator-produced) streams, sorted."""
        return sorted(s.sid for s in self._specs.values() if not s.external)

    def stamp(self, event: Event, from_operator: bool = False) -> Event:
        """Assign the next publication sequence number on the event's stream.

        Args:
            event: The event being published. Its ``sid`` must be declared.
            from_operator: True when an operator (map/update) is publishing.
                Operators may not publish into external streams — that is
                the invariant that keeps source throttling deadlock-free
                (Section 5).

        Returns:
            The same event with ``seq`` replaced by the stream's next
            sequence number.
        """
        spec = self.spec(event.sid)
        if from_operator and spec.external:
            raise WorkflowError(
                "operator attempted to publish into external stream "
                f"{event.sid!r}; external streams are input-only"
            )
        # with_seq keeps provenance (origin/oseq) intact: the
        # publication seq is the tie-break, not the replay identity.
        return event.with_seq(next(self._seq[event.sid]))


def merge_by_timestamp(*event_lists: Iterable[Event]) -> List[Event]:
    """Merge several event sequences into global timestamp order.

    This is the order in which a function subscribed to all of the given
    streams sees events (Section 3's two-stream example with the 21:23 /
    21:25 timestamps). Input order within each list is irrelevant; the
    result is sorted by :meth:`Event.order_key`.
    """
    merged: List[Event] = []
    for events in event_lists:
        merged.extend(events)
    merged.sort(key=lambda e: e.order_key())
    return merged
