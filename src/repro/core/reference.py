"""Reference executor: the *definition* of MapUpdate semantics (Section 3).

Section 3 proves that a MapUpdate application is well-defined — it generates
unique streams and slate-update sequences — provided that (a) functions are
deterministic, (b) events are fed in increasing timestamp order with
deterministic tie-breaking, and (c) output timestamps strictly exceed input
timestamps. "Ideally, a MapUpdate implementation should produce these exact
streams and slate updates. Due to practical constraints, however, it often
can only approximate them."

:class:`ReferenceExecutor` is the executable form of that ideal: a
single-threaded engine that processes every event in exact global order. It
is deliberately slow and simple. The distributed engines (local threads,
Muppet 1.0/2.0 on the simulator) are tested against it: with commutative
updates they must reach the same slate fixpoints; run with a single worker
they must reproduce its streams exactly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.application import Application, OperatorSpec
from repro.core.event import Event, EventCounter, Key, Timestamp
from repro.core.operators import (Context, Mapper, Operator, TimerRequest,
                                  Updater)
from repro.core.slate import Slate, SlateKey
from repro.errors import SimulationError, WorkflowError
from repro.muppet.queues import BoundedQueue, QueueStats

#: Prefix for the synthetic stream on which timer callbacks are ordered.
#: "!" sorts before every alphanumeric stream ID, so a timer at timestamp T
#: deterministically fires before ordinary events at T.
TIMER_SID_PREFIX = "!timer:"


@dataclass
class ReferenceResult:
    """Output of a reference run: streams, slates, and counters.

    Attributes:
        streams: Every event ever published, per stream, in publication
            order (which equals processing order for this executor).
        slates: Final slate objects, keyed by :class:`SlateKey`.
        counters: Event accounting.
        slate_update_log: The full sequence of (slate key, field snapshot)
            after each update — the paper's "sequences of slate updates",
            used to compare engines against the reference.
    """

    streams: Dict[str, List[Event]]
    slates: Dict[SlateKey, Slate]
    counters: EventCounter
    slate_update_log: List[Tuple[SlateKey, Dict[str, Any]]]

    def slate(self, updater: str, key: Key) -> Optional[Slate]:
        """The final slate for (updater, key), or None if never created."""
        return self.slates.get(SlateKey(updater, key))

    def slates_of(self, updater: str) -> Dict[Key, Slate]:
        """All final slates belonging to one update function."""
        return {sk.key: s for sk, s in self.slates.items()
                if sk.updater == updater}

    def events_on(self, sid: str) -> List[Event]:
        """Events published to stream ``sid`` (empty list if none)."""
        return self.streams.get(sid, [])

    def numeric_slates(self, updater: str, fld: str) -> Dict[str, float]:
        """One updater's final ``{key: float(slate[fld])}`` ground truth.

        The shedding error measurement compares an overloaded engine run
        against this exact mapping (the reference never sheds). Slates
        missing the field are skipped; non-numeric values raise.
        """
        exact: Dict[str, float] = {}
        for key, slate in self.slates_of(updater).items():
            if fld not in slate:
                continue
            value = slate[fld]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise WorkflowError(
                    f"slate ({updater}, {key!r}).{fld} holds non-numeric "
                    f"{value!r}; numeric_slates needs a numeric field")
            exact[key] = float(value)
        return exact


class ReferenceExecutor:
    """Single-threaded, exactly-ordered MapUpdate executor.

    Args:
        app: A validated :class:`Application`.
        max_events: Safety cap on total processed deliveries; cyclic
            workflows could otherwise run forever. Exceeding the cap raises
            :class:`SimulationError`.
        max_pending: Optional bound on the pending-delivery backlog (the
            scheduling heap). The reference engine has no overflow
            mechanism — no drop/divert/throttle — so the bound is strict:
            exceeding it raises :class:`QueueOverflowError` via
            :meth:`BoundedQueue.put`. ``None`` (the default) keeps the
            backlog unbounded, matching Section 3's idealized executor.
    """

    def __init__(self, app: Application, max_events: int = 1_000_000,
                 max_pending: Optional[int] = None) -> None:
        app.validate()
        self.app = app
        self.max_events = max_events
        # Admission ledger mirroring the scheduling heap: every heappush
        # is a put(), every heappop a poll(). Its stats expose the peak
        # pending backlog; with max_pending set it turns runaway fan-out
        # into a hard QueueOverflowError instead of unbounded memory.
        self._pending: BoundedQueue[None] = BoundedQueue(max_size=max_pending)
        # One shared instance per operator: the reference engine is
        # single-threaded, so sharing is safe and matches Muppet 2.0.
        self._instances: Dict[str, Operator] = {
            spec.name: spec.instantiate() for spec in app.operators()
        }
        self._slates: Dict[SlateKey, Slate] = {}
        self._counters = EventCounter()
        self._slate_log: List[Tuple[SlateKey, Dict[str, Any]]] = []
        self._published: Dict[str, List[Event]] = {}
        self._timer_seq = itertools.count()

    # -- public API ----------------------------------------------------------
    def run(self, source_events: Iterable[Event]) -> ReferenceResult:
        """Feed ``source_events`` (external streams only) to completion.

        Events may arrive in any order; the executor sorts the whole run
        into the global timestamp order first, then processes each delivery,
        interleaving operator-published events and timers at their correct
        positions.
        """
        heap: List[Tuple[Tuple[Timestamp, str, int], int, object]] = []
        tie = itertools.count()

        for event in source_events:
            spec = self.app.streams.spec(event.sid)
            if not spec.external:
                raise WorkflowError(
                    "source event addressed to internal stream "
                    f"{event.sid!r}; only external streams accept input"
                )
            stamped = self.app.streams.stamp(event)
            self._record(stamped)
            self._pending.put(None)
            heapq.heappush(heap, (stamped.order_key(), next(tie), stamped))

        processed = 0
        while heap:
            _, __, item = heapq.heappop(heap)
            self._pending.poll()
            processed += 1
            if processed > self.max_events:
                raise SimulationError(
                    f"reference run exceeded max_events={self.max_events}; "
                    "the workflow may loop without terminating"
                )
            if isinstance(item, TimerRequest):
                outputs, timers = self._fire_timer(item)
            else:
                outputs, timers = self._deliver(item)  # type: ignore[arg-type]
            for out in outputs:
                self._pending.put(None)
                heapq.heappush(heap, (out.order_key(), next(tie), out))
            for timer in timers:
                self._pending.put(None)
                order = (timer.at_ts, TIMER_SID_PREFIX + timer.updater,
                         next(self._timer_seq))
                heapq.heappush(heap, (order, next(tie), timer))

        return ReferenceResult(
            streams=self._published,
            slates=self._slates,
            counters=self._counters,
            slate_update_log=self._slate_log,
        )

    @property
    def pending_stats(self) -> QueueStats:
        """Admission-ledger stats; ``peak_depth`` is the peak backlog."""
        return self._pending.stats

    # -- internals -------------------------------------------------------------
    def _record(self, event: Event) -> None:
        self._published.setdefault(event.sid, []).append(event)
        self._counters.published += 1

    def _stamp_and_record(self, outputs: List[Event]) -> List[Event]:
        stamped = []
        for out in outputs:
            event = self.app.streams.stamp(out, from_operator=True)
            self._record(event)
            stamped.append(event)
        return stamped

    def _deliver(self, event: Event) -> Tuple[List[Event], List[TimerRequest]]:
        """Feed one event to every subscriber, in sorted operator order."""
        outputs: List[Event] = []
        timers: List[TimerRequest] = []
        for spec in self.app.subscribers_of(event.sid):
            self._counters.processed += 1
            ctx = Context(spec.name, event.ts, spec.publishes, event.key)
            instance = self._instances[spec.name]
            if spec.kind == "map":
                assert isinstance(instance, Mapper)
                instance.map(ctx, event)
            else:
                assert isinstance(instance, Updater)
                slate = self._slate_for(instance, spec, event.key, event.ts)
                instance.update(ctx, event, slate)
                slate.touch(event.ts)
                self._slate_log.append(
                    (slate.slate_key, slate.as_dict())
                )
            outputs.extend(self._stamp_and_record(ctx.emitted))
            timers.extend(ctx.timers)
        return outputs, timers

    def _fire_timer(
        self, timer: TimerRequest
    ) -> Tuple[List[Event], List[TimerRequest]]:
        spec = self.app.operator(timer.updater)
        instance = self._instances[spec.name]
        assert isinstance(instance, Updater)
        ctx = Context(spec.name, timer.at_ts, spec.publishes, timer.key)
        slate = self._slate_for(instance, spec, timer.key, timer.at_ts)
        instance.on_timer(ctx, timer.key, slate, timer.payload)
        slate.touch(timer.at_ts)
        self._slate_log.append((slate.slate_key, slate.as_dict()))
        outputs = self._stamp_and_record(ctx.emitted)
        return outputs, list(ctx.timers)

    def _slate_for(self, instance: Updater, spec: OperatorSpec, key: Key,
                   now: Timestamp) -> Slate:
        """Fetch (or initialize, or TTL-reset) the slate for (spec, key)."""
        slate_key = SlateKey(spec.name, key)
        slate = self._slates.get(slate_key)
        if slate is not None and slate.expired(now):
            slate = None  # TTL elapsed: "resetting to an empty slate"
        if slate is None:
            slate = Slate(slate_key, instance.init_slate(key),
                          ttl=instance.slate_ttl, created_ts=now)
            self._slates[slate_key] = slate
        return slate
