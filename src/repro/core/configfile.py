"""Application configuration files (Section 3).

"To write a MapUpdate application, a developer writes the necessary map
and update functions, then a configuration file that includes the
workflow graph." This module is that configuration file for our system:
a JSON document naming the streams, the operator classes (as import
paths), their subscriptions/publications, and per-function config —
loadable into a validated :class:`~repro.core.application.Application`.

Example::

    {
      "name": "retailer-counts",
      "streams": [
        {"sid": "S1", "external": true},
        {"sid": "S2"}
      ],
      "operators": [
        {"name": "M1", "kind": "map",
         "class": "repro.apps.retailer_count.RetailerMapper",
         "subscribes": ["S1"], "publishes": ["S2"]},
        {"name": "U1", "kind": "update",
         "class": "repro.apps.retailer_count.CheckinCounter",
         "subscribes": ["S2"], "config": {"slate_ttl": 86400}}
      ],
      "outputs": ["S2"]
    }
"""

from __future__ import annotations

import importlib
import json
from pathlib import Path
from typing import Any, Dict, Type, Union

from repro.core.application import Application
from repro.core.operators import Mapper, Operator, Updater
from repro.errors import ConfigurationError


def resolve_operator_class(dotted_path: str) -> Type[Operator]:
    """Import an operator class from ``"package.module.ClassName"``."""
    module_name, _, class_name = dotted_path.rpartition(".")
    if not module_name:
        raise ConfigurationError(
            f"operator class {dotted_path!r} must be a dotted import path"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import module {module_name!r}: {exc}"
        ) from exc
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise ConfigurationError(
            f"module {module_name!r} has no class {class_name!r}"
        ) from None
    if not (isinstance(cls, type) and issubclass(cls, Operator)):
        raise ConfigurationError(
            f"{dotted_path!r} is not a Mapper/Updater subclass"
        )
    return cls


def application_from_config(config: Dict[str, Any]) -> Application:
    """Build and validate an application from a parsed config dict."""
    try:
        name = config["name"]
        streams = config["streams"]
        operators = config["operators"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"config must define name, streams, and operators: {exc}"
        ) from exc

    app = Application(name)
    for stream in streams:
        if "sid" not in stream:
            raise ConfigurationError(f"stream missing 'sid': {stream}")
        app.add_stream(stream["sid"],
                       external=bool(stream.get("external", False)),
                       overflow=bool(stream.get("overflow", False)),
                       description=stream.get("description", ""))

    for operator in operators:
        for field in ("name", "kind", "class", "subscribes"):
            if field not in operator:
                raise ConfigurationError(
                    f"operator missing {field!r}: {operator}"
                )
        cls = resolve_operator_class(operator["class"])
        kind = operator["kind"]
        expected = {"map": Mapper, "update": Updater}.get(kind)
        if expected is None:
            raise ConfigurationError(
                f"operator kind must be 'map' or 'update', got {kind!r}"
            )
        if not issubclass(cls, expected):
            raise ConfigurationError(
                f"operator {operator['name']!r}: {operator['class']!r} is "
                f"not a {expected.__name__} subclass"
            )
        adder = app.add_mapper if kind == "map" else app.add_updater
        adder(operator["name"], cls,
              subscribes=operator["subscribes"],
              publishes=operator.get("publishes", []),
              config=operator.get("config", {}))

    for sid in config.get("outputs", []):
        app.mark_output(sid)
    return app.validate()


def load_application(path: Union[str, Path]) -> Application:
    """Load, parse, and validate an application config file (JSON)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    try:
        config = json.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(config, dict):
        raise ConfigurationError(f"{path} must contain a JSON object")
    return application_from_config(config)


def application_to_config(app: Application) -> Dict[str, Any]:
    """Export an application back to its config-dict form.

    Only class-factory operators round-trip (pre-built instances have no
    import path); raises :class:`ConfigurationError` otherwise.
    """
    operators = []
    for spec in app.operators():
        factory = spec.factory
        if not isinstance(factory, type):
            raise ConfigurationError(
                f"operator {spec.name!r} was built from an instance and "
                "cannot be exported to a config file"
            )
        operators.append({
            "name": spec.name,
            "kind": spec.kind,
            "class": f"{factory.__module__}.{factory.__qualname__}",
            "subscribes": list(spec.subscribes),
            "publishes": list(spec.publishes),
            "config": dict(spec.config),
        })
    return {
        "name": app.name,
        "streams": [
            {"sid": sid,
             "external": app.streams.spec(sid).external,
             "overflow": app.streams.spec(sid).overflow}
            for sid in app.streams.sids()
        ],
        "operators": operators,
        "outputs": list(app.output_sids),
    }
