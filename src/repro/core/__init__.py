"""The MapUpdate programming model (paper Section 3).

Public surface: events and streams, the map/update operator API, slates,
workflow-graph applications, and the single-threaded reference executor
that defines the model's exact semantics.
"""

from repro.core.application import Application, OperatorSpec
from repro.core.binary import (BinaryMapper, BinaryUpdater,
                               PerformerUtilities, slate_bytes)
from repro.core.configfile import (application_from_config,
                                   application_to_config, load_application)
from repro.core.event import Event, EventCounter, Key, Timestamp
from repro.core.operators import (MIN_TS_INCREMENT, Context, Mapper,
                                  Operator, TimerRequest, Updater)
from repro.core.reference import ReferenceExecutor, ReferenceResult
from repro.core.slate import TTL_FOREVER, Slate, SlateKey
from repro.core.stream import StreamRegistry, StreamSpec, merge_by_timestamp
from repro.core.windows import TumblingWindow

__all__ = [
    "Application",
    "BinaryMapper",
    "BinaryUpdater",
    "PerformerUtilities",
    "application_from_config",
    "application_to_config",
    "load_application",
    "slate_bytes",
    "Context",
    "Event",
    "EventCounter",
    "Key",
    "MIN_TS_INCREMENT",
    "Mapper",
    "Operator",
    "OperatorSpec",
    "ReferenceExecutor",
    "ReferenceResult",
    "Slate",
    "SlateKey",
    "StreamRegistry",
    "StreamSpec",
    "TTL_FOREVER",
    "TimerRequest",
    "Timestamp",
    "TumblingWindow",
    "Updater",
    "merge_by_timestamp",
]
