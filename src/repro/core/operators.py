"""Map and update functions — the user-facing operator API (Section 3).

This is the Python rendering of the paper's ``Mapper``/``Updater`` Java
interfaces (Appendix A, Figures 3 and 4). Applications subclass
:class:`Mapper` or :class:`Updater`; the engine hands each invocation a
:class:`Context` (the analog of the paper's ``PerformerUtilities``
"submitter") through which operators publish output events.

Semantics enforced here, straight from Section 3:

* Output event timestamps must be **strictly greater** than the input
  event's timestamp, so cyclic workflows stay well-defined. ``publish``
  defaults the timestamp to ``input.ts + min_ts_increment`` and rejects
  non-advancing explicit timestamps with :class:`TimestampError`.
* Mappers are memoryless; only updaters receive slates.
* Updaters initialize their own slates on first access (``init_slate``),
  mirroring "the update function must set up the set of variables it needs
  in the slate and initialize those variables".

Timers: the paper's hot-topic app (Example 5) publishes a per-minute count
"after a minute (counting from when it sees the first event with key v_m)".
That requires a time trigger, which the paper leaves implicit in Muppet's
runtime. We make it explicit: an updater may call ``ctx.set_timer(at_ts)``;
the engine later invokes ``on_timer`` with the same key and slate at
timestamp ``at_ts``, interleaved into the global event order. Timer
callbacks may publish events (with timestamps greater than ``at_ts``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.event import Event, Key, Timestamp
from repro.core.slate import Slate
from repro.errors import TimestampError, WorkflowError

#: Smallest timestamp advance applied when an operator does not pick an
#: explicit output timestamp. Small enough to be invisible at second
#: granularity, large enough to totally order loop iterations.
MIN_TS_INCREMENT = 1e-6


@dataclass(frozen=True, slots=True)
class TimerRequest:
    """A pending request for a timer callback (see module docstring)."""

    updater: str
    key: Key
    at_ts: Timestamp
    payload: Any = None


class Context:
    """Per-invocation publication interface (the paper's "submitter").

    An engine creates one Context per operator invocation, passing the
    operator's declared output streams and the input event's timestamp. The
    operator calls :meth:`publish` zero or more times; the engine then
    collects :attr:`emitted` and routes the events.
    """

    __slots__ = ("operator", "input_ts", "input_key", "_output_sids",
                 "emitted", "timers", "now")

    def __init__(
        self,
        operator: str,
        input_ts: Timestamp,
        output_sids: Tuple[str, ...],
        input_key: Key = "",
    ) -> None:
        self.operator = operator
        self.input_ts = input_ts
        self.input_key = input_key
        #: Alias for the input event's timestamp — "current time" as the
        #: operator observes it.
        self.now = input_ts
        self._output_sids = output_sids
        self.emitted: List[Event] = []
        self.timers: List[TimerRequest] = []

    def publish(
        self,
        sid: str,
        key: Key,
        value: Any = None,
        ts: Optional[Timestamp] = None,
    ) -> Event:
        """Emit an event to stream ``sid``.

        Args:
            sid: Target stream; must be one of the operator's declared
                output streams.
            key: Event key.
            value: Event payload.
            ts: Optional explicit timestamp; must be > the input event's
                timestamp. Defaults to ``input_ts + MIN_TS_INCREMENT``.

        Returns:
            The emitted event (sequence number not yet stamped; the engine's
            stream registry stamps it on routing).
        """
        if sid not in self._output_sids:
            raise WorkflowError(
                f"operator {self.operator!r} is not declared to publish to "
                f"stream {sid!r} (declared outputs: {self._output_sids})"
            )
        if ts is None:
            ts = self.input_ts + MIN_TS_INCREMENT
        elif ts <= self.input_ts:
            raise TimestampError(
                f"operator {self.operator!r} emitted ts={ts} which does not "
                f"exceed input ts={self.input_ts}; Section 3 requires output "
                "timestamps to be strictly greater than the input's"
            )
        # Direct tuple construction: publish runs once per emitted event
        # on every engine's hot path, and the named constructor's Python
        # frame doubles the allocation cost.
        event = tuple.__new__(Event, (sid, ts, key, value, 0, None, 0))
        self.emitted.append(event)
        return event

    def set_timer(self, at_ts: Timestamp, payload: Any = None) -> None:
        """Request an ``on_timer`` callback at timestamp ``at_ts``.

        Only meaningful inside an updater invocation; the timer fires for
        the same (updater, key) pair. ``at_ts`` must be in the future of the
        current event.
        """
        if at_ts <= self.input_ts:
            raise TimestampError(
                f"timer at ts={at_ts} does not exceed current ts="
                f"{self.input_ts}"
            )
        self.timers.append(
            TimerRequest(self.operator, self.input_key, at_ts, payload)
        )


class Operator(abc.ABC):
    """Common base for map and update functions.

    Mirrors the paper's construction contract (Appendix A): implementations
    are constructed from "a configuration object for the application and a
    string for the name of the map or update function being instantiated",
    because the same class may be reused under several names in one
    workflow.
    """

    def __init__(self, config: Optional[Dict[str, Any]] = None,
                 name: str = "") -> None:
        self.config: Dict[str, Any] = dict(config or {})
        self.name = name or type(self).__name__

    def get_name(self) -> str:
        """The unique function name this instance runs under."""
        return self.name

    #: Relative CPU cost of one invocation, used by the cluster simulator's
    #: service-time model (1.0 = the simulator's base per-event cost).
    #: Applications with expensive per-event work (NLP, classification)
    #: override this so simulated machines saturate realistically.
    cost_factor: float = 1.0


class Mapper(Operator):
    """A memoryless map function: ``map(event) -> event*`` (Section 3)."""

    @abc.abstractmethod
    def map(self, ctx: Context, event: Event) -> None:
        """Process one event; publish any outputs via ``ctx.publish``."""


class Updater(Operator):
    """A stateful update function: ``update(event, slate) -> event*``.

    Subclasses implement :meth:`update` and usually :meth:`init_slate`.
    Slate TTL is configured per update function (Section 4.2) via the
    ``slate_ttl`` attribute or constructor config key of the same name.

    **Thinnability** (the overload-control extension, see
    :mod:`repro.shedding`): an updater whose state is an associative
    accumulator may set ``thinnable = True`` (or pass
    ``{"thinnable": True}`` config) and implement
    :meth:`update_weighted`. Under overload the engine then skips a
    fraction of its update applications and applies the kept ones with
    inverse-probability weight ``1/p_keep``, keeping the expected
    slate values equal to the exact ones. Non-thinnable updaters are
    never thinned.
    """

    #: Per-updater slate time-to-live in seconds (None = forever, default).
    slate_ttl: Optional[float] = None
    #: Declares that this updater's state tolerates probabilistic
    #: thinning with IPW reconstruction (see module docstring).
    thinnable: bool = False

    def __init__(self, config: Optional[Dict[str, Any]] = None,
                 name: str = "") -> None:
        super().__init__(config, name)
        if "slate_ttl" in self.config:
            self.slate_ttl = self.config["slate_ttl"]
        if "thinnable" in self.config:
            self.thinnable = bool(self.config["thinnable"])

    def init_slate(self, key: Key) -> Dict[str, Any]:
        """Initial field values for a fresh slate for ``key``.

        Called the first time this updater touches key ``k`` — or again
        after the slate's TTL expired and the store garbage-collected it
        ("resetting to an empty slate at that time", Section 4.2).
        """
        return {}

    @abc.abstractmethod
    def update(self, ctx: Context, event: Event, slate: Slate) -> None:
        """Fold one event into the slate; optionally publish events."""

    def update_weighted(self, ctx: Context, event: Event, slate: Slate,
                        weight: float) -> None:
        """Fold one event with an inverse-probability weight.

        Called instead of :meth:`update` when the overload controller
        thins this updater: a kept event with keep-probability ``p``
        arrives with ``weight = 1/p`` so additive state stays unbiased.
        Weight 1.0 delegates to :meth:`update`; a thinnable updater
        must override this for weights above 1.0.
        """
        if weight == 1.0:
            self.update(ctx, event, slate)
            return
        raise WorkflowError(
            f"updater {self.name!r} declares thinnable={self.thinnable} "
            "but does not implement update_weighted(); thinning needs "
            "the weighted fold to keep its estimates unbiased")

    def on_timer(self, ctx: Context, key: Key, slate: Slate,
                 payload: Any = None) -> None:
        """Timer callback (see module docstring). Default: no-op."""
