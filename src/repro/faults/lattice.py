"""Bounded fault-lattice enumeration for the model checker.

The chaos tests sample *one* seeded :class:`~repro.faults.FaultSchedule`
per run; the model checker (:mod:`repro.analysis.mc`) instead explores a
small, explicitly bounded *lattice* of concrete schedules — every crash
site x crash time x recovery placement combination, plus the fault-free
point — and exhausts the delivery interleavings of each one. Keeping the
enumeration here, beside the schedule builder, means a counterexample is
always expressible as a plain committed ``FaultSchedule``: the artifact
the replay CLI re-executes.

Two site vocabularies:

* :class:`CrashSite` — time-placed crashes: a victim machine, a bounded
  list of quantized crash times, and recovery deltas (``None`` = never
  recovers, degrading exactness claims to at-most-once for that point).
* :class:`MigrationSite` — phase-placed crashes for live slate handoff:
  ``at_migration(phase, target)`` triggers consumed by the migration
  coordinator at phase entry, matching the elastic chaos matrix.

``FaultLattice.schedules()`` yields the deterministic cross product,
bounded by ``max_faults`` concurrent fault sites per schedule.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.schedule import FaultSchedule


@dataclass(frozen=True)
class CrashSite:
    """One crash dimension: a victim, candidate times, recovery deltas.

    Attributes:
        machine: The machine to kill.
        at_times: Candidate crash instants (simulated seconds).
        recover_after: Candidate recovery deltas added to the crash
            time; ``None`` entries mean the machine stays dead.
    """

    machine: str
    at_times: Tuple[float, ...]
    recover_after: Tuple[Optional[float], ...] = (None,)

    def __post_init__(self) -> None:
        if not self.machine:
            raise ConfigurationError("CrashSite needs a machine name")
        if not self.at_times:
            raise ConfigurationError(
                f"CrashSite {self.machine!r} needs at least one crash time")
        if not self.recover_after:
            raise ConfigurationError(
                f"CrashSite {self.machine!r} needs at least one recovery "
                "delta (use (None,) for never-recovers)")
        for delta in self.recover_after:
            if delta is not None and delta <= 0:
                raise ConfigurationError(
                    f"CrashSite {self.machine!r}: recover_after delta "
                    f"{delta} must be > 0 (or None)")

    def points(self) -> List[Tuple[float, Optional[float]]]:
        """All ``(crash_at, recover_at)`` placements of this site."""
        out: List[Tuple[float, Optional[float]]] = []
        for at in self.at_times:
            for delta in self.recover_after:
                out.append((at, None if delta is None else at + delta))
        return out


@dataclass(frozen=True)
class MigrationSite:
    """One phase-triggered crash dimension for live migrations.

    Attributes:
        phases: Candidate migration phases (subset of
            :data:`repro.elastic.migration.MIGRATION_PHASES`).
        targets: Candidate participants (``donor``/``receiver``/
            ``master``).
        machine: Optional explicit victim override.
    """

    phases: Tuple[str, ...]
    targets: Tuple[str, ...] = ("donor",)
    machine: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.phases or not self.targets:
            raise ConfigurationError(
                "MigrationSite needs at least one phase and one target")

    def points(self) -> List[Tuple[str, str]]:
        """All ``(phase, target)`` placements of this site."""
        return [(phase, target)
                for phase in self.phases for target in self.targets]


@dataclass(frozen=True)
class FaultLattice:
    """A bounded, deterministic enumeration of concrete fault schedules.

    Attributes:
        crashes: Time-placed crash dimensions.
        migrations: Phase-placed migration-crash dimensions.
        max_faults: Upper bound on *sites* active in one schedule (the
            small-scope bound; 1 explores single faults only).
        include_empty: Emit the fault-free schedule first.
        seed: Seed carried by every generated schedule.
    """

    crashes: Tuple[CrashSite, ...] = ()
    migrations: Tuple[MigrationSite, ...] = ()
    max_faults: int = 1
    include_empty: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_faults < 0:
            raise ConfigurationError("max_faults must be >= 0")

    def schedules(self) -> List[FaultSchedule]:
        """The lattice points, deterministically ordered.

        Order: the empty schedule, then single-site placements in
        declaration order, then pairs, ... up to ``max_faults`` sites.
        Within one site, placements follow the declared time/phase
        order, so artifact diffs stay stable as bounds grow.
        """
        out: List[FaultSchedule] = []
        if self.include_empty:
            out.append(FaultSchedule(seed=self.seed))
        sites: List[Sequence[object]] = [
            *(site.points() for site in self.crashes),
            *(site.points() for site in self.migrations),
        ]
        n_crash = len(self.crashes)
        for count in range(1, self.max_faults + 1):
            for combo in itertools.combinations(range(len(sites)), count):
                for placement in itertools.product(
                        *(sites[i] for i in combo)):
                    schedule = FaultSchedule(seed=self.seed)
                    for site_index, point in zip(combo, placement):
                        if site_index < n_crash:
                            at, recover_at = point  # type: ignore[misc]
                            schedule.crash(
                                float(at), self.crashes[site_index].machine,
                                recover_at=recover_at)
                        else:
                            phase, target = point  # type: ignore[misc]
                            site = self.migrations[site_index - n_crash]
                            schedule.at_migration(
                                str(phase), target=str(target),
                                machine=site.machine)
                    out.append(schedule)
        return out

    def __len__(self) -> int:
        return len(self.schedules())

    def __iter__(self) -> Iterator[FaultSchedule]:
        return iter(self.schedules())


def describe_schedule(schedule: FaultSchedule) -> str:
    """One-line human label for a lattice point (artifact/report key)."""
    events = schedule.events()
    if not events:
        return "fault-free"
    parts: List[str] = []
    for event in events:
        if event.kind == "crash":
            parts.append(f"crash({event.machine}@{event.at:g})")
        elif event.kind == "recover":
            parts.append(f"recover({event.machine}@{event.at:g})")
        elif event.kind == "migration_crash":
            victim = event.machine or event.target
            parts.append(f"at_migration({event.phase}:{victim})")
        else:
            parts.append(f"{event.kind}({event.machine or ''}@{event.at:g})")
    return "+".join(parts)
