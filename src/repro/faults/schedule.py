"""The declarative fault schedule — what goes wrong, and when.

A :class:`FaultSchedule` is an ordered collection of :class:`FaultEvent`
records plus one RNG seed. It replaces the simulator's bare
``[(time, machine)]`` kill list (which it still accepts via
:meth:`FaultSchedule.from_kill_list`) with the full chaos vocabulary:

========= ==================================================================
kind       meaning
========= ==================================================================
crash      the machine dies (crash-stop); queued events and unflushed
           dirty slates are lost, exactly the paper's Section 4.3 story.
recover    the machine comes back: it reports to the master, the master
           broadcasts recovery, the ring re-admits it, its slate manager
           re-hydrates lazily from the replicated kv-store, and hinted
           handoff drains to its kv node.
partition  the named machine group is isolated from the rest of the
           cluster for an interval; crossing messages are dropped and
           counted (``lost_partition``).
slow       gray failure: the machine stays up but its CPU service times
           and/or network transfers are inflated by a factor for an
           interval (the "limping node" nobody's failure detector sees).
drop       each message touching the (optional) target machine is dropped
           with a seeded probability for an interval.
delay      each matching message gains a fixed extra delay plus seeded
           jitter for an interval.
kv_outage  the co-located kv node goes down for an interval (machine and
           workers stay up); writes leave hints, the slate manager's
           retry/backoff/fail-open path absorbs errors, and the hints
           drain when the node returns.
migration_crash
           phase-triggered chaos for live slate handoff: when a
           migration enters the named phase, the chosen participant
           (donor, receiver, or master) crashes. Consumed by the
           migration coordinator, not scheduled at a time.
========= ==================================================================

All randomness (drop coin flips, delay jitter) comes from one
``random.Random(seed)`` owned by the injector, so two runs of the same
schedule over the same workload are bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Every fault kind a schedule may contain.
FAULT_KINDS = ("crash", "recover", "partition", "slow", "drop", "delay",
               "kv_outage", "migration_crash")

#: Kinds that describe an interval of altered behaviour rather than a
#: single state change; the injector evaluates them at query time.
INTERVAL_KINDS = ("partition", "slow", "drop", "delay")

#: Kinds dispatched by the migration coordinator at phase entry rather
#: than at a wall-clock instant (``at`` is ignored for these).
MIGRATION_KINDS = ("migration_crash",)


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled fault. Use the :class:`FaultSchedule` builder
    methods rather than constructing these directly.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        at: Start time (simulated seconds).
        until: End time for interval kinds and ``kv_outage``; ``None``
            for point events (``crash``/``recover``) and open-ended
            intervals.
        machine: Target machine/kv-node name, when the kind takes one.
        group: The isolated machine set for ``partition``.
        cpu_factor / net_factor: Gray-failure inflation factors (>= 1).
        probability: Per-message probability for ``drop``/``delay``.
        extra_delay_s / jitter_s: Added latency for ``delay``.
        phase: Migration phase that triggers a ``migration_crash``.
        target: Which migration participant a ``migration_crash``
            kills: ``"donor"``, ``"receiver"``, or ``"master"``.
    """

    kind: str
    at: float
    until: Optional[float] = None
    machine: Optional[str] = None
    group: Optional[FrozenSet[str]] = None
    cpu_factor: float = 1.0
    net_factor: float = 1.0
    probability: float = 1.0
    extra_delay_s: float = 0.0
    jitter_s: float = 0.0
    phase: Optional[str] = None
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; use one of {FAULT_KINDS}")
        if self.at < 0:
            raise ConfigurationError(f"{self.kind}: at={self.at} must be >= 0")
        if self.until is not None and self.until <= self.at:
            raise ConfigurationError(
                f"{self.kind}: until={self.until} must be > at={self.at}")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"{self.kind}: probability {self.probability} outside [0, 1]")
        if self.cpu_factor < 1.0 or self.net_factor < 1.0:
            raise ConfigurationError(
                f"{self.kind}: slow factors must be >= 1 (a factor below 1 "
                "would be a speed-up, not a fault)")
        if self.extra_delay_s < 0 or self.jitter_s < 0:
            raise ConfigurationError(f"{self.kind}: delays must be >= 0")
        if self.kind == "partition" and not self.group:
            raise ConfigurationError("partition needs a non-empty group")
        if self.kind in ("crash", "recover", "slow", "kv_outage") \
                and not self.machine:
            raise ConfigurationError(f"{self.kind} needs a machine name")
        if self.kind == "migration_crash":
            from repro.elastic.migration import (MIGRATION_PHASES,
                                                 MIGRATION_TARGETS)
            if self.phase not in MIGRATION_PHASES:
                raise ConfigurationError(
                    f"migration_crash phase {self.phase!r} must be one "
                    f"of {MIGRATION_PHASES}")
            if self.target is not None \
                    and self.target not in MIGRATION_TARGETS:
                raise ConfigurationError(
                    f"migration_crash target {self.target!r} must be "
                    f"one of {MIGRATION_TARGETS}")
        elif self.phase is not None or self.target is not None:
            raise ConfigurationError(
                f"{self.kind}: phase/target apply only to "
                "migration_crash events")

    def active(self, now: float) -> bool:
        """Whether an interval fault applies at simulated time ``now``."""
        if now < self.at:
            return False
        return self.until is None or now < self.until

    def matches_message(self, src: Optional[str], dst: str) -> bool:
        """Whether a drop/delay rule applies to a ``src -> dst`` message.

        A rule with no target machine matches every message; otherwise it
        matches messages the target sends or receives. ``src is None``
        denotes a source-injection (M0) or master-control message.
        """
        if self.machine is None:
            return True
        return self.machine in (src, dst)


class FaultSchedule:
    """A seeded, ordered collection of fault events (builder-style).

    Builder methods return ``self`` so schedules chain::

        schedule = (FaultSchedule(seed=7)
                    .crash(1.0, "m001", recover_at=2.0)
                    .slow(0.5, "m002", until=1.5, cpu_factor=4.0)
                    .kv_outage(1.0, "m003", until=1.4)
                    .drop(0.8, until=1.2, probability=0.05))

    Args:
        seed: Seed for every probabilistic decision the schedule makes.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._events: List[FaultEvent] = []

    # -- builders ----------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append a pre-built event (validation ran at construction)."""
        self._events.append(event)
        return self

    def crash(self, at: float, machine: str,
              recover_at: Optional[float] = None) -> "FaultSchedule":
        """Kill ``machine`` at ``at``; optionally revive it later."""
        self.add(FaultEvent("crash", at, machine=machine))
        if recover_at is not None:
            if recover_at <= at:
                raise ConfigurationError(
                    f"recover_at={recover_at} must be > crash at={at}")
            self.recover(recover_at, machine)
        return self

    def recover(self, at: float, machine: str) -> "FaultSchedule":
        """Revive a previously crashed ``machine`` at ``at``."""
        return self.add(FaultEvent("recover", at, machine=machine))

    def partition(self, at: float, group: Iterable[str],
                  until: float) -> "FaultSchedule":
        """Isolate ``group`` from the rest of the cluster until ``until``."""
        return self.add(FaultEvent("partition", at, until=until,
                                   group=frozenset(group)))

    def slow(self, at: float, machine: str, until: float,
             cpu_factor: float = 1.0,
             net_factor: float = 1.0) -> "FaultSchedule":
        """Gray failure: inflate ``machine``'s CPU/network costs."""
        if cpu_factor == 1.0 and net_factor == 1.0:
            raise ConfigurationError(
                "slow fault needs cpu_factor or net_factor > 1")
        return self.add(FaultEvent("slow", at, until=until, machine=machine,
                                   cpu_factor=cpu_factor,
                                   net_factor=net_factor))

    def drop(self, at: float, until: float, probability: float,
             machine: Optional[str] = None) -> "FaultSchedule":
        """Drop matching messages with ``probability`` during the window."""
        if probability <= 0.0:
            raise ConfigurationError("drop probability must be > 0")
        return self.add(FaultEvent("drop", at, until=until, machine=machine,
                                   probability=probability))

    def delay(self, at: float, until: float, extra_s: float,
              jitter_s: float = 0.0, machine: Optional[str] = None,
              probability: float = 1.0) -> "FaultSchedule":
        """Add ``extra_s`` (+ uniform jitter) to matching messages."""
        if extra_s <= 0.0 and jitter_s <= 0.0:
            raise ConfigurationError("delay fault needs a positive delay")
        return self.add(FaultEvent("delay", at, until=until, machine=machine,
                                   extra_delay_s=extra_s, jitter_s=jitter_s,
                                   probability=probability))

    def kv_outage(self, at: float, machine: str,
                  until: float) -> "FaultSchedule":
        """Take the kv node co-located on ``machine`` down, then back up."""
        return self.add(FaultEvent("kv_outage", at, until=until,
                                   machine=machine))

    def at_migration(self, phase: str, target: str = "donor",
                     machine: Optional[str] = None) -> "FaultSchedule":
        """Crash a migration participant when a handoff enters ``phase``.

        Phase-triggered, not time-triggered: the migration coordinator
        consumes the first unconsumed matching event at each phase
        entry, which is what makes crash-during-snapshot or
        crash-during-cutover chaos tests deterministic regardless of
        when the autoscaler decides to migrate. ``target="master"``
        models a coordinator crash (the protocol pauses and re-drives
        from the master's ledger); ``machine`` overrides the default
        victim (first donor / first receiver in sorted order).
        """
        return self.add(FaultEvent("migration_crash", 0.0, phase=phase,
                                   target=target, machine=machine))

    # -- interop -----------------------------------------------------------
    @classmethod
    def from_kill_list(cls, failures: Iterable[Tuple[float, str]],
                       seed: int = 0) -> "FaultSchedule":
        """Adapt the legacy ``[(time, machine), ...]`` kill list."""
        schedule = cls(seed=seed)
        for at, machine in sorted(failures):
            schedule.crash(at, machine)
        return schedule

    # -- queries -----------------------------------------------------------
    def events(self) -> List[FaultEvent]:
        """All events ordered by start time (stable for ties)."""
        return sorted(self._events, key=lambda e: e.at)

    def interval_events(self) -> List[FaultEvent]:
        """The partition/slow/drop/delay rules, evaluated at query time."""
        return [e for e in self.events() if e.kind in INTERVAL_KINDS]

    def point_events(self) -> List[FaultEvent]:
        """crash/recover/kv_outage — realized as scheduled state changes."""
        return [e for e in self.events()
                if e.kind not in INTERVAL_KINDS
                and e.kind not in MIGRATION_KINDS]

    def migration_triggers(self) -> List[FaultEvent]:
        """Phase-triggered ``migration_crash`` events, in declaration
        order (the coordinator consumes each at most once)."""
        return [e for e in self._events if e.kind in MIGRATION_KINDS]

    def kill_list(self) -> List[Tuple[float, str]]:
        """The crash events in legacy kill-list form (compat shim)."""
        return [(e.at, e.machine) for e in self.events()
                if e.kind == "crash"]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events())
