"""Chaos fault injection for the simulated cluster.

Section 4.3 of the paper stops at crash-stop detection: a dead machine is
excluded from the hash ring "until operator intervention". This package
supplies the other half of a production failure story — a declarative,
seeded :class:`FaultSchedule` that injects crashes, crash-then-recover
cycles, network partitions, gray (slow-node) failures, probabilistic
message drop/delay, kv-node outages, and migration-phase-triggered
participant crashes (:meth:`FaultSchedule.at_migration`) into
:class:`repro.sim.runtime.SimRuntime`, and the :class:`FaultInjector`
that realizes the schedule deterministically inside the discrete-event
simulator.
"""

from repro.faults.injector import FaultInjector, FaultInjectorStats
from repro.faults.lattice import (CrashSite, FaultLattice, MigrationSite,
                                  describe_schedule)
from repro.faults.schedule import (FAULT_KINDS, MIGRATION_KINDS, FaultEvent,
                                   FaultSchedule)

__all__ = [
    "FAULT_KINDS",
    "MIGRATION_KINDS",
    "CrashSite",
    "FaultEvent",
    "FaultInjector",
    "FaultInjectorStats",
    "FaultLattice",
    "FaultSchedule",
    "MigrationSite",
    "describe_schedule",
]
