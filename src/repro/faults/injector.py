"""The fault injector — a schedule realized against simulated time.

The injector owns the schedule's RNG and answers the two questions the
runtime asks on its hot paths:

* :meth:`FaultInjector.message_fate` — given a ``src -> dst`` message and
  its base network delay, is it delivered, and with how much total delay?
  This folds together partitions (dropped + counted), probabilistic drop
  rules, delay rules with seeded jitter, and slow-node network inflation.
* :meth:`FaultInjector.cpu_factor` — the service-time inflation for a
  machine under an active gray failure.

Determinism: every probabilistic decision draws from one
``random.Random(schedule.seed)`` in simulator event order, which the
discrete-event scheduler already makes reproducible — so two runs of one
seeded schedule over one workload produce byte-identical counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.faults.schedule import FaultSchedule


@dataclass(slots=True)
class FaultInjectorStats:
    """What the injector actually did to the run."""

    dropped_messages: int = 0
    delayed_messages: int = 0
    injected_delay_s: float = 0.0
    lost_partition: int = 0
    gray_slow_s: float = 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Evaluates a :class:`FaultSchedule`'s interval rules at query time.

    Point events (crash/recover/kv_outage) are *not* handled here — the
    runtime schedules those as discrete state changes. The injector only
    answers per-message and per-execution queries for the interval rules,
    so an empty rule set costs nothing on the hot path (the runtime skips
    the injector entirely).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self.rng = random.Random(schedule.seed)
        self.stats = FaultInjectorStats()
        self._rules = schedule.interval_events()
        self._partitions = [r for r in self._rules if r.kind == "partition"]
        self._slows = [r for r in self._rules if r.kind == "slow"]
        self._drops = [r for r in self._rules if r.kind == "drop"]
        self._delays = [r for r in self._rules if r.kind == "delay"]

    def has_rules(self) -> bool:
        """Whether any interval rule exists (hot-path gate)."""
        return bool(self._rules)

    # -- per-message -------------------------------------------------------
    def message_fate(self, src: Optional[str], dst: str, now: float,
                     base_delay_s: float) -> Tuple[bool, float]:
        """Decide one message's fate: ``(delivered, total_delay_s)``.

        Args:
            src: Sending machine, or ``None`` for source-injection (M0)
                and control traffic, which counts as outside every
                partition group.
            dst: Destination machine.
            now: Current simulated time.
            base_delay_s: The undisturbed network delay.
        """
        for rule in self._partitions:
            if rule.active(now) and self._crosses(rule.group, src, dst):
                self.stats.lost_partition += 1
                return False, base_delay_s
        for rule in self._drops:
            if rule.active(now) and rule.matches_message(src, dst):
                if self.rng.random() < rule.probability:
                    self.stats.dropped_messages += 1
                    return False, base_delay_s
        delay = base_delay_s
        for rule in self._delays:
            if rule.active(now) and rule.matches_message(src, dst):
                if rule.probability < 1.0 \
                        and self.rng.random() >= rule.probability:
                    continue
                extra = rule.extra_delay_s
                if rule.jitter_s > 0.0:
                    extra += self.rng.random() * rule.jitter_s
                delay += extra
                self.stats.delayed_messages += 1
                self.stats.injected_delay_s += extra
        for rule in self._slows:
            if rule.net_factor > 1.0 and rule.active(now) \
                    and rule.machine in (src, dst):
                extra = base_delay_s * (rule.net_factor - 1.0)
                delay += extra
                self.stats.gray_slow_s += extra
        return True, delay

    @staticmethod
    def _crosses(group, src: Optional[str], dst: str) -> bool:
        src_in = src is not None and src in group
        return src_in != (dst in group)

    # -- per-execution -----------------------------------------------------
    def cpu_factor(self, machine: str, now: float) -> float:
        """Combined CPU inflation for ``machine`` (1.0 when healthy)."""
        factor = 1.0
        for rule in self._slows:
            if rule.machine == machine and rule.active(now):
                factor *= rule.cpu_factor
        return factor

    def note_gray_cpu(self, extra_service_s: float) -> None:
        """Account service time attributable to gray-failure inflation."""
        self.stats.gray_slow_s += extra_service_s
