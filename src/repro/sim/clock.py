"""Virtual clock for discrete-event simulation.

The simulator replaces the authors' physical cluster (our substitution per
DESIGN.md): operator code runs for real, but *time* is virtual. Every
component that needs "now" — kv-store TTLs, flush intervals, latency
recorders — takes a ``clock`` callable, and in simulation that callable is
bound to a :class:`VirtualClock`.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """A monotonically advancing simulated clock (seconds)."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def __call__(self) -> float:
        """Clock-callable protocol: ``clock()`` == ``clock.now()``."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move time forward to ``t``; moving backwards is an error."""
        if t < self._now:
            raise SimulationError(
                f"virtual clock cannot move backwards: {t} < {self._now}"
            )
        self._now = t
