"""Discrete-event cluster simulator — the paper's testbed substitute.

Runs real MapUpdate operator code on a virtual cluster of machines with
modeled CPU, network, and storage-device time, reproducing the shape of
the paper's production results (throughput scaling, sub-2-second latency,
Muppet 1.0-vs-2.0, hotspots, failures, SSD-vs-HDD).
"""

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.des import Simulator
from repro.sim.fastforward import FastForwardRuntime, create_runtime
from repro.sim.runtime import (ENGINE_MUPPET1, ENGINE_MUPPET2, SimConfig,
                               SimReport, SimRuntime)
from repro.sim.sources import (Source, constant_rate, from_trace,
                               poisson_rate, spiky_rate)

__all__ = [
    "CostModel",
    "ENGINE_MUPPET1",
    "ENGINE_MUPPET2",
    "FastForwardRuntime",
    "SimConfig",
    "SimReport",
    "SimRuntime",
    "Simulator",
    "Source",
    "VirtualClock",
    "constant_rate",
    "create_runtime",
    "from_trace",
    "poisson_rate",
    "spiky_rate",
]
