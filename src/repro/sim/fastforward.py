"""Hybrid analytic/DES fast-forwarding of the simulated engine.

The exact engine (:class:`repro.sim.runtime.SimRuntime`) pays a fixed
interpreter toll per event: every hop re-reads config flags that never
change mid-run (tracing, dedup, batching, shedding), crosses four method
boundaries (send → deliver → try_start → execute → finish), and funnels
every continuation through the scheduler heap even when the continuation
is provably the very next thing to happen. This module removes that toll
without changing a single observable number. Two mechanisms:

**Handler fusion.** When the configuration is *fusion-eligible* (Muppet
2.0 engine, no tracing, no replay/dedup, no data-plane batching, no
overload shedding), :class:`FastForwardRuntime` installs closure-compiled
versions of the per-event handlers with every dead branch removed, every
invariant (cost constants, stream sequencers, subscriber lists, network
parameters) captured as a closure cell, and the dispatch → route →
enqueue → start → execute chain collapsed into straight-line code: the
two-choice dispatcher's memo-hit decision, the slate cache hit, the
event-size arithmetic and the slate ``touch``/``note_update`` sequence
are all inlined with their stats bookkeeping replicated operation for
operation. The fused handlers therefore perform the *same* state
transitions in the *same* order as the exact methods — every counter,
queue stat, dispatch stat and float service-time expression is preserved
— so reports and slates are identical. Ineligible configurations (and
the Muppet 1.0 engine) fall back to the inherited exact handlers,
recorded in :attr:`FastForwardRuntime.ff`.

**Analytic inline advancement.** :class:`FastForwardSimulator` runs a
tail-call trampoline: a fused handler may *return* its final
continuation ``(at, action, args)`` instead of pushing it on the heap.
The loop then advances the clock to ``at`` closed-form and executes the
continuation inline **iff it would have been the very next pop anyway**
— that is, ``(at, priority=0)`` sorts strictly before the current heap
top (a fresh entry always carries the largest sequence number, so ties
go to the heap). Because the handler has fully completed when it
returns, and the inlined entry provably precedes everything scheduled,
push-then-pop and inline execution are indistinguishable: the step
count, the sequence-number stream, the clock trajectory and the
execution order are identical by construction. Scheduled faults, timers
and ring-change broadcasts all live in the heap (fault broadcasts at
priority ``-1``), so a quiescent stretch is fast-forwarded *only up to*
the next such entry — the fallback boundary the hybrid tests pin down.
The fused source stepper participates too: between arrivals it returns
its own wake-up as a tail, so a quiescent inter-arrival gap advances
source → inject → deliver → finish chains with no heap traffic at all.

The net effect: dense stretches run fused handlers at a fraction of the
exact per-step cost, and quiescent stretches collapse into straight-line
execution.

Use :func:`create_runtime` with ``SimConfig(fastforward=True)`` to opt
in; the default (and ``SimRuntime`` built directly) stays byte-exact.
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.cluster.hashring import route_key as route
from repro.cluster.topology import ClusterSpec, NetworkSpec
from repro.core.application import Application
from repro.core.event import Event
from repro.core.operators import Context
from repro.core.slate import SlateKey, _json_size_fast
from repro.errors import SimulationError
from repro.faults.schedule import FaultSchedule
from repro.metrics import LatencyRecorder
from repro.obs import Tracer
from repro.sim.des import Simulator
from repro.sim.runtime import (ENGINE_MUPPET2, SimConfig, SimReport,
                               SimRuntime, _Envelope)
from repro.sim.sources import Source

#: Wholesale-clear bound for the fused memo tables (mirrors the hashring
#: memo discipline: bounded table, cleared when full).
_DEST_MEMO_MAX = 65_536


class FastForwardStats:
    """What the hybrid engine actually did on one run."""

    __slots__ = ("mode", "reason")

    def __init__(self) -> None:
        #: ``"fused"`` when the compiled handlers are installed,
        #: ``"exact"`` when the configuration forced the fallback.
        self.mode = "exact"
        #: Why fusion was declined (None when mode == "fused").
        self.reason: Optional[str] = None


class _FnInfo:
    """Per-operator constants resolved once at install time."""

    __slots__ = ("is_map", "publishes", "record_latency", "recorder")

    def __init__(self, is_map: bool, publishes: Tuple[str, ...],
                 record_latency: bool) -> None:
        self.is_map = is_map
        self.publishes = publishes
        self.record_latency = record_latency
        #: Lazily bound LatencyRecorder — created on first record so the
        #: report's per-updater table only lists updaters that finished
        #: at least one event, exactly like the exact engine's setdefault.
        self.recorder: Optional[LatencyRecorder] = None


class FastForwardSimulator(Simulator):
    """Event loop with the tail-call trampoline (see module docstring).

    Actions may return ``None`` (exact behaviour: anything they wanted
    to run later is already in the heap) or a tail continuation
    ``(at, action, args)`` with implicit priority 0. The trampoline
    inlines the continuation when it provably precedes the heap top and
    the horizon, otherwise it pushes a normal entry — either way the
    schedule is identical to the exact engine's. Exact handlers return
    ``None`` everywhere, so running them under this loop is a no-op
    change; the determinism gate holds either way.
    """

    def __init__(self, clock=None, max_steps: int = 50_000_000) -> None:
        super().__init__(clock, max_steps)
        #: Steps executed inline (clock advanced analytically, no heap
        #: traffic). ``steps`` includes them — parity with exact runs.
        self.inlined_steps = 0

    def run_until(self, t_end: float) -> None:  # hot-path
        """Process events up to and including time ``t_end``."""
        self._drain(t_end, final_advance=True)

    def run(self) -> None:
        """Process events until the schedule is empty."""
        self._drain(float("inf"), final_advance=False)

    def _drain(self, t_end: float, final_advance: bool) -> None:  # hot-path
        heap = self._heap
        pop = heappop
        push = heappush
        seq = self._seq
        clock = self.clock
        max_steps = self._max_steps
        # Local counters, written back in ``finally`` so the totals stay
        # correct when an action raises. Heap pops are time-monotone
        # (every schedule validates ``at >= now``), so the clock can be
        # stored directly instead of through ``advance_to``'s guard.
        steps = self.steps
        inlined = self.inlined_steps
        try:
            while heap and heap[0][0] <= t_end:
                at, _priority, _seq, action, handle, args = pop(heap)
                if handle is not None and handle.cancelled:
                    continue
                clock._now = at
                steps += 1
                if steps > max_steps:
                    raise SimulationError(
                        f"simulation exceeded max_steps={max_steps}"
                    )
                tail = action(self) if args is None else action(*args)
                while tail is not None:
                    # Inline iff this entry would be the very next pop:
                    # a fresh entry has the largest seq, so at equal
                    # (time, priority) the heap top wins. Tails carry
                    # priority 0, so an equal-time heap entry yields
                    # only if its own priority is positive; priority -1
                    # fault broadcasts always win the tie. Past the
                    # horizon the tail must wait in the heap, exactly
                    # as a pushed entry would.
                    at2 = tail[0]
                    if at2 > t_end or (heap and (
                            at2 > heap[0][0]
                            or (at2 == heap[0][0] and heap[0][1] <= 0))):
                        push(heap,
                             (at2, 0, next(seq), tail[1], None, tail[2]))
                        break
                    next(seq)      # the seq the push would have consumed
                    clock._now = at2
                    steps += 1
                    inlined += 1
                    if steps > max_steps:
                        raise SimulationError(
                            f"simulation exceeded max_steps={max_steps}"
                        )
                    tail = tail[1](*tail[2])
        finally:
            self.steps = steps
            self.inlined_steps = inlined
        if final_advance:
            clock.advance_to(max(clock._now, t_end))


class FastForwardRuntime(SimRuntime):
    """A :class:`SimRuntime` with fused handlers and inline advancement.

    Construction is identical to :class:`SimRuntime`; when the
    configuration is fusion-eligible the compiled handlers are swapped
    in before anything is scheduled, otherwise the instance behaves
    exactly like the base class (``ff.mode == "exact"``).
    """

    def _make_simulator(self) -> Simulator:
        return FastForwardSimulator()

    def __init__(
        self,
        app: Application,
        cluster: ClusterSpec,
        config: Optional[SimConfig] = None,
        sources: Iterable[Source] = (),
        failures: Union[Iterable[Tuple[float, str]], FaultSchedule] = (),
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(app, cluster, config, sources, failures, tracer)
        self.ff = FastForwardStats()
        self._ff_start_source = None
        reason = self._fusion_blocker()
        if reason is None:
            self._install_fused()
            self.ff.mode = "fused"
        else:
            self.ff.reason = reason

    def _fusion_blocker(self) -> Optional[str]:
        """Why the fused handlers cannot run this configuration.

        Fusion compiles branches *out*; a feature whose branch was
        removed must be off. Everything else — fault schedules, gray
        failures, throttling, every overflow policy, ring changes,
        timeline sampling — goes through the retained cold-path
        delegates and stays fully supported.
        """
        cfg = self.config
        if cfg.engine != ENGINE_MUPPET2:
            return "engine is not muppet2"
        if self._trace is not None:
            return "tracing enabled"
        if self.replay_journal is not None or self._dedup:
            return "replay/effectively-once delivery enabled"
        if self._batching:
            return "data-plane batching enabled"
        if self._shed is not None:
            return "overload shedding enabled"
        if cfg.autoscale is not None or cfg.migration is not None:
            # Elastic membership rewires rings and managers mid-run; the
            # fused hot path assumes a fixed machine set.
            return "elastic autoscaling/migration enabled"
        return None

    def ff_summary(self) -> Dict[str, Any]:
        """Mode, fallback reason and inline-advancement counters."""
        sim = self.sim
        inlined = getattr(sim, "inlined_steps", 0)
        return {
            "mode": self.ff.mode,
            "reason": self.ff.reason,
            "inlined_steps": inlined,
            "heap_steps": sim.steps - inlined,
        }

    def run(self, duration_s: float) -> SimReport:
        """Simulate ``duration_s`` seconds and summarize the outcome.

        Fused runs defer cyclic garbage collection for the duration of
        the event loop: the per-event records (tuple events, slotted
        envelopes, heap entries) are acyclic and die by refcount, so the
        collector's generation scans are pure overhead mid-run.
        Collection is re-enabled before the report is built, raising
        again whatever was deferred. This changes no simulated state —
        it only removes wall-clock noise.
        """
        if self.ff.mode != "fused" or not gc.isenabled():
            return super().run(duration_s)
        gc.disable()
        try:
            return super().run(duration_s)
        finally:
            gc.enable()

    def _start_source(self, source: Source) -> None:
        starter = self._ff_start_source
        if starter is None:
            super()._start_source(source)
        else:
            starter(source)

    def _install_fused(self) -> None:
        """Compile and install the fused per-event handlers.

        Every per-event constant becomes a closure cell (one LOAD_DEREF
        instead of an attribute chain), every disabled feature's branch
        is simply absent, and rare paths (overflow, dead destinations,
        timers, cache misses, external-stream misuse) delegate to the
        inherited exact methods so behaviour there is the base
        implementation itself.
        """
        rt = self
        cfg = self.config
        costs = cfg.costs
        sim = self.sim
        clock = sim.clock
        heap = sim._heap
        sim_seq = sim._seq
        counters = self.counters
        pcounts = self._processing_counts
        latency_dict = self.latency
        machines = self.machines
        ring = self._machine_ring
        injector = self._injector
        streams = self.app.streams
        source_extra = costs.source_service_s

        # Cost-model constants, inlined with the exact engine's float
        # expression shapes (same operand order => bit-identical sums).
        lock2 = costs.dispatch_lock_s * 2
        map_s = costs.map_service_s
        upd_s = costs.update_service_s
        byte_s = costs.slate_byte_cost_s
        cont_s = costs.slate_contention_s

        net = self.cluster.network
        inline_net = type(net) is NetworkSpec
        net_lat = net.latency_s
        net_bw = net.bandwidth_bytes_per_s
        transfer_time = net.transfer_time

        max_bytes = cfg.max_slate_bytes
        write_through = cfg.flush_policy.kind == "write_through"

        # Per-operator constants and per-stream plumbing.
        sinks = cfg.latency_sinks
        ops: Dict[str, _FnInfo] = {}
        for spec in self.app.operators():
            ops[spec.name] = _FnInfo(
                spec.kind == "map", spec.publishes,
                spec.kind == "update" and (sinks is None
                                           or spec.name in sinks))
        # Stream sequencers: operator publishes may only hit internal
        # streams; injection may hit any declared stream. A miss in
        # either table falls back to the registry's checked stamp(),
        # which raises the proper WorkflowError.
        seq_all = {sid: streams._seq[sid] for sid in streams.sids()}
        seq_internal = {sid: seq_all[sid]
                        for sid in streams.internal_sids()}
        subs = {sid: tuple(s.name for s in self._subscribers_of(sid))
                for sid in streams.sids()}
        # One lookup per output instead of two: sid -> (sequencer|None,
        # subscriber names). A None sequencer (external stream) falls
        # back to the registry's checked stamp, which raises the proper
        # WorkflowError for operator publishes.
        out_info = {sid: (seq_internal.get(sid), subs[sid])
                    for sid in streams.sids()}
        in_info = {sid: (seq_all[sid], subs[sid])
                   for sid in streams.sids()}
        tuple_new = tuple.__new__
        obj_new = object.__new__

        # Destination memo: (key, fn) -> _Machine, valid for one ring
        # generation. Pure given the generation, so it is safe even with
        # memoize_routing off; we still honour the ablation knob so the
        # "recompute every hash" configuration keeps meaning that.
        memoize = cfg.memoize_routing
        dest_memo: Dict[Tuple[str, str], Any] = {}
        ring_gen = [ring.generation]
        #: (fn, key) -> SlateKey. Pure value identity, so never
        #: invalidated — only bounded.
        skeys: Dict[Tuple[str, str], SlateKey] = {}

        handle_dead = self._handle_dead_destination
        overflow = self._overflow
        schedule_timer = self._schedule_timer

        def ff_send(envelope: _Envelope, from_machine: Optional[str],
                    extra_delay: float = 0.0) -> None:  # hot-path
            event = envelope.event
            dest_fn = envelope.dest_fn
            machine = None
            if memoize:
                if ring_gen[0] != ring.generation:
                    dest_memo.clear()
                    ring_gen[0] = ring.generation
                machine = dest_memo.get((event.key, dest_fn))
            if machine is None:
                try:
                    machine = machines[
                        ring.lookup(route(event.key, dest_fn))]
                except Exception:
                    counters.lost_failure += 1
                    return
                if memoize:
                    if len(dest_memo) >= _DEST_MEMO_MAX:
                        dest_memo.clear()
                    dest_memo[(event.key, dest_fn)] = machine
            if not machine.alive:
                handle_dead(machine, envelope)
                return
            if from_machine == machine.name:
                delay = extra_delay
            else:
                # Event.size_bytes() inlined for the common payload
                # types (same arithmetic; other types take the method).
                v = event.value
                tv = type(v)
                if v is None:
                    size = 16 + len(event.sid) + len(event.key)
                elif tv is int:
                    size = (16 + len(event.sid) + len(event.key)
                            + len(repr(v)))
                elif tv is str:
                    size = (16 + len(event.sid) + len(event.key)
                            + len(v.encode("utf-8")))
                else:
                    size = event.size_bytes()
                if inline_net:
                    delay = extra_delay + net_lat + size / net_bw
                else:
                    delay = extra_delay + transfer_time(
                        size, same_machine=False)
            if injector is not None:
                delivered, delay = injector.message_fate(
                    from_machine, machine.name, clock._now, delay)
                if not delivered:
                    return
            now = clock._now
            at = now + delay if delay > 0.0 else now
            heappush(heap, (at, 0, next(sim_seq), ff_deliver, None,
                            (machine, envelope)))

        def ff_try_start(worker, tail: bool):  # hot-path
            machine = worker.machine
            if not machine.alive or worker.busy:
                return None
            items = worker.queue._items
            if not items:
                return None
            if machine.free_cores <= 0:
                if not worker.waiting:
                    machine.waiting.append(worker)
                    worker.waiting = True
                return None
            machine.free_cores -= 1
            envelope = items.popleft()
            worker.busy = True
            event = envelope.event
            fn = envelope.dest_fn
            key = event[2]
            ts = event[1]
            item = (key, fn)
            worker.current = item
            count = pcounts.get(item, 0) + 1
            pcounts[item] = count
            if count > rt._max_workers_per_slate:
                rt._max_workers_per_slate = count
            # -- execute, inlined ---------------------------------------
            info = ops[fn]
            instance = machine.shared_instances[fn]
            # Context(), allocated without the constructor frame — the
            # slot stores below are __init__'s body verbatim.
            ctx = obj_new(Context)
            ctx.operator = fn
            ctx.input_ts = ts
            ctx.input_key = key
            ctx.now = ts
            ctx._output_sids = info.publishes
            ctx.emitted = []
            ctx.timers = []
            if info.is_map:
                if envelope.is_timer:
                    raise SimulationError("timer delivered to a mapper")
                instance.map(ctx, event)
                service = lock2 + map_s * instance.cost_factor
            else:
                service = lock2
                mgr = worker.mgr
                # Slate-cache hit, inlined with SlateCache.get's exact
                # bookkeeping (LRU touch + hit count). Miss or TTL
                # expiry delegates to the manager, which then does its
                # own (single) stats accounting.
                sk = skeys.get(item)
                if sk is None:
                    if len(skeys) >= _DEST_MEMO_MAX:
                        skeys.clear()
                    sk = skeys[item] = SlateKey(fn, key)
                cache = mgr.cache
                slate = cache._slates.get(sk)
                if slate is not None and (slate.ttl is None
                                          or not slate.expired(clock._now)):
                    cache._slates.move_to_end(sk)
                    cache.stats.hits += 1
                else:
                    slate = mgr.get(instance, event.key)
                read_io = mgr.pending_io_s
                if read_io > 0.0:
                    mgr.pending_io_s = 0.0
                    now = clock._now
                    start = machine.device_busy_until
                    if start < now:
                        start = now
                    done = start + read_io
                    machine.device_busy_until = done
                    service += done - now
                if envelope.is_timer:
                    instance.on_timer(ctx, key, slate,
                                      envelope.timer_payload)
                else:
                    instance.update(ctx, event, slate)
                # Slate.touch + SlateManager.note_update, inlined: the
                # version bump keys the size/encode caches, the dirty
                # transition feeds the cache's dirty index.
                slate.last_update_ts = ts
                slate._version += 1
                if not slate._dirty:
                    slate._dirty = True
                    listener = slate._dirty_listener
                    if listener is not None:
                        listener(slate, True)
                if max_bytes is not None:
                    slate.check_size(max_bytes)
                if write_through:
                    mgr._flush_slate(slate)
                write_io = mgr.pending_io_s
                if write_io > 0.0:
                    mgr.pending_io_s = 0.0
                    now = clock._now
                    start = machine.device_busy_until
                    if start < now:
                        start = now
                    done = start + write_io
                    machine.device_busy_until = done
                    service += done - now
                # Slate.estimated_bytes, inlined with its per-version
                # cache discipline; the non-counter shape falls back to
                # the method (which recomputes and caches identically).
                if slate._size_version == slate._version:
                    sbytes = slate._size_bytes
                else:
                    sbytes = _json_size_fast(slate._data)
                    if sbytes < 0:
                        sbytes = slate.estimated_bytes()
                    else:
                        slate._size_version = slate._version
                        slate._size_bytes = sbytes
                service += (upd_s * instance.cost_factor
                            + byte_s * sbytes)
                if count > 1:
                    service += cont_s
                    rt._contention_events += 1
            if injector is not None:
                factor = injector.cpu_factor(machine.name, clock._now)
                if factor > 1.0:
                    extra = service * (factor - 1.0)
                    service += extra
                    injector.note_gray_cpu(extra)
            # -----------------------------------------------------------
            now = clock._now
            at = now + service if service > 0.0 else now
            if tail:
                return (at, ff_finish,
                        (worker, envelope, ctx.emitted, ctx.timers))
            heappush(heap, (at, 0, next(sim_seq), ff_finish, None,
                            (worker, envelope, ctx.emitted, ctx.timers)))
            return None

        def ff_deliver(machine, envelope: _Envelope):  # hot-path
            if not machine.alive:
                handle_dead(machine, envelope)
                return None
            key = envelope.event.key
            fn = envelope.dest_fn
            # TwoChoiceDispatcher.choose_workers + candidates memo hit,
            # inlined (stats identical by construction; the miss path is
            # the dispatcher's own candidates(), which accounts itself).
            dispatcher = machine.dispatcher
            dstats = dispatcher.stats
            workers = machine.workers
            item = (key, fn)
            if dispatcher.num_threads == 1:
                dstats.dispatched += 1
                dstats.queue_locks += 1
                worker = workers[0]
                if worker.current == item:
                    dstats.affinity_hits += 1
                dstats.to_primary += 1
            else:
                pair = dispatcher._memo.get(item)
                if pair is None:
                    pair = dispatcher.candidates(key, fn)
                else:
                    dstats.memo_hits += 1
                primary, secondary = pair
                dstats.dispatched += 1
                dstats.queue_locks += 2
                worker = workers[primary]
                if worker.current != item:
                    second = workers[secondary]
                    if second.current == item:
                        dstats.to_secondary += 1
                        dstats.affinity_hits += 1
                        worker = second
                    elif (len(worker.queue._items)
                          >= dispatcher.significant_factor
                          * (len(second.queue._items) + 1)):
                        dstats.to_secondary += 1
                        dstats.spills += 1
                        worker = second
                    else:
                        dstats.to_primary += 1
                else:
                    dstats.to_primary += 1
                    dstats.affinity_hits += 1
            queue = worker.queue
            qstats = queue.stats
            items = queue._items
            qstats.offered += 1
            max_size = queue.max_size
            if max_size is not None and len(items) >= max_size:
                qstats.rejected += 1
                overflow(machine, worker, envelope)
                return None
            items.append(envelope)
            qstats.accepted += 1
            depth = len(items)
            if depth > qstats.peak_depth:
                qstats.peak_depth = depth
            # try_start's early exits, unrolled: the machine is alive
            # (checked on entry) and the queue is non-empty (just
            # appended), so only busy/core checks remain. The saturated
            # regime takes these without a call frame.
            if worker.busy:
                return None
            if machine.free_cores > 0:
                return ff_try_start(worker, True)
            if not worker.waiting:
                machine.waiting.append(worker)
                worker.waiting = True
            return None

        def ff_finish(worker, envelope: _Envelope, outputs: List[Event],
                      timers) -> Optional[tuple]:  # hot-path
            machine = worker.machine
            item = worker.current
            if item is not None:
                # try_start always seeds pcounts[item] before running, so
                # plain indexing is safe here and skips a method call.
                remaining = pcounts[item] - 1
                if remaining <= 0:
                    pcounts.pop(item, None)
                else:
                    pcounts[item] = remaining
            worker.busy = False
            worker.current = None
            machine.free_cores += 1
            if not machine.alive:
                counters.lost_failure += 1
                return None
            counters.processed += 1
            info = ops[envelope.dest_fn]
            if info.record_latency and not envelope.is_timer:
                rec = info.recorder
                if rec is None:
                    rec = info.recorder = latency_dict.setdefault(
                        envelope.dest_fn, LatencyRecorder())
                rec.record(clock._now - envelope.birth_ts)
            if outputs:
                birth = envelope.birth_ts
                from_name = machine.name
                for out in outputs:
                    pair = out_info.get(out[0])
                    if pair is None or pair[0] is None:
                        stamped = streams.stamp(out, from_operator=True)
                        sub_names = subs[stamped.sid]
                    else:
                        ctr, sub_names = pair
                        # Event.with_seq, flattened to one C-level
                        # allocation (fields are tuple slots 0..6).
                        stamped = tuple_new(
                            Event, (out[0], out[1], out[2], out[3],
                                    next(ctr), out[5], out[6]))
                    counters.published += 1
                    key = stamped[2]
                    for sub_name in sub_names:
                        # ff_send, inlined (early returns -> continue).
                        # The envelope is allocated without the dataclass
                        # __init__ frame; the stores mirror its fields.
                        env = obj_new(_Envelope)
                        env.event = stamped
                        env.birth_ts = birth
                        env.dest_fn = sub_name
                        env.is_timer = False
                        env.timer_payload = None
                        env.diverted = False
                        env.replayed = False
                        dest = None
                        if memoize:
                            if ring_gen[0] != ring.generation:
                                dest_memo.clear()
                                ring_gen[0] = ring.generation
                            dest = dest_memo.get((key, sub_name))
                        if dest is None:
                            try:
                                dest = machines[
                                    ring.lookup(route(key, sub_name))]
                            except Exception:
                                counters.lost_failure += 1
                                continue
                            if memoize:
                                if len(dest_memo) >= _DEST_MEMO_MAX:
                                    dest_memo.clear()
                                dest_memo[(key, sub_name)] = dest
                        if not dest.alive:
                            handle_dead(dest, env)
                            continue
                        if from_name == dest.name:
                            delay = 0.0
                        else:
                            v = stamped[3]
                            tv = type(v)
                            if v is None:
                                size = 16 + len(stamped[0]) + len(key)
                            elif tv is int:
                                size = (16 + len(stamped[0]) + len(key)
                                        + len(repr(v)))
                            elif tv is str:
                                size = (16 + len(stamped[0]) + len(key)
                                        + len(v.encode("utf-8")))
                            else:
                                size = stamped.size_bytes()
                            if inline_net:
                                delay = net_lat + size / net_bw
                            else:
                                delay = transfer_time(
                                    size, same_machine=False)
                        if injector is not None:
                            delivered, delay = injector.message_fate(
                                from_name, dest.name, clock._now, delay)
                            if not delivered:
                                continue
                        now = clock._now
                        heappush(heap, (now + delay if delay > 0.0
                                        else now, 0, next(sim_seq),
                                        ff_deliver, None, (dest, env)))
            if timers:
                for timer in timers:
                    schedule_timer(machine, envelope, timer)
            waiting = machine.waiting
            while machine.free_cores > 0 and waiting:
                next_worker = waiting.popleft()
                next_worker.waiting = False
                ff_try_start(next_worker, False)
            # try_start's early exits, unrolled: the machine is alive
            # (checked above) and this worker just went idle — only the
            # queue/core checks remain.
            if not worker.queue._items:
                return None
            if machine.free_cores > 0:
                return ff_try_start(worker, True)
            if not worker.waiting:
                machine.waiting.append(worker)
                worker.waiting = True
            return None

        def ff_inject(event: Event) -> None:  # hot-path
            pair = in_info.get(event[0])
            if pair is None:
                stamped = streams.stamp(event)  # raises for unknown sid
                sub_names = subs[stamped.sid]
            else:
                ctr, sub_names = pair
                stamped = tuple_new(
                    Event, (event[0], event[1], event[2], event[3],
                            next(ctr), event[5], event[6]))
            counters.published += 1
            birth = clock._now
            key = stamped[2]
            for sub_name in sub_names:
                # ff_send with from_machine=None and the source's extra
                # service charge, inlined (no same-machine short cut —
                # sources are off-cluster).
                env = obj_new(_Envelope)
                env.event = stamped
                env.birth_ts = birth
                env.dest_fn = sub_name
                env.is_timer = False
                env.timer_payload = None
                env.diverted = False
                env.replayed = False
                dest = None
                if memoize:
                    if ring_gen[0] != ring.generation:
                        dest_memo.clear()
                        ring_gen[0] = ring.generation
                    dest = dest_memo.get((key, sub_name))
                if dest is None:
                    try:
                        dest = machines[ring.lookup(route(key, sub_name))]
                    except Exception:
                        counters.lost_failure += 1
                        continue
                    if memoize:
                        if len(dest_memo) >= _DEST_MEMO_MAX:
                            dest_memo.clear()
                        dest_memo[(key, sub_name)] = dest
                if not dest.alive:
                    handle_dead(dest, env)
                    continue
                v = stamped[3]
                tv = type(v)
                if v is None:
                    size = 16 + len(stamped[0]) + len(key)
                elif tv is int:
                    size = (16 + len(stamped[0]) + len(key)
                            + len(repr(v)))
                elif tv is str:
                    size = (16 + len(stamped[0]) + len(key)
                            + len(v.encode("utf-8")))
                else:
                    size = stamped.size_bytes()
                if inline_net:
                    delay = source_extra + net_lat + size / net_bw
                else:
                    delay = source_extra + transfer_time(
                        size, same_machine=False)
                if injector is not None:
                    delivered, delay = injector.message_fate(
                        None, dest.name, clock._now, delay)
                    if not delivered:
                        continue
                now = clock._now
                heappush(heap, (now + delay if delay > 0.0 else now, 0,
                                next(sim_seq), ff_deliver, None,
                                (dest, env)))

        def ff_start_source(source: Source) -> None:
            # Fused twin of SimRuntime._start_source for throttle-free
            # configurations: one schedule per quiet gap, with the
            # wake-up returned as a tail so the trampoline can advance a
            # quiescent gap analytically instead of through the heap.
            iterator = source.events
            cell = [next(iterator, None)]

            def step():  # hot-path
                event = cell[0]
                now = clock._now
                while event is not None and event.ts <= now:
                    ff_inject(event)
                    event = next(iterator, None)
                cell[0] = event
                if event is not None:
                    return (event.ts, step, ())
                return None

            heappush(heap, (clock._now, 0, next(sim_seq), step, None, ()))

        # Swap the hot handlers in. Cold paths keep calling the exact
        # methods (self._send, self._divert, ...), which schedule
        # through these same bound references — one delivery pipeline,
        # fused, for every event regardless of which path produced it.
        self._inject = ff_inject                     # type: ignore[assignment]
        self._deliver_bound = ff_deliver             # type: ignore[assignment]
        self._finish_bound = ff_finish               # type: ignore[assignment]
        self._send_bound = ff_send                   # type: ignore[assignment]
        if cfg.throttle is None:
            # Throttled configurations keep the exact stepper: it must
            # re-check the controller's pause flag on every arrival.
            self._ff_start_source = ff_start_source


def create_runtime(
    app: Application,
    cluster: ClusterSpec,
    config: Optional[SimConfig] = None,
    sources: Iterable[Source] = (),
    failures: Union[Iterable[Tuple[float, str]], FaultSchedule] = (),
    tracer: Optional[Tracer] = None,
) -> SimRuntime:
    """Build the right runtime for ``config``.

    ``SimConfig(fastforward=True)`` yields a
    :class:`FastForwardRuntime` (which still falls back to exact
    stepping for ineligible configurations); anything else yields the
    plain exact :class:`SimRuntime`.
    """
    if config is not None and config.fastforward:
        return FastForwardRuntime(app, cluster, config, sources,
                                  failures, tracer)
    return SimRuntime(app, cluster, config, sources, failures, tracer)
