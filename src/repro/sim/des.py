"""A minimal deterministic discrete-event scheduler.

Events are ``(time, priority, seq, callback)`` entries in a heap; ties on
time break by priority then insertion sequence, so runs are bit-for-bit
reproducible. Callbacks receive the simulator and may schedule further
events. This is the substrate under :class:`repro.sim.runtime.SimRuntime`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock

#: A scheduled callback. It receives the simulator so it can schedule more.
Action = Callable[["Simulator"], None]


class ScheduledEvent:
    """Handle for a cancellable scheduled event.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, so cancelling is O(1) and determinism is unaffected.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop skips it when its time comes."""
        self.cancelled = True


class Simulator:
    """Deterministic event loop over a :class:`VirtualClock`.

    Args:
        clock: The clock to drive; a fresh one is created if omitted.
        max_steps: Safety valve against runaway schedules.
    """

    def __init__(self, clock: Optional[VirtualClock] = None,
                 max_steps: int = 50_000_000) -> None:
        self.clock = clock or VirtualClock()
        # Entries are (time, priority, seq, action) or, for cancellable
        # events, (time, priority, seq, action, handle).
        self._heap: List[Tuple] = []
        self._seq = itertools.count()
        self._max_steps = max_steps
        self.steps = 0

    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now()

    def schedule(self, at: float, action: Action, priority: int = 0) -> None:
        """Schedule ``action`` at absolute time ``at``.

        Lower ``priority`` runs first among same-time events (e.g. failure
        broadcasts before ordinary sends).
        """
        if at < self.clock.now():
            raise SimulationError(
                f"cannot schedule at {at} before now={self.clock.now()}"
            )
        heapq.heappush(self._heap, (at, priority, next(self._seq), action))

    def schedule_in(self, delay: float, action: Action,
                    priority: int = 0) -> None:
        """Schedule ``action`` after ``delay`` seconds."""
        self.schedule(self.clock.now() + max(0.0, delay), action, priority)

    def schedule_cancellable(self, delay: float, action: Action,
                             priority: int = 0) -> ScheduledEvent:
        """Schedule ``action`` after ``delay``; returns a cancel handle.

        Used for linger timers that a size-triggered flush supersedes.
        The heap mixes 4- and 5-tuples safely: ``seq`` is unique, so
        tuple comparison never reaches the handle.
        """
        at = self.clock.now() + max(0.0, delay)
        handle = ScheduledEvent()
        heapq.heappush(
            self._heap, (at, priority, next(self._seq), action, handle)
        )
        return handle

    def run_until(self, t_end: float) -> None:
        """Process events up to and including time ``t_end``."""
        while self._heap and self._heap[0][0] <= t_end:
            entry = heapq.heappop(self._heap)
            if len(entry) == 5 and entry[4].cancelled:
                continue
            at, action = entry[0], entry[3]
            self.clock.advance_to(at)
            self.steps += 1
            if self.steps > self._max_steps:
                raise SimulationError(
                    f"simulation exceeded max_steps={self._max_steps}"
                )
            action(self)
        self.clock.advance_to(max(self.clock.now(), t_end))

    def run(self) -> None:
        """Process events until the schedule is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if len(entry) == 5 and entry[4].cancelled:
                continue
            at, action = entry[0], entry[3]
            self.clock.advance_to(at)
            self.steps += 1
            if self.steps > self._max_steps:
                raise SimulationError(
                    f"simulation exceeded max_steps={self._max_steps}"
                )
            action(self)

    def pending(self) -> int:
        """Number of scheduled events not yet executed."""
        return len(self._heap)
