"""A minimal deterministic discrete-event scheduler.

Events are ``(time, priority, seq, action, handle, args)`` entries in a
heap; ties on time break by priority then insertion sequence, so runs are
bit-for-bit reproducible. Callbacks receive the simulator (legacy form)
or a pre-bound argument tuple (:meth:`Simulator.schedule_call`) and may
schedule further events. This is the substrate under
:class:`repro.sim.runtime.SimRuntime`.

The entry layout is deliberately uniform: every entry is one 6-tuple, so
the run loop unpacks without length dispatch and the hot schedulers
(``schedule_call`` / ``schedule_call_in``) never build a closure per
event — the argument tuple rides in the entry itself. Ordering is
decided entirely by the first three fields, which are identical to the
historical 4-tuple layout, so schedules (and therefore reports) are
byte-identical across the representation change.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock

#: A scheduled callback. It receives the simulator so it can schedule more.
Action = Callable[["Simulator"], None]


class SchedulerHook:
    """Decision-point hook for controlled scheduling.

    The default run loop resolves same-``(time, priority)`` ties by
    insertion sequence — an artificial total order that real deployments
    do not guarantee. A hook installed on :attr:`Simulator.hook` sees
    every group of *co-enabled* entries (equal time and priority, none
    cancelled) and picks which one runs next; the model checker
    (:mod:`repro.analysis.mc`) drives exhaustive exploration through
    this seam. With no hook installed the loop is byte-identical to the
    historical behaviour.
    """

    def choose(self, sim: "Simulator", at: float, priority: int,
               entries: List[Tuple]) -> int:
        """Pick the index of the entry to execute next.

        ``entries`` is the co-enabled group in canonical (seq) order;
        the non-chosen entries are pushed back and re-offered at the
        next iteration. Returning 0 everywhere reproduces the default
        schedule.
        """
        return 0

    def executed(self, sim: "Simulator", entry: Tuple) -> None:
        """Observe every executed entry (chosen or forced)."""


class ScheduledEvent:
    """Handle for a cancellable scheduled event.

    Cancellation is lazy: the heap entry stays in place and is skipped
    when popped, so cancelling is O(1) and determinism is unaffected.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the loop skips it when its time comes."""
        self.cancelled = True


class Simulator:
    """Deterministic event loop over a :class:`VirtualClock`.

    Args:
        clock: The clock to drive; a fresh one is created if omitted.
        max_steps: Safety valve against runaway schedules.
    """

    def __init__(self, clock: Optional[VirtualClock] = None,
                 max_steps: int = 50_000_000) -> None:
        self.clock = clock or VirtualClock()
        # Uniform entries: (time, priority, seq, action, handle, args).
        # handle is a ScheduledEvent for cancellable entries, else None;
        # args is None for legacy callbacks taking the simulator, else
        # the positional tuple the action is invoked with.
        self._heap: List[Tuple] = []
        self._seq = itertools.count()
        self._max_steps = max_steps
        self.steps = 0
        #: Optional controlled-scheduling hook (model checking). None on
        #: every production path; the hot loop checks it once per
        #: ``run_until`` call, not per event.
        self.hook: Optional[SchedulerHook] = None

    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now()

    def schedule(self, at: float, action: Action, priority: int = 0) -> None:
        """Schedule ``action`` at absolute time ``at``.

        Lower ``priority`` runs first among same-time events (e.g. failure
        broadcasts before ordinary sends).
        """
        if at < self.clock.now():
            raise SimulationError(
                f"cannot schedule at {at} before now={self.clock.now()}"
            )
        heapq.heappush(
            self._heap, (at, priority, next(self._seq), action, None, None))

    def schedule_in(self, delay: float, action: Action,
                    priority: int = 0) -> None:
        """Schedule ``action`` after ``delay`` seconds."""
        self.schedule(self.clock.now() + max(0.0, delay), action, priority)

    def schedule_call(self, at: float, action: Callable, *args,
                      priority: int = 0) -> None:  # hot-path
        """Schedule ``action(*args)`` at absolute time ``at``.

        The hot-path spelling of :meth:`schedule`: the callee's arguments
        ride in the heap entry, so per-event callbacks need no closure or
        lambda allocation — callers pass a pre-bound method plus its
        operands.
        """
        if at < self.clock.now():
            raise SimulationError(
                f"cannot schedule at {at} before now={self.clock.now()}"
            )
        heapq.heappush(
            self._heap, (at, priority, next(self._seq), action, None, args))

    def schedule_call_in(self, delay: float, action: Callable, *args,
                         priority: int = 0) -> None:  # hot-path
        """Schedule ``action(*args)`` after ``delay`` seconds."""
        now = self.clock.now()
        at = now + delay if delay > 0.0 else now
        heapq.heappush(
            self._heap, (at, priority, next(self._seq), action, None, args))

    def schedule_cancellable(self, delay: float, action: Action,
                             priority: int = 0) -> ScheduledEvent:
        """Schedule ``action`` after ``delay``; returns a cancel handle.

        Used for linger timers that a size-triggered flush supersedes.
        """
        at = self.clock.now() + max(0.0, delay)
        handle = ScheduledEvent()
        heapq.heappush(
            self._heap,
            (at, priority, next(self._seq), action, handle, None))
        return handle

    def run_until(self, t_end: float) -> None:  # hot-path
        """Process events up to and including time ``t_end``."""
        if self.hook is not None:
            self._run_hooked(t_end)
            return
        heap = self._heap
        pop = heapq.heappop
        advance = self.clock.advance_to
        max_steps = self._max_steps
        while heap and heap[0][0] <= t_end:
            at, _priority, _seq, action, handle, args = pop(heap)
            if handle is not None and handle.cancelled:
                continue
            advance(at)
            self.steps += 1
            if self.steps > max_steps:
                raise SimulationError(
                    f"simulation exceeded max_steps={max_steps}"
                )
            if args is None:
                action(self)
            else:
                action(*args)
        advance(max(self.clock.now(), t_end))

    def _run_hooked(self, t_end: float) -> None:
        """The :class:`SchedulerHook` variant of :meth:`run_until`.

        Identical semantics except that when two or more non-cancelled
        entries are co-enabled — equal ``(time, priority)`` at the heap
        top — the hook picks which one runs; the rest are pushed back
        (they keep their seq, so a hook that always answers 0 yields
        the exact default schedule). Entries at different times or
        priorities are never reordered: priority encodes intended
        causality (e.g. failure broadcasts before ordinary sends).
        """
        heap = self._heap
        hook = self.hook
        assert hook is not None
        while heap and heap[0][0] <= t_end:
            entry = heapq.heappop(heap)
            if entry[4] is not None and entry[4].cancelled:
                continue
            at, priority = entry[0], entry[1]
            group = [entry]
            while heap and heap[0][0] == at and heap[0][1] == priority:
                peer = heapq.heappop(heap)
                if peer[4] is not None and peer[4].cancelled:
                    continue
                group.append(peer)
            if len(group) > 1:
                index = hook.choose(self, at, priority, group)
                chosen = group.pop(index)
                for other in group:
                    heapq.heappush(heap, other)
            else:
                chosen = group[0]
            hook.executed(self, chosen)
            self.clock.advance_to(at)
            self.steps += 1
            if self.steps > self._max_steps:
                raise SimulationError(
                    f"simulation exceeded max_steps={self._max_steps}"
                )
            action, args = chosen[3], chosen[5]
            if args is None:
                action(self)
            else:
                action(*args)
        self.clock.advance_to(max(self.clock.now(), t_end))

    def run(self) -> None:
        """Process events until the schedule is empty."""
        heap = self._heap
        pop = heapq.heappop
        advance = self.clock.advance_to
        max_steps = self._max_steps
        while heap:
            at, _priority, _seq, action, handle, args = pop(heap)
            if handle is not None and handle.cancelled:
                continue
            advance(at)
            self.steps += 1
            if self.steps > max_steps:
                raise SimulationError(
                    f"simulation exceeded max_steps={max_steps}"
                )
            if args is None:
                action(self)
            else:
                action(*args)

    def pending(self) -> int:
        """Number of scheduled events not yet executed."""
        return len(self._heap)
