"""Arrival processes: how external streams feed the simulated cluster.

A source is an iterable of :class:`~repro.core.event.Event` objects on one
external stream, with timestamps equal to intended (virtual) arrival times.
Constructors cover the paper's situations: steady production load, Poisson
arrivals, and "drastic spikes in the tweet volumes" (Section 1's earthquake
example) via piecewise rate profiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence, Tuple

from repro.core.event import Event
from repro.errors import ConfigurationError

#: Produces the key for the i-th event of a source.
KeyFunction = Callable[[int], str]
#: Produces the payload for the i-th event of a source.
ValueFunction = Callable[[int], Any]


@dataclass(slots=True)
class Source:
    """One external stream's event feed.

    Attributes:
        sid: The external stream ID events carry.
        events: The event iterator, in nondecreasing timestamp order.
    """

    sid: str
    events: Iterator[Event]


def _default_value(_: int) -> None:
    return None


def constant_rate(
    sid: str,
    rate_per_s: float,
    duration_s: float,
    key_fn: KeyFunction,
    value_fn: ValueFunction = _default_value,
    start_ts: float = 0.0,
) -> Source:
    """Evenly spaced arrivals at ``rate_per_s`` for ``duration_s``."""
    if rate_per_s <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_per_s}")

    def generate() -> Iterator[Event]:
        interval = 1.0 / rate_per_s
        count = int(rate_per_s * duration_s)
        for i in range(count):
            ts = start_ts + i * interval
            yield Event(sid, ts, key_fn(i), value_fn(i))

    return Source(sid, generate())


def poisson_rate(
    sid: str,
    rate_per_s: float,
    duration_s: float,
    key_fn: KeyFunction,
    value_fn: ValueFunction = _default_value,
    seed: int = 0,
    start_ts: float = 0.0,
) -> Source:
    """Poisson arrivals (exponential inter-arrival times), seeded."""
    if rate_per_s <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate_per_s}")

    def generate() -> Iterator[Event]:
        rng = random.Random(seed)
        ts = start_ts
        i = 0
        end = start_ts + duration_s
        while True:
            ts += rng.expovariate(rate_per_s)
            if ts >= end:
                return
            yield Event(sid, ts, key_fn(i), value_fn(i))
            i += 1

    return Source(sid, generate())


def spiky_rate(
    sid: str,
    phases: Sequence[Tuple[float, float]],
    key_fn: KeyFunction,
    value_fn: ValueFunction = _default_value,
    start_ts: float = 0.0,
) -> Source:
    """Piecewise-constant rates: ``phases`` is [(rate_per_s, seconds), ...].

    Models the paper's "drastic spikes in the tweet volumes" — e.g. a
    steady 1,000 ev/s with a 10× burst during an earthquake minute.
    """
    if not phases:
        raise ConfigurationError("need at least one phase")
    for rate, seconds in phases:
        if rate < 0 or seconds <= 0:
            raise ConfigurationError(f"bad phase ({rate}, {seconds})")

    def generate() -> Iterator[Event]:
        phase_start = start_ts
        i = 0
        for rate, seconds in phases:
            if rate > 0:
                interval = 1.0 / rate
                count = int(rate * seconds)
                for j in range(count):
                    # Anchor to the phase start to avoid float drift
                    # accumulating across events.
                    yield Event(sid, phase_start + j * interval,
                                key_fn(i), value_fn(i))
                    i += 1
            phase_start += seconds

    return Source(sid, generate())


def from_trace(sid: str, events: Iterable[Event]) -> Source:
    """Wrap a pre-generated trace (e.g. a workload-generator output)."""
    def generate() -> Iterator[Event]:
        last = float("-inf")
        for event in events:
            if event.sid != sid:
                raise ConfigurationError(
                    f"trace event on {event.sid!r}, expected {sid!r}"
                )
            if event.ts < last:
                raise ConfigurationError(
                    "trace events must be in nondecreasing ts order"
                )
            last = event.ts
            yield event

    return Source(sid, generate())
